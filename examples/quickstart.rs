//! Quickstart: build a pipeline and a platform, ask the unified solver
//! **Engine** for answers, then tour the paper's polynomial algorithms.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rpwf::prelude::*;
use rpwf_algo::engine::{Engine, SolveRequest, Want};
use rpwf_core::budget::Budget;

fn main() -> Result<()> {
    // A four-stage pipeline: (work, output size) per stage, 100 units in.
    let pipeline = PipelineBuilder::with_input_size(100.0)
        .stage(20.0, 80.0)
        .stage(150.0, 80.0)
        .stage(40.0, 30.0)
        .stage(10.0, 5.0)
        .build()?;

    // A communication-homogeneous cluster: six processors, shared 10-unit
    // links, homogeneous failure probability 0.2.
    let platform =
        Platform::comm_homogeneous(vec![4.0, 2.0, 8.0, 1.0, 6.0, 3.0], 10.0, vec![0.2; 6])?;
    println!(
        "platform class: {:?} / {:?}",
        platform.class(),
        platform.failure_class()
    );

    // Hand-rolled mapping: stages 1-2 on the two fastest processors
    // (replicated), stages 3-4 on one more.
    let mapping = IntervalMapping::new(
        vec![Interval::new(0, 1)?, Interval::new(2, 3)?],
        vec![vec![ProcId(2), ProcId(4)], vec![ProcId(0)]],
        pipeline.n_stages(),
        platform.n_procs(),
    )?;
    println!("\nmanual mapping        : {mapping}");
    println!(
        "  latency             : {:.3}",
        latency(&mapping, &pipeline, &platform)
    );
    println!(
        "  failure probability : {:.4}",
        failure_probability(&mapping, &platform)
    );
    println!(
        "  steady-state period : {:.3}",
        period(&mapping, &pipeline, &platform)?
    );

    // The one-call API: the Engine picks the strongest applicable backend
    // (here the bitmask DP — comm-homogeneous, m ≤ 16), races the
    // heuristic portfolio, and reports provenance + completeness.
    let engine = Engine::with_default_backends(0xCAFE);
    let report = engine.solve(&SolveRequest {
        pipeline: &pipeline,
        platform: &platform,
        want: Want::Point {
            objective: Objective::MinFpUnderLatency(60.0),
            keep_front: false,
        },
        budget: &Budget::unlimited(),
    });
    let best = report.point().expect("feasible at L <= 60");
    println!(
        "\nEngine @ L ≤ 60       : {} (solver {:?}, proven {})",
        best.mapping,
        report.provenance.expect("answered"),
        report.completeness.exact_complete
    );
    println!("  latency {:.3}, FP {:.6}", best.latency, best.failure_prob);

    // Theorem 1: the most reliable mapping replicates everything everywhere.
    let safest = algo::mono::minimize_failure(&pipeline, &platform);
    println!("\nThm 1 (min FP)        : {}", safest.mapping);
    println!(
        "  latency {:.3}, FP {:.6}",
        safest.latency, safest.failure_prob
    );

    // Theorem 2: the fastest mapping uses the single fastest processor.
    let fastest = algo::mono::minimize_latency_comm_homog(&pipeline, &platform)?;
    println!("\nThm 2 (min latency)   : {}", fastest.mapping);
    println!(
        "  latency {:.3}, FP {:.6}",
        fastest.latency, fastest.failure_prob
    );

    // Algorithm 3 (Theorem 6): minimize FP under a latency budget between
    // the two extremes.
    let budget = (fastest.latency + safest.latency) / 2.0;
    let balanced =
        algo::bicriteria::comm_homog::min_fp_under_latency(&pipeline, &platform, budget)?;
    println!("\nAlg 3 @ L ≤ {budget:.3}  : {}", balanced.mapping);
    println!(
        "  latency {:.3}, FP {:.6}",
        balanced.latency, balanced.failure_prob
    );

    // The full trade-off picture: ask the Engine for the whole front (it
    // routes to the exact bitmask DP here; on instances beyond every
    // exact backend the same call falls back to a flagged heuristic
    // front).
    let report = engine.solve(&SolveRequest {
        pipeline: &pipeline,
        platform: &platform,
        want: Want::Front,
        budget: &Budget::unlimited(),
    });
    let front = report.front_answer().expect("front request yields a front");
    assert!(
        report.completeness.exact_complete,
        "bitmask DP proves this front"
    );
    println!("\nexact Pareto front ({} points):", front.len());
    println!("  {:>10}  {:>12}  mapping", "latency", "FP");
    for pt in front.iter() {
        println!(
            "  {:>10.3}  {:>12.6}  {}",
            pt.latency, pt.failure_prob, pt.payload
        );
    }
    Ok(())
}
