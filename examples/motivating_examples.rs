//! Reproduces §3 of the paper end to end: the two motivating examples
//! showing why heterogeneity breaks the single-interval intuition.
//!
//! ```sh
//! cargo run --release --example motivating_examples
//! ```

use rpwf::prelude::*;
use rpwf_algo::exact::{solve_comm_homog, Exhaustive};
use rpwf_algo::heuristics::single_interval::best_single_interval;
use rpwf_algo::mono::general_mapping_shortest_path;

fn main() -> Result<()> {
    example_figures_3_and_4();
    example_figure_5()?;
    Ok(())
}

/// Figures 3 + 4: on a Fully Heterogeneous platform, mapping the whole
/// pipeline on one processor costs 105; splitting it across the fast-link
/// chain costs 7.
fn example_figures_3_and_4() {
    println!("== Example 1 (Figures 3 & 4): splitting beats any single processor ==\n");
    let pipeline = gen::figure3_pipeline();
    let platform = gen::figure4_platform();

    for u in 0..2u32 {
        let whole = IntervalMapping::single_interval(2, vec![ProcId(u)], 2).expect("valid");
        println!(
            "  whole pipeline on P{u}           : latency {:>7.1}",
            latency(&whole, &pipeline, &platform)
        );
    }

    let (best, lat) = general_mapping_shortest_path(&pipeline, &platform);
    let procs: Vec<String> = best.procs().iter().map(|p| p.to_string()).collect();
    println!(
        "  Theorem 4 shortest path        : latency {lat:>7.1}   [{}]",
        procs.join(", ")
    );

    let oracle = Exhaustive::new(&pipeline, &platform).min_latency();
    println!(
        "  exhaustive interval optimum    : latency {:>7.1}   {}",
        oracle.latency, oracle.mapping
    );
    println!("\n  paper: 105 vs 7 — the pipeline must be split into two intervals.\n");
}

/// Figure 5: Communication Homogeneous + Failure Heterogeneous. At latency
/// threshold 22 the best single interval reaches FP = 0.64; using the slow
/// reliable processor for S1 and replicating S2 tenfold reaches FP < 0.2.
fn example_figure_5() -> Result<()> {
    println!("== Example 2 (Figure 5): the optimal solution needs two intervals ==\n");
    let pipeline = gen::figure5_pipeline();
    let platform = gen::figure5_platform();
    let threshold = 22.0;

    let single = best_single_interval(
        &pipeline,
        &platform,
        Objective::MinFpUnderLatency(threshold),
    )
    .expect("two fast processors fit under L = 22");
    println!(
        "  best single interval @ L ≤ {threshold} : FP {:.4}  (latency {:.2})  {}",
        single.failure_prob, single.latency, single.mapping
    );

    let optimal = solve_comm_homog(
        &pipeline,
        &platform,
        Objective::MinFpUnderLatency(threshold),
    )?
    .expect("feasible");
    println!(
        "  exact optimum (bitmask DP)      : FP {:.4}  (latency {:.2})  {}",
        optimal.failure_prob, optimal.latency, optimal.mapping
    );

    let expected = 1.0 - 0.9 * (1.0 - 0.8f64.powi(10));
    println!("\n  paper: 0.64 vs 1 − 0.9·(1 − 0.8^10) ≈ {expected:.4} (< 0.2).");
    assert!(optimal.failure_prob < 0.2);
    assert_eq!(optimal.mapping.n_intervals(), 2);
    Ok(())
}
