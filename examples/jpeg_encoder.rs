//! The JPEG encoder pipeline (the workload motivating the paper's
//! introduction) mapped onto a heterogeneous two-site cluster: full
//! latency × reliability trade-off exploration.
//!
//! ```sh
//! cargo run --release --example jpeg_encoder
//! ```

use rpwf::prelude::*;
use rpwf_algo::engine::{Engine, SolveRequest, Want};
use rpwf_algo::heuristics::Portfolio;
use rpwf_core::budget::Budget;

fn main() -> Result<()> {
    let pipeline = gen::jpeg_encoder();
    println!(
        "JPEG encoder pipeline: {} stages, total work {:.0} Mflop",
        pipeline.n_stages(),
        pipeline.total_work()
    );
    for k in 0..pipeline.n_stages() {
        println!(
            "  S{}: w = {:>5.1}, out = {:>5.1} KB",
            k + 1,
            pipeline.work(k),
            pipeline.delta(k + 1)
        );
    }

    // A comm-homogeneous cluster mixing reliable workhorses and fast but
    // flaky preemptible nodes (grid scenario of §5).
    let speeds = vec![2.0, 2.0, 2.0, 8.0, 8.0, 8.0, 8.0, 4.0];
    let fps = vec![0.05, 0.05, 0.05, 0.45, 0.45, 0.45, 0.45, 0.15];
    let platform = Platform::comm_homogeneous(speeds, 64.0, fps)?;
    println!(
        "\nplatform: {} processors, {:?}/{:?}",
        platform.n_procs(),
        platform.class(),
        platform.failure_class()
    );

    // The full Pareto front through the unified Engine: capability-driven
    // selection routes this CH + Failure-Heterogeneous instance (the
    // paper's open case) to the exact bitmask DP.
    let engine = Engine::with_default_backends(7);
    let report = engine.solve(&SolveRequest {
        pipeline: &pipeline,
        platform: &platform,
        want: Want::Front,
        budget: &Budget::unlimited(),
    });
    assert!(report.completeness.exact_complete, "DP proves this front");
    let front = report
        .front_answer()
        .expect("front request yields a front")
        .clone();
    println!(
        "\nexact latency × FP Pareto front ({} points, solver {:?}):",
        front.len(),
        report.provenance.expect("answered")
    );
    println!("  {:>10}  {:>10}  {:>4}  mapping", "latency", "FP", "ivs");
    for pt in front.iter() {
        println!(
            "  {:>10.2}  {:>10.6}  {:>4}  {}",
            pt.latency,
            pt.failure_prob,
            pt.payload.n_intervals(),
            pt.payload
        );
    }

    // Threshold queries a user would actually ask.
    for l in [120.0, 160.0, 250.0] {
        match front.min_fp_under_latency(l) {
            Some(pt) => println!(
                "\nbest FP with latency ≤ {l:>6.1}: FP = {:.6} at latency {:.2}",
                pt.failure_prob, pt.latency
            ),
            None => println!("\nno mapping achieves latency ≤ {l:.1}"),
        }
    }

    // Compare the heuristic portfolio against the exact answer at a tight
    // threshold.
    let objective = Objective::MinFpUnderLatency(160.0);
    println!(
        "\nheuristics at L ≤ 160 (exact = {:.6}):",
        front
            .min_fp_under_latency(160.0)
            .map_or(f64::NAN, |pt| pt.failure_prob)
    );
    for (name, sol) in Portfolio::new(7).run_all(&pipeline, &platform, objective) {
        match sol {
            Some(s) => println!(
                "  {name:<16} FP {:.6}  latency {:.2}",
                s.failure_prob, s.latency
            ),
            None => println!("  {name:<16} (no feasible solution found)"),
        }
    }

    // Tri-criteria snapshot (extension E13): period alongside both paper
    // objectives for each Pareto point.
    println!("\ntri-criteria view (latency, FP, period):");
    for pt in front.iter() {
        let per = period(&pt.payload, &pipeline, &platform)?;
        println!(
            "  latency {:>8.2}  FP {:>9.6}  period {:>8.2}  throughput {:>6.4}/u",
            pt.latency,
            pt.failure_prob,
            per,
            1.0 / per
        );
    }
    Ok(())
}
