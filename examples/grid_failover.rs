//! Discrete-event validation on a grid scenario: analytic worst case vs
//! simulated execution, and Monte Carlo reliability vs the closed form.
//!
//! ```sh
//! cargo run --release --example grid_failover
//! ```

use rpwf::prelude::*;
use rpwf_algo::engine::{Engine, SolveRequest, Want};
use rpwf_core::budget::Budget;
use rpwf_sim::{simulate, simulate_one, FailureModel, FailureScenario, MonteCarlo, SimConfig};

fn main() -> Result<()> {
    let pipeline = gen::figure5_pipeline();
    let platform = gen::figure5_platform();

    // The paper's Figure 5 optimum — derived by the Engine instead of
    // hand-rolled: one solve at L ≤ 22 routes to the exact bitmask DP and
    // returns the reliable-processor-on-S1, tenfold-replicated-S2
    // mapping, proven optimal.
    let engine = Engine::with_default_backends(0xCAFE);
    let report = engine.solve(&SolveRequest {
        pipeline: &pipeline,
        platform: &platform,
        want: Want::Point {
            objective: Objective::MinFpUnderLatency(22.0),
            keep_front: false,
        },
        budget: &Budget::unlimited(),
    });
    assert!(report.completeness.exact_complete, "proven optimal");
    let mapping = report.point().expect("feasible at L = 22").mapping.clone();
    let bound = latency(&mapping, &pipeline, &platform);
    let analytic_fp = failure_probability(&mapping, &platform);
    println!("mapping            : {mapping}");
    println!("analytic latency   : {bound:.4}");
    println!("analytic FP        : {analytic_fp:.4}\n");

    // 1. Worst-case certification: adversarial sim == formula.
    let worst = simulate_one(
        &pipeline,
        &platform,
        &mapping,
        &FailureScenario::all_alive(11),
        SimConfig::worst_case(),
    );
    let best = simulate_one(
        &pipeline,
        &platform,
        &mapping,
        &FailureScenario::all_alive(11),
        SimConfig::best_case(),
    );
    println!(
        "sim latency (adversarial consensus/order) : {:.4}",
        worst.latency().unwrap()
    );
    println!(
        "sim latency (friendly consensus/order)    : {:.4}",
        best.latency().unwrap()
    );

    // 2. Failure injection: kill fast replicas one by one; latency stays
    //    under the bound until the interval dies.
    println!("\nfailure sweep (dead fast replicas → simulated latency):");
    for dead in [0usize, 2, 5, 9, 10] {
        let dead_ids: Vec<ProcId> = (1..=dead as u32).map(ProcId).collect();
        let scenario = FailureScenario::with_dead(11, &dead_ids);
        match simulate_one(
            &pipeline,
            &platform,
            &mapping,
            &scenario,
            SimConfig::worst_case(),
        ) {
            rpwf_sim::DatasetOutcome::Success { latency, .. } => {
                println!("  {dead:>2} dead : latency {latency:>7.3}  (bound {bound:.3})");
            }
            rpwf_sim::DatasetOutcome::Failed { at_interval } => {
                println!("  {dead:>2} dead : WORKFLOW FAILED at interval {at_interval}");
            }
        }
    }

    // 3. Monte Carlo reliability.
    let mc = MonteCarlo {
        trials: 50_000,
        model: FailureModel::BernoulliAtStart,
        ..Default::default()
    };
    let report = mc.run(&pipeline, &platform, &mapping);
    println!("\nMonte Carlo ({} trials):", report.trials);
    println!("  success rate       : {:.4}", report.success_rate);
    println!(
        "  Wilson 95% CI      : [{:.4}, {:.4}]",
        report.wilson95.0, report.wilson95.1
    );
    println!("  analytic 1 − FP    : {:.4}", 1.0 - analytic_fp);
    println!(
        "  latency (min/mean/max over successes): {:.3} / {:.3} / {:.3}  (bound {bound:.3})",
        report.latency.min, report.latency.mean, report.latency.max
    );

    // 4. Streaming mode: 40 data sets back to back; the inter-departure
    //    time settles at the steady-state period.
    let arrivals = vec![0.0; 40];
    let stream = simulate(
        &pipeline,
        &platform,
        &mapping,
        &FailureScenario::all_alive(11),
        SimConfig::worst_case(),
        &arrivals,
    );
    let times = stream.completion_times();
    let tail_gap = times[times.len() - 1] - times[times.len() - 2];
    println!("\nstreaming 40 data sets:");
    println!(
        "  analytic period    : {:.4}",
        period(&mapping, &pipeline, &platform)?
    );
    println!("  sim inter-departure: {tail_gap:.4}");
    println!("  sim events         : {}", stream.events);
    Ok(())
}
