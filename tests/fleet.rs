//! Integration tests for topology-aware fleet serving: a ring of
//! `rpwf-server` nodes partitioning (and, with `replicas ≥ 2`,
//! replicating) the instance keyspace.
//!
//! * byte-identical responses whichever node a request enters through,
//! * strict partitioning with `replicas: 1`, primary+successor copies
//!   with the default replication factor,
//! * transparent forwarding with `Ring`-command observability,
//! * **fault tolerance**: a node killed mid-load loses no answers (the
//!   failover path serves warm replicas), the per-peer circuit breaker
//!   opens on a dead peer and re-closes after a restart, and a scripted
//!   [`FaultPlan`] (corrupt lines, dropped connections, delays, node
//!   kills) never leaks a wrong byte to the client,
//! * a true multi-process fleet driven through the `rpwf` binary.

use rpwf_core::ring::HashRing;
use rpwf_server::protocol::{Command, Request, Response};
use rpwf_server::{FaultPlan, RingOptions, Server, ServiceConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

const VNODES: usize = 16;

/// Reserves `n` distinct loopback ports. The listeners are dropped before
/// the fleet binds them — a small race, but ephemeral-port reuse within a
/// test run is vanishingly rare.
fn reserve_addrs(n: usize) -> Vec<String> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("reserve port"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("addr").to_string())
        .collect()
}

fn fleet_config(node_id: &str, cache_capacity: usize) -> ServiceConfig {
    ServiceConfig {
        workers: 2,
        cache_capacity,
        cache_shards: 4,
        seed: 0xCAFE,
        solver_threads: 1,
        node_id: Some(node_id.to_string()),
    }
}

fn ring_options(replicas: usize) -> RingOptions {
    RingOptions {
        vnodes: Some(VNODES),
        replicas,
        ..RingOptions::default()
    }
}

/// Starts an `n`-node in-process fleet (separate services and caches per
/// node — process-equivalent up to the address space) with the default
/// replication factor.
fn start_fleet(n: usize, cache_capacity: usize) -> (Vec<String>, Vec<Server>) {
    start_fleet_with(n, cache_capacity, RingOptions::default().replicas)
}

/// [`start_fleet`] with an explicit replication factor.
fn start_fleet_with(
    n: usize,
    cache_capacity: usize,
    replicas: usize,
) -> (Vec<String>, Vec<Server>) {
    let addrs = reserve_addrs(n);
    let servers = addrs
        .iter()
        .map(|addr| {
            let peers: Vec<String> = addrs.iter().filter(|a| *a != addr).cloned().collect();
            Server::bind_ring(
                addr,
                fleet_config(addr, cache_capacity),
                &peers,
                ring_options(replicas),
            )
            .expect("bind fleet node")
        })
        .collect();
    (addrs, servers)
}

/// Polls until every key in `keys` is cached by exactly `copies` fleet
/// nodes (replica fills are asynchronous pushes). Panics after ~10 s.
fn await_replication(servers: &[&Server], keys: &[u128], copies: usize) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let cached: Vec<Vec<u128>> = servers
            .iter()
            .map(|s| s.service().front_cache_keys())
            .collect();
        let done = keys
            .iter()
            .all(|key| cached.iter().filter(|node| node.contains(key)).count() == copies);
        if done {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "replica fills did not converge to {copies} copies per key"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn request_line(id: u64, cmd: Command) -> String {
    serde_json::to_string(&Request {
        id: Some(id),
        deadline_ms: None,
        no_cache: None,
        hop: None,
        trace: None,
        trace_ctx: None,
        explain: None,
        cmd,
    })
    .expect("requests serialize")
}

fn traced_request_line(id: u64, cmd: Command) -> String {
    serde_json::to_string(&Request {
        id: Some(id),
        deadline_ms: None,
        no_cache: None,
        hop: None,
        trace: Some(true),
        trace_ctx: None,
        explain: None,
        cmd,
    })
    .expect("requests serialize")
}

/// Sends one request line to `addr`, reading lines until the closing
/// `ok`/`error`.
fn roundtrip(addr: &str, line: &str) -> Vec<Response> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    writeln!(stream, "{line}").expect("send");
    stream.flush().expect("flush");
    let mut reader = BufReader::new(stream);
    let mut responses = Vec::new();
    loop {
        let mut out = String::new();
        reader.read_line(&mut out).expect("read response line");
        let resp: Response = serde_json::from_str(out.trim()).expect("well-formed response");
        let done = resp.status != "part";
        responses.push(resp);
        if done {
            return responses;
        }
    }
}

fn solve_cmd(seed: u64, latency_factor: f64) -> Command {
    let inst = rpwf_gen::make_instance(
        rpwf_core::platform::PlatformClass::CommHomogeneous,
        rpwf_core::platform::FailureClass::Heterogeneous,
        3,
        6,
        seed,
    );
    let safest = rpwf_algo::mono::minimize_failure(&inst.pipeline, &inst.platform);
    Command::Solve {
        pipeline: inst.pipeline,
        platform: inst.platform,
        objective: rpwf_algo::Objective::MinFpUnderLatency(safest.latency * latency_factor),
    }
}

fn explain_cmd(seed: u64, latency_factor: f64) -> Command {
    let inst = rpwf_gen::make_instance(
        rpwf_core::platform::PlatformClass::CommHomogeneous,
        rpwf_core::platform::FailureClass::Heterogeneous,
        3,
        6,
        seed,
    );
    let safest = rpwf_algo::mono::minimize_failure(&inst.pipeline, &inst.platform);
    Command::Explain {
        pipeline: inst.pipeline,
        platform: inst.platform,
        objective: rpwf_algo::Objective::MinFpUnderLatency(safest.latency * latency_factor),
    }
}

fn result_payload(resp: &Response) -> String {
    serde_json::to_string(&resp.result).expect("serializes")
}

#[test]
fn fleet_answers_byte_identically_from_any_entry_node() {
    let single = Server::bind("127.0.0.1:0", fleet_config("solo", 256)).expect("bind single");
    let single_addr = single.local_addr().to_string();
    let (addrs, _servers) = start_fleet(3, 256);

    for seed in 0..4u64 {
        let line = request_line(seed, solve_cmd(seed, 1.5));
        let reference = roundtrip(&single_addr, &line);
        assert_eq!(reference.len(), 1);
        assert_eq!(reference[0].status, "ok", "{:?}", reference[0].error);
        let reference_result = result_payload(&reference[0]);

        let mut owners = Vec::new();
        for entry in &addrs {
            let got = roundtrip(entry, &line);
            assert_eq!(got.len(), 1);
            assert_eq!(got[0].status, "ok", "{:?}", got[0].error);
            assert_eq!(
                result_payload(&got[0]),
                reference_result,
                "seed {seed}: entry node {entry} must answer exactly like a single node"
            );
            owners.push(
                got[0]
                    .meta
                    .node
                    .clone()
                    .expect("fleet stamps node identity"),
            );
        }
        // Whichever door the request came through, the same owner answered.
        assert!(
            owners.windows(2).all(|w| w[0] == w[1]),
            "seed {seed}: all entries must resolve to one owner, got {owners:?}"
        );
        assert!(addrs.contains(&owners[0]), "owner is a fleet member");
    }
}

#[test]
fn explanations_are_byte_identical_from_any_entry_node() {
    let single = Server::bind("127.0.0.1:0", fleet_config("solo", 256)).expect("bind single");
    let single_addr = single.local_addr().to_string();
    let (addrs, _servers) = start_fleet(3, 256);

    for seed in 0..3u64 {
        // A bound far below the front's reach: the query is infeasible,
        // so the explanation carries real MUS/MCS content to compare —
        // and repeated entries exercise both the cold (solve) and warm
        // (cached-front) oracle paths, which must not change a byte.
        let line = request_line(seed, explain_cmd(seed, 0.01));
        let reference = roundtrip(&single_addr, &line);
        assert_eq!(reference.len(), 1);
        assert_eq!(reference[0].status, "ok", "{:?}", reference[0].error);
        let reference_result = result_payload(&reference[0]);
        assert!(
            reference_result.contains("\"feasible\":false"),
            "seed {seed}: the probe bound must be infeasible: {reference_result}"
        );

        let mut owners = Vec::new();
        for entry in &addrs {
            let got = roundtrip(entry, &line);
            assert_eq!(got.len(), 1);
            assert_eq!(got[0].status, "ok", "{:?}", got[0].error);
            assert_eq!(
                result_payload(&got[0]),
                reference_result,
                "seed {seed}: entry node {entry} must explain exactly like a single node"
            );
            owners.push(
                got[0]
                    .meta
                    .node
                    .clone()
                    .expect("fleet stamps node identity"),
            );
        }
        // Explain routes by instance key like solve: one owner answers
        // whichever door the request came through.
        assert!(
            owners.windows(2).all(|w| w[0] == w[1]),
            "seed {seed}: all entries must resolve to one owner, got {owners:?}"
        );
        assert!(addrs.contains(&owners[0]), "owner is a fleet member");
    }
}

#[test]
fn owning_node_caches_exactly_one_front_per_distinct_instance() {
    // replicas: 1 — this test pins the *strict partitioning* contract;
    // the replicated contract is `replicated_fleet_holds_every_front_on_
    // primary_and_successor`.
    let (addrs, servers) = start_fleet_with(3, 256, 1);
    let ring = HashRing::new(addrs.clone(), VNODES);

    let distinct = 6u64;
    for seed in 0..distinct {
        // Two different thresholds per instance, entering via different
        // nodes: one front per instance must result, on its owner.
        let entry_a = &addrs[(seed as usize) % 3];
        let entry_b = &addrs[(seed as usize + 1) % 3];
        let first = roundtrip(entry_a, &request_line(seed, solve_cmd(seed, 1.4)));
        assert_eq!(first.last().expect("response").status, "ok");
        let second = roundtrip(entry_b, &request_line(100 + seed, solve_cmd(seed, 1.9)));
        let second = second.last().expect("response");
        assert_eq!(second.status, "ok");
        assert!(
            second.meta.cache_hit,
            "seed {seed}: second threshold over the instance must hit the owner's front cache"
        );
    }

    let mut total_entries = 0usize;
    for (addr, server) in addrs.iter().zip(&servers) {
        let keys = server.service().front_cache_keys();
        for key in &keys {
            assert_eq!(
                ring.owner(*key),
                Some(addr.as_str()),
                "node {addr} may only cache keys the ring assigns to it"
            );
        }
        total_entries += keys.len();
    }
    assert_eq!(
        total_entries, distinct as usize,
        "the fleet must hold exactly one front per distinct instance"
    );
}

#[test]
fn replicated_fleet_holds_every_front_on_primary_and_successor() {
    let (addrs, servers) = start_fleet(3, 256); // default replicas = 2
    let ring = HashRing::new(addrs.clone(), VNODES);

    let distinct = 6u64;
    let keys: Vec<u128> = (0..distinct)
        .map(|seed| {
            let cmd = solve_cmd(seed, 1.5);
            let entry = &addrs[(seed as usize) % 3];
            let got = roundtrip(entry, &request_line(seed, cmd.clone()));
            assert_eq!(got.last().expect("response").status, "ok");
            cmd.route_key().expect("solve routes")
        })
        .collect();

    // The primary solves synchronously; the successor is filled by an
    // asynchronous CacheFill push — wait for both copies.
    let server_refs: Vec<&Server> = servers.iter().collect();
    await_replication(&server_refs, &keys, 2);

    for (addr, server) in addrs.iter().zip(&servers) {
        for key in server.service().front_cache_keys() {
            let owners = ring.owners(key, 2);
            assert!(
                owners.contains(&addr.as_str()),
                "node {addr} caches a key owned by {owners:?}"
            );
        }
    }

    // The census splits the copies by role: each key counts once as
    // owned (on its primary) and once as a replica (on the successor).
    let mut owned_total = 0u64;
    let mut replica_total = 0u64;
    for entry in &addrs {
        let ring_resp = roundtrip(entry, &request_line(90, Command::Ring));
        let result = ring_resp[0].result.as_ref().expect("ring payload");
        assert_eq!(
            result.get("replicas").and_then(serde::Value::as_u64),
            Some(2)
        );
        owned_total += result
            .get("owned_cache_keys")
            .and_then(serde::Value::as_u64)
            .expect("owned census");
        replica_total += result
            .get("replica_cache_keys")
            .and_then(serde::Value::as_u64)
            .expect("replica census");
    }
    assert_eq!(owned_total, distinct, "one primary copy per instance");
    assert_eq!(replica_total, distinct, "one successor copy per instance");
}

#[test]
fn ring_command_reports_topology_and_forwarding() {
    // replicas: 1 — the forwards+owned arithmetic below assumes client
    // requests are the only peer traffic (no CacheFill pushes).
    let (addrs, _servers) = start_fleet_with(3, 64, 1);
    // Generate traffic from one entry so it must forward ~2/3 of it.
    let entry = &addrs[0];
    for seed in 0..6u64 {
        let got = roundtrip(entry, &request_line(seed, solve_cmd(seed, 1.5)));
        assert_eq!(got.last().expect("response").status, "ok");
    }

    let ring_resp = roundtrip(entry, &request_line(99, Command::Ring));
    assert_eq!(ring_resp.len(), 1);
    let result = ring_resp[0].result.as_ref().expect("ring payload");
    assert_eq!(
        result.get("node").and_then(serde::Value::as_str),
        Some(entry.as_str())
    );
    let mut nodes: Vec<String> = result
        .get("nodes")
        .and_then(serde::Value::as_seq)
        .expect("nodes list")
        .iter()
        .map(|v| v.as_str().expect("node name").to_string())
        .collect();
    nodes.sort();
    let mut expected = addrs.clone();
    expected.sort();
    assert_eq!(nodes, expected);
    let forwards: u64 = result
        .get("forwards")
        .and_then(serde::Value::as_seq)
        .expect("forward counters")
        .iter()
        .map(|f| {
            f.get("forwards")
                .and_then(serde::Value::as_u64)
                .unwrap_or(0)
        })
        .sum();
    let owned = result
        .get("owned_cache_keys")
        .and_then(serde::Value::as_u64)
        .expect("owned census");
    // A healthy unreplicated fleet: factor 1, nothing failed over, no
    // replica copies, every breaker closed.
    assert_eq!(
        result.get("replicas").and_then(serde::Value::as_u64),
        Some(1)
    );
    assert_eq!(
        result
            .get("replica_cache_keys")
            .and_then(serde::Value::as_u64),
        Some(0)
    );
    assert_eq!(
        result.get("failovers").and_then(serde::Value::as_u64),
        Some(0)
    );
    for peer in result
        .get("forwards")
        .and_then(serde::Value::as_seq)
        .expect("forward counters")
    {
        assert_eq!(
            peer.get("breaker_state").and_then(serde::Value::as_str),
            Some("closed")
        );
        assert_eq!(
            peer.get("breaker_skips").and_then(serde::Value::as_u64),
            Some(0)
        );
    }
    // 6 distinct instances spread over 3 nodes: this entry owns some and
    // forwarded the rest.
    assert_eq!(
        forwards + owned,
        6,
        "every instance either owned or forwarded"
    );

    // A routed Simulate caches a per-query *result* (keyed in a different
    // hash space); it must not show up as a phantom foreign front key.
    let sim = {
        let inst = rpwf_gen::make_instance(
            rpwf_core::platform::PlatformClass::CommHomogeneous,
            rpwf_core::platform::FailureClass::Heterogeneous,
            3,
            6,
            41,
        );
        Command::Simulate {
            pipeline: inst.pipeline,
            platform: inst.platform,
            trials: Some(200),
        }
    };
    for entry in &addrs {
        assert_eq!(
            roundtrip(entry, &request_line(50, sim.clone()))[0].status,
            "ok"
        );
    }
    for entry in &addrs {
        let ring_resp = roundtrip(entry, &request_line(51, Command::Ring));
        let foreign = ring_resp[0]
            .result
            .as_ref()
            .expect("ring payload")
            .get("foreign_cache_keys")
            .and_then(serde::Value::as_u64)
            .expect("census");
        assert_eq!(
            foreign, 0,
            "no peer died, so no node may report foreign front keys"
        );
    }

    // The metrics dump carries the same counters for scrapers.
    let metrics = roundtrip(entry, &request_line(100, Command::Metrics));
    let text = match metrics[0].result.as_ref().expect("metrics text") {
        serde::Value::Str(s) => s.clone(),
        other => panic!("metrics must be text, got {other:?}"),
    };
    assert!(text.contains("rpwf_ring_nodes 3"), "{text}");
    assert!(
        text.contains(&format!(
            "rpwf_ring_owned_cache_keys{{node=\"{entry}\"}} {owned}"
        )),
        "{text}"
    );
    assert!(text.contains("rpwf_ring_forwards_total{peer="), "{text}");
    assert!(
        text.contains(&format!("rpwf_ring_failovers_total{{node=\"{entry}\"}} 0")),
        "{text}"
    );
    assert!(text.contains("rpwf_peer_breaker_state{peer="), "{text}");
    assert!(
        text.contains("rpwf_cache_shard_hits_total{shard=\"0\"}"),
        "{text}"
    );
}

#[test]
fn traced_fleet_request_returns_one_merged_trace() {
    let (addrs, _servers) = start_fleet(3, 64);
    let ring = HashRing::new(addrs.clone(), VNODES);

    // An instance owned by node 2, entered through node 0: the request
    // must hop, and the trace must cover both sides of the hop.
    let entry = addrs[0].clone();
    let owner = addrs[2].clone();
    let seed = (0..100u64)
        .find(|&s| {
            let key = solve_cmd(s, 1.5).route_key().expect("solve routes");
            ring.owner(key) == Some(owner.as_str())
        })
        .expect("some instance lands on the owner node");

    let got = roundtrip(&entry, &traced_request_line(42, solve_cmd(seed, 1.5)));
    let resp = got.last().expect("response");
    assert_eq!(resp.status, "ok", "{:?}", resp.error);
    assert_eq!(
        resp.meta.node.as_deref(),
        Some(owner.as_str()),
        "the owner answers through the entry node"
    );
    let tree = resp.meta.trace.as_ref().expect("trace requested");

    // One merged tree: a single root, every other span parented inside.
    let roots: Vec<usize> = tree
        .spans
        .iter()
        .enumerate()
        .filter(|(_, s)| s.parent.is_none())
        .map(|(i, _)| i)
        .collect();
    assert_eq!(roots, vec![0], "exactly one root after the graft");

    let attr = |i: usize, key: &str| -> Option<&str> {
        tree.spans[i]
            .attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    };
    // The entry side: root labeled with the entry node, a route span
    // naming the owner, and the forward span labeling the hop boundary
    // with both node ids.
    assert_eq!(attr(0, "node"), Some(entry.as_str()));
    assert_eq!(attr(0, "role"), Some("entry"));
    let find = |name: &str| -> Option<usize> { tree.spans.iter().position(|s| s.name == name) };
    let route = find("route").expect("route span");
    assert_eq!(attr(route, "owner"), Some(owner.as_str()));
    let forward = find("peer.forward").expect("forward span");
    assert_eq!(attr(forward, "from"), Some(entry.as_str()));
    assert_eq!(attr(forward, "to"), Some(owner.as_str()));

    // The owner side, grafted under the forward span: its own request
    // root (labeled with the owner's node id and the hop flag), engine
    // planning, per-solver execution, and the cache write.
    let owner_root = tree
        .spans
        .iter()
        .position(|s| s.name == "request" && s.parent == Some(forward as u32))
        .expect("owner subtree grafted under the forward span");
    assert_eq!(attr(owner_root, "node"), Some(owner.as_str()));
    assert_eq!(attr(owner_root, "hop"), Some("true"));
    for required in ["decode", "engine.plan", "cache.write"] {
        assert!(
            tree.spans
                .iter()
                .any(|s| s.name == required && s.parent.is_some()),
            "missing {required} span in {:?}",
            tree.spans.iter().map(|s| &s.name).collect::<Vec<_>>()
        );
    }
    assert!(
        tree.spans.iter().any(|s| s.name.starts_with("solver.")),
        "per-solver spans must survive the hop"
    );
    assert!(
        tree.spans.iter().any(|s| s.name == "peer.connect"),
        "the peer client's connection spans must be recorded"
    );

    // Timing is coherent after the re-basing graft: every span fits
    // inside the root window (the owner's wall time is strictly inside
    // the entry's forward window).
    let root_elapsed = tree.spans[0].elapsed_us;
    for span in &tree.spans[1..] {
        assert!(
            span.start_us + span.elapsed_us <= root_elapsed + 5,
            "span {} [{}..{}] escapes the root window {root_elapsed}",
            span.name,
            span.start_us,
            span.start_us + span.elapsed_us,
        );
    }

    // Both sides logged the trace in their slow-query rings, under the
    // same trace id (the TraceContext hop propagation).
    for node in [&entry, &owner] {
        let dump = roundtrip(node, &request_line(43, Command::Trace { limit: None }));
        let entries = dump[0]
            .result
            .as_ref()
            .expect("trace payload")
            .get("entries")
            .and_then(serde::Value::as_seq)
            .expect("entries list")
            .to_vec();
        assert!(
            entries
                .iter()
                .any(|e| { e.get("id").and_then(serde::Value::as_u64) == Some(tree.id.0) }),
            "node {node} must list trace {:x} in its slow-query ring",
            tree.id.0
        );
    }

    // An untraced request through the same path stays trace-free.
    let plain = roundtrip(&entry, &request_line(44, solve_cmd(seed, 1.9)));
    assert!(plain.last().expect("response").meta.trace.is_none());
}

#[test]
fn dead_peer_degrades_to_local_solving() {
    let single = Server::bind("127.0.0.1:0", fleet_config("solo", 64)).expect("bind single");
    let single_addr = single.local_addr().to_string();
    let (addrs, mut servers) = start_fleet(3, 64);
    let ring = HashRing::new(addrs.clone(), VNODES);

    // Find an instance owned by node 2 as seen from entry node 0.
    let victim = addrs[2].clone();
    let seed = (0..100u64)
        .find(|&s| {
            let key = solve_cmd(s, 1.5).route_key().expect("solve routes");
            ring.owner(key) == Some(victim.as_str())
        })
        .expect("some instance lands on the victim node");
    let line = request_line(7, solve_cmd(seed, 1.5));
    let reference = result_payload(&roundtrip(&single_addr, &line)[0]);

    // Alive: the owner answers through the entry node.
    let before = roundtrip(&addrs[0], &line);
    assert_eq!(before[0].status, "ok");
    assert_eq!(before[0].meta.node.as_deref(), Some(victim.as_str()));
    assert_eq!(result_payload(&before[0]), reference);

    // Kill the owner: drop stops the accept loop and closes the listener.
    let dead = servers.remove(2);
    drop(dead);

    // A survivor answers — the successor replica, or the entry node
    // solving locally — with the same bytes. Only the dead node is out.
    let after = roundtrip(&addrs[0], &line);
    assert_eq!(after[0].status, "ok", "{:?}", after[0].error);
    let responder = after[0].meta.node.clone().expect("node identity");
    assert_ne!(responder, victim, "the dead node cannot have answered");
    assert!(addrs.contains(&responder), "a fleet member answered");
    assert_eq!(
        result_payload(&after[0]),
        reference,
        "degraded answers must stay byte-identical"
    );

    // The failure is visible in the entry's ring introspection.
    let ring_resp = roundtrip(&addrs[0], &request_line(8, Command::Ring));
    let failures: u64 = ring_resp[0]
        .result
        .as_ref()
        .expect("ring payload")
        .get("forwards")
        .and_then(serde::Value::as_seq)
        .expect("forward counters")
        .iter()
        .map(|f| {
            f.get("failures")
                .and_then(serde::Value::as_u64)
                .unwrap_or(0)
        })
        .sum();
    assert!(failures >= 1, "the dead peer must be counted");
}

/// The entry node's circuit-breaker state toward `peer`, read from its
/// `Ring` introspection payload.
fn breaker_state(entry: &str, peer: &str) -> Option<String> {
    let resp = roundtrip(entry, &request_line(9999, Command::Ring));
    resp[0]
        .result
        .as_ref()?
        .get("forwards")?
        .as_seq()?
        .iter()
        .find(|f| f.get("peer").and_then(serde::Value::as_str) == Some(peer))
        .and_then(|f| f.get("breaker_state").and_then(serde::Value::as_str))
        .map(str::to_string)
}

#[test]
fn chaos_kill_one_node_mid_load_keeps_every_answer_identical() {
    let single = Server::bind("127.0.0.1:0", fleet_config("solo", 256)).expect("bind single");
    let single_addr = single.local_addr().to_string();
    let (addrs, mut servers) = start_fleet(3, 256);
    let ring = HashRing::new(addrs.clone(), VNODES);

    // Warm the whole keyspace through rotating entry nodes, recording
    // reference bytes from a single-node control.
    let seeds: Vec<u64> = (0..6).collect();
    let mut references = Vec::new();
    let mut keys = Vec::new();
    for &seed in &seeds {
        let cmd = solve_cmd(seed, 1.5);
        keys.push(cmd.route_key().expect("solve routes"));
        let line = request_line(seed, cmd);
        references.push(result_payload(&roundtrip(&single_addr, &line)[0]));
        let got = roundtrip(&addrs[(seed as usize) % 3], &line);
        assert_eq!(got[0].status, "ok", "{:?}", got[0].error);
    }
    // Both copies of every front must be in place before the kill.
    let server_refs: Vec<&Server> = servers.iter().collect();
    await_replication(&server_refs, &keys, 2);

    // Kill one node mid-load.
    let victim = addrs[2].clone();
    let victim_owned = keys
        .iter()
        .filter(|&&k| ring.owner(k) == Some(victim.as_str()))
        .count();
    drop(servers.remove(2));

    // Every answer from either survivor: still ok, still the reference
    // bytes, and — because both copies were warm — never re-solved.
    for (&seed, reference) in seeds.iter().zip(&references) {
        let line = request_line(200 + seed, solve_cmd(seed, 1.5));
        for entry in &addrs[..2] {
            let got = roundtrip(entry, &line);
            assert_eq!(got[0].status, "ok", "{:?}", got[0].error);
            assert_eq!(
                result_payload(&got[0]),
                *reference,
                "seed {seed} via {entry}: answers must survive the kill byte-identically"
            );
            assert!(
                got[0].meta.cache_hit,
                "seed {seed} via {entry}: both copies were warm, nobody may re-solve"
            );
            assert_ne!(got[0].meta.node.as_deref(), Some(victim.as_str()));
        }
    }

    // Keys whose primary died were served through the failover path.
    if victim_owned > 0 {
        let failovers: u64 = addrs[..2]
            .iter()
            .map(|entry| {
                roundtrip(entry, &request_line(300, Command::Ring))[0]
                    .result
                    .as_ref()
                    .expect("ring payload")
                    .get("failovers")
                    .and_then(serde::Value::as_u64)
                    .unwrap_or(0)
            })
            .sum();
        assert!(
            failovers >= 1,
            "{victim_owned} keys lost their primary, so someone must have failed over"
        );
    }
}

#[test]
fn breaker_opens_on_a_dead_peer_and_recloses_after_restart() {
    let (addrs, mut servers) = start_fleet(3, 64);
    let ring = HashRing::new(addrs.clone(), VNODES);
    let entry = addrs[0].clone();
    let victim = addrs[2].clone();
    let seed = (0..100u64)
        .find(|&s| {
            let key = solve_cmd(s, 1.5).route_key().expect("solve routes");
            ring.owner(key) == Some(victim.as_str())
        })
        .expect("some instance lands on the victim node");

    drop(servers.remove(2));

    // Hammer the dead primary until the entry's breaker trips (threshold:
    // 3 consecutive failures) — every answer still succeeds via failover.
    for i in 0..4u64 {
        let got = roundtrip(&entry, &request_line(400 + i, solve_cmd(seed, 1.5)));
        assert_eq!(got[0].status, "ok", "{:?}", got[0].error);
    }
    assert_eq!(
        breaker_state(&entry, &victim).as_deref(),
        Some("open"),
        "three consecutive failures must open the breaker"
    );

    // Revive the node on the same address (the port can linger briefly
    // after the old listener closes).
    let peers: Vec<String> = addrs.iter().filter(|a| **a != victim).cloned().collect();
    let bind_deadline = Instant::now() + Duration::from_secs(10);
    let _revived = loop {
        match Server::bind_ring(
            &victim,
            fleet_config(&victim, 64),
            &peers,
            ring_options(RingOptions::default().replicas),
        ) {
            Ok(server) => break server,
            Err(err) => {
                assert!(
                    Instant::now() < bind_deadline,
                    "could not rebind {victim}: {err}"
                );
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    };

    // The breaker half-opens once its backoff expires, the probe
    // succeeds, and the revived owner answers again.
    let probe_deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let got = roundtrip(&entry, &request_line(500, solve_cmd(seed, 1.5)));
        assert_eq!(got[0].status, "ok", "{:?}", got[0].error);
        if got[0].meta.node.as_deref() == Some(victim.as_str()) {
            break;
        }
        assert!(
            Instant::now() < probe_deadline,
            "breaker never re-admitted the revived peer"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    assert_eq!(
        breaker_state(&entry, &victim).as_deref(),
        Some("closed"),
        "a successful probe must re-close the breaker"
    );
}

#[test]
fn scripted_faults_never_leak_a_wrong_byte() {
    let single = Server::bind("127.0.0.1:0", fleet_config("solo", 64)).expect("bind single");
    let single_addr = single.local_addr().to_string();

    let addrs = reserve_addrs(2);
    let (a_addr, b_addr) = (addrs[0].clone(), addrs[1].clone());
    // replicas: 1 — every B-owned request from A must cross the wire, so
    // B's global request counter advances exactly once per forwarded
    // line and the scripted indices stay aligned with the sends below.
    let _a = Server::bind_ring(
        &a_addr,
        fleet_config(&a_addr, 64),
        std::slice::from_ref(&b_addr),
        ring_options(1),
    )
    .expect("bind node a");
    let plan = Arc::new(
        FaultPlan::new(0xBAD5EED)
            .corrupt_line_at(0)
            .drop_connection_at(1)
            .delay_response_at(2, Duration::from_millis(50))
            .kill_node_at(3),
    );
    let _b = Server::bind_ring_faulted(
        &b_addr,
        fleet_config(&b_addr, 64),
        std::slice::from_ref(&a_addr),
        ring_options(1),
        Some(Arc::clone(&plan)),
    )
    .expect("bind node b");

    let ring = HashRing::new(addrs.clone(), VNODES);
    let seeds: Vec<u64> = (0..200u64)
        .filter(|&s| {
            let key = solve_cmd(s, 1.5).route_key().expect("solve routes");
            ring.owner(key) == Some(b_addr.as_str())
        })
        .take(5)
        .collect();
    assert_eq!(seeds.len(), 5, "need five B-owned instances");

    // B's schedule, by forwarded request index: 0 answers garbage,
    // 1 severs the connection, 2 answers late, 3 kills the node,
    // 4 arrives at a corpse.
    for (i, &seed) in seeds.iter().enumerate() {
        let line = request_line(600 + i as u64, solve_cmd(seed, 1.5));
        let reference = result_payload(&roundtrip(&single_addr, &line)[0]);
        let got = roundtrip(&a_addr, &line);
        assert_eq!(got[0].status, "ok", "request {i}: {:?}", got[0].error);
        assert_eq!(
            result_payload(&got[0]),
            reference,
            "request {i}: a scripted fault leaked wrong bytes to the client"
        );
        let responder = got[0].meta.node.clone().expect("node identity");
        if i == 2 {
            assert_eq!(responder, b_addr, "the delayed response still comes from B");
        } else {
            assert_eq!(
                responder, a_addr,
                "request {i} must degrade to a local solve"
            );
        }
    }
    assert!(plan.killed(), "the scripted kill must have fired");

    // A's view of the carnage: one clean forward (the delayed answer),
    // a counted failure for each of corrupt/drop/kill/dead, and no
    // timeouts (every scripted fault here fails fast, not slow).
    let ring_resp = roundtrip(&a_addr, &request_line(700, Command::Ring));
    let forwards = ring_resp[0]
        .result
        .as_ref()
        .expect("ring payload")
        .get("forwards")
        .and_then(serde::Value::as_seq)
        .expect("forward counters")
        .to_vec();
    let peer = &forwards[0];
    assert_eq!(peer.get("forwards").and_then(serde::Value::as_u64), Some(1));
    assert_eq!(peer.get("timeouts").and_then(serde::Value::as_u64), Some(0));
    assert!(
        peer.get("failures")
            .and_then(serde::Value::as_u64)
            .unwrap_or(0)
            >= 3,
        "corrupt, drop, and dead-node forwards must all be counted: {peer:?}"
    );
    // The delayed success at request 2 reset the failure streak, so the
    // threshold of 3 consecutive failures was never reached.
    assert_eq!(
        peer.get("breaker_state").and_then(serde::Value::as_str),
        Some("closed")
    );
}

#[test]
fn concurrent_clients_survive_a_dead_primary_with_identical_answers() {
    let single = Server::bind("127.0.0.1:0", fleet_config("solo", 64)).expect("bind single");
    let single_addr = single.local_addr().to_string();
    let (addrs, mut servers) = start_fleet(3, 64);
    let ring = HashRing::new(addrs.clone(), VNODES);

    let victim = addrs[2].clone();
    let seed = (0..100u64)
        .find(|&s| {
            let key = solve_cmd(s, 1.5).route_key().expect("solve routes");
            ring.owner(key) == Some(victim.as_str())
        })
        .expect("some instance lands on the victim node");
    let line = request_line(9, solve_cmd(seed, 1.5));
    let reference = result_payload(&roundtrip(&single_addr, &line)[0]);

    drop(servers.remove(2));

    // Eight clients hammer the dead primary's key through both survivors
    // at once; every one must get the reference bytes back.
    let handles: Vec<_> = (0..8)
        .map(|i| {
            let entry = addrs[i % 2].clone();
            let line = line.clone();
            std::thread::spawn(move || {
                let got = roundtrip(&entry, &line);
                assert_eq!(got[0].status, "ok", "{:?}", got[0].error);
                result_payload(&got[0])
            })
        })
        .collect();
    for handle in handles {
        assert_eq!(
            handle.join().expect("client thread"),
            reference,
            "concurrent degraded answers must stay byte-identical"
        );
    }
}

#[test]
fn chunked_pareto_streams_through_the_fleet() {
    // A forwarded chunked Pareto reassembles exactly like a single node's.
    let single = Server::bind("127.0.0.1:0", fleet_config("solo", 64)).expect("bind single");
    let single_addr = single.local_addr().to_string();
    let (addrs, _servers) = start_fleet(3, 64);

    let inst = rpwf_gen::make_instance(
        rpwf_core::platform::PlatformClass::CommHomogeneous,
        rpwf_core::platform::FailureClass::Heterogeneous,
        3,
        6,
        11,
    );
    let cmd = Command::Pareto {
        pipeline: inst.pipeline,
        platform: inst.platform,
        chunk: Some(2),
    };
    let line = request_line(5, cmd);
    let reference = roundtrip(&single_addr, &line);
    for entry in &addrs {
        let got = roundtrip(entry, &line);
        assert_eq!(got.len(), reference.len(), "same number of stream lines");
        for (g, r) in got.iter().zip(&reference) {
            assert_eq!(g.status, r.status);
            assert_eq!(result_payload(g), result_payload(r));
        }
    }
}

/// Kills fleet child processes even when the test panics.
struct ChildGuard(Vec<std::process::Child>);

impl Drop for ChildGuard {
    fn drop(&mut self) {
        for child in &mut self.0 {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

#[test]
fn multi_process_fleet_over_the_rpwf_binary() {
    let addrs = reserve_addrs(3);
    let mut children = ChildGuard(Vec::new());
    for addr in &addrs {
        let peers: Vec<String> = addrs.iter().filter(|a| *a != addr).cloned().collect();
        let child = std::process::Command::new(env!("CARGO_BIN_EXE_rpwf"))
            .args([
                "serve",
                "--addr",
                addr,
                "--node-id",
                addr,
                "--peers",
                &peers.join(","),
                "--workers",
                "2",
            ])
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::null())
            .spawn()
            .expect("spawn rpwf serve");
        children.0.push(child);
    }
    // Wait for each node to announce readiness on stdout.
    for child in &mut children.0 {
        let stdout = child.stdout.as_mut().expect("piped stdout");
        let mut line = String::new();
        BufReader::new(stdout).read_line(&mut line).expect("banner");
        assert!(line.contains("listening"), "{line}");
    }
    // Give the deadline a margin: processes just started.
    let deadline = Instant::now() + std::time::Duration::from_secs(60);
    let line = request_line(1, solve_cmd(3, 1.6));
    let mut payloads = Vec::new();
    for entry in &addrs {
        assert!(Instant::now() < deadline, "fleet test overran its budget");
        let got = roundtrip(entry, &line);
        assert_eq!(got[0].status, "ok", "{:?}", got[0].error);
        payloads.push(result_payload(&got[0]));
    }
    assert!(
        payloads.windows(2).all(|w| w[0] == w[1]),
        "all three processes must answer identically"
    );
}
