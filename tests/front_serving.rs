//! Integration tests for the front-first serving architecture: chunked
//! `front_part` streaming reassembling bit-identically to the one-shot
//! response, front sharing between `Solve` and `Pareto`, batch grouping,
//! and the observability commands.

use rpwf::prelude::*;
use rpwf_server::protocol::{Command, Request, Response};
use rpwf_server::{Server, ServiceConfig, SolverService, WorkerPool};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

fn start_server() -> Server {
    Server::bind(
        "127.0.0.1:0",
        ServiceConfig {
            workers: 4,
            cache_capacity: 256,
            cache_shards: 8,
            seed: 0xCAFE,
            solver_threads: 1,
            node_id: None,
        },
    )
    .expect("bind an ephemeral port")
}

fn request_line(id: u64, cmd: Command) -> String {
    serde_json::to_string(&Request {
        id: Some(id),
        deadline_ms: None,
        no_cache: None,
        trace: None,
        trace_ctx: None,
        explain: None,
        hop: None,
        cmd,
    })
    .expect("requests serialize")
}

/// Sends one request and reads response lines until the closing `ok` or
/// `error` line (streamed requests emit `part` lines first).
fn roundtrip_stream(addr: std::net::SocketAddr, line: &str) -> Vec<Response> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    writeln!(stream, "{line}").expect("send");
    stream.flush().expect("flush");
    let mut reader = BufReader::new(stream);
    let mut responses = Vec::new();
    loop {
        let mut out = String::new();
        reader.read_line(&mut out).expect("read response line");
        let resp: Response = serde_json::from_str(out.trim()).expect("well-formed response");
        let done = resp.status != "part";
        responses.push(resp);
        if done {
            return responses;
        }
    }
}

fn fig5_pareto(chunk: Option<usize>) -> Command {
    Command::Pareto {
        pipeline: gen::figure5_pipeline(),
        platform: gen::figure5_platform(),
        chunk,
    }
}

#[test]
fn streamed_front_reassembles_bit_identically_over_tcp() {
    let mut server = start_server();
    let addr = server.local_addr();

    // One-shot front.
    let one_shot = roundtrip_stream(addr, &request_line(1, fig5_pareto(None)));
    assert_eq!(one_shot.len(), 1);
    let one_shot = &one_shot[0];
    assert_eq!(one_shot.status, "ok", "{:?}", one_shot.error);
    let result = one_shot.result.as_ref().expect("front payload");
    let expected_points = result.get("points").cloned().expect("points");
    let expected_complete = result.get("complete").cloned().expect("complete");
    let expected_len = expected_points
        .as_seq()
        .expect("points is a sequence")
        .len();
    assert!(expected_len >= 2, "figure 5 front has several points");

    // Streamed with a chunk smaller than the front.
    let responses = roundtrip_stream(addr, &request_line(2, fig5_pareto(Some(2))));
    let (end, parts) = responses.split_last().expect("closing line");
    assert_eq!(end.status, "ok", "{:?}", end.error);
    assert!(
        parts.len() >= 2,
        "chunk=2 over {expected_len} points must stream several parts"
    );
    let mut reassembled: Vec<serde::Value> = Vec::new();
    for (i, part) in parts.iter().enumerate() {
        assert_eq!(part.status, "part");
        assert_eq!(part.id, Some(2), "parts echo the request id");
        let payload = part.result.as_ref().expect("part payload");
        assert_eq!(
            payload.get("seq").and_then(serde::Value::as_u64),
            Some(i as u64),
            "parts arrive in seq order"
        );
        let points = payload
            .get("points")
            .and_then(serde::Value::as_seq)
            .expect("part points");
        assert!(points.len() <= 2, "per-response memory bounded by chunk");
        reassembled.extend(points.iter().cloned());
    }
    let end_payload = end.result.as_ref().expect("end payload");
    assert_eq!(
        end_payload
            .get("points_total")
            .and_then(serde::Value::as_u64),
        Some(expected_len as u64)
    );
    assert_eq!(end_payload.get("complete"), Some(&expected_complete));

    // Bit-identical reassembly: the concatenated part points serialize to
    // exactly the bytes of the one-shot points.
    assert_eq!(
        serde_json::to_string(&serde::Value::Seq(reassembled)).expect("serializes"),
        serde_json::to_string(&expected_points).expect("serializes"),
        "streamed chunks must reassemble to the exact one-shot front"
    );
    server.shutdown();
}

#[test]
fn solve_and_pareto_share_one_cached_front_across_connections() {
    let mut server = start_server();
    let addr = server.local_addr();

    // A Pareto request warms the front…
    let front = roundtrip_stream(addr, &request_line(1, fig5_pareto(None)));
    assert!(!front[0].meta.cache_hit);

    // …and a threshold query over the same instance reads off it.
    let solve = roundtrip_stream(
        addr,
        &request_line(
            2,
            Command::Solve {
                pipeline: gen::figure5_pipeline(),
                platform: gen::figure5_platform(),
                objective: rpwf::algo::Objective::MinFpUnderLatency(22.0),
            },
        ),
    );
    let solve = &solve[0];
    assert_eq!(solve.status, "ok", "{:?}", solve.error);
    assert!(
        solve.meta.cache_hit,
        "a threshold query must be a read off the front cached by pareto"
    );
    assert_eq!(solve.meta.exact_complete, Some(true));
    let fp = solve
        .result
        .as_ref()
        .and_then(|r| r.get("failure_prob"))
        .and_then(serde::Value::as_f64)
        .expect("failure_prob");
    let expected = 1.0 - 0.9 * (1.0 - 0.8f64.powi(10));
    assert!((fp - expected).abs() < 1e-9, "paper optimum off the front");
    server.shutdown();
}

#[test]
fn grouped_batch_answers_match_per_request_solving() {
    // 16 threshold queries over 2 distinct instances, grouped vs solved
    // independently on a cache-less service: byte-identical results.
    let instances: Vec<(Pipeline, Platform)> = (0..2u64)
        .map(|seed| {
            let inst = gen::make_instance(
                PlatformClass::CommHomogeneous,
                FailureClass::Heterogeneous,
                4,
                6,
                seed,
            );
            (inst.pipeline, inst.platform)
        })
        .collect();
    let lines: Vec<String> = (0..16u64)
        .map(|i| {
            let (pipeline, platform) = instances[(i % 2) as usize].clone();
            let l = rpwf::algo::mono::minimize_failure(&pipeline, &platform).latency;
            request_line(
                i,
                Command::Solve {
                    pipeline,
                    platform,
                    objective: rpwf::algo::Objective::MinFpUnderLatency(
                        l * (1.0 + i as f64 / 16.0),
                    ),
                },
            )
        })
        .collect();

    let grouped_pool = WorkerPool::new(std::sync::Arc::new(SolverService::new(ServiceConfig {
        workers: 4,
        ..Default::default()
    })));
    let grouped = grouped_pool.submit_batch(lines.clone());

    let independent_pool =
        WorkerPool::new(std::sync::Arc::new(SolverService::new(ServiceConfig {
            workers: 4,
            cache_capacity: 0,
            ..Default::default()
        })));
    let independent = independent_pool.submit_batch_ungrouped(lines);

    assert_eq!(grouped.len(), independent.len());
    for (g, i) in grouped.iter().zip(&independent) {
        let g: Response = serde_json::from_str(g).expect("parses");
        let i: Response = serde_json::from_str(i).expect("parses");
        assert_eq!(g.status, "ok", "{:?}", g.error);
        assert_eq!(
            serde_json::to_string(&g.result).expect("serializes"),
            serde_json::to_string(&i.result).expect("serializes"),
            "grouping must not change any answer"
        );
    }
}

#[test]
fn stats_and_metrics_expose_command_histograms() {
    let mut server = start_server();
    let addr = server.local_addr();
    let _ = roundtrip_stream(addr, &request_line(1, fig5_pareto(None)));

    let stats = roundtrip_stream(addr, &request_line(2, Command::Stats));
    let stats = &stats[0];
    assert_eq!(stats.status, "ok");
    let text = serde_json::to_string(&stats.result).expect("serializes");
    assert!(text.contains("\"commands\""), "{text}");
    assert!(text.contains("\"command\":\"pareto\""), "{text}");
    assert!(text.contains("\"p99_us\""), "{text}");

    let metrics = roundtrip_stream(addr, &request_line(3, Command::Metrics));
    let metrics = &metrics[0];
    assert_eq!(metrics.status, "ok");
    let dump = metrics
        .result
        .as_ref()
        .and_then(serde::Value::as_str)
        .expect("metrics text");
    assert!(
        dump.contains("rpwf_command_requests_total{cmd=\"pareto\"} 1"),
        "{dump}"
    );
    assert!(dump.contains("rpwf_cache_entries"), "{dump}");
    server.shutdown();
}
