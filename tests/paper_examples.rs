//! E1 + E2 — end-to-end reproduction of the paper's §3 worked examples
//! through the public facade API.

use rpwf::prelude::*;
use rpwf_algo::exact::{solve_comm_homog, Exhaustive};
use rpwf_algo::heuristics::single_interval::best_single_interval;
use rpwf_algo::mono::general_mapping_shortest_path;
use rpwf_core::assert_approx_eq;

/// E1 — Figures 3 & 4: single-processor latency 105, optimal split 7.
#[test]
fn e1_figure34_single_processor_is_105() {
    let pipeline = gen::figure3_pipeline();
    let platform = gen::figure4_platform();
    for u in 0..2u32 {
        let whole = IntervalMapping::single_interval(2, vec![ProcId(u)], 2).unwrap();
        assert_approx_eq!(latency(&whole, &pipeline, &platform), 105.0);
    }
}

#[test]
fn e1_figure34_shortest_path_finds_7() {
    let pipeline = gen::figure3_pipeline();
    let platform = gen::figure4_platform();
    let (mapping, lat) = general_mapping_shortest_path(&pipeline, &platform);
    assert_approx_eq!(lat, 7.0);
    assert_eq!(mapping.procs(), &[ProcId(0), ProcId(1)]);
}

#[test]
fn e1_figure34_exhaustive_interval_optimum_is_7() {
    let pipeline = gen::figure3_pipeline();
    let platform = gen::figure4_platform();
    let oracle = Exhaustive::new(&pipeline, &platform).min_latency();
    assert_approx_eq!(oracle.latency, 7.0);
    assert_eq!(oracle.mapping.n_intervals(), 2);
}

/// E2 — Figure 5: best single interval FP = 0.64 at L ≤ 22; two-interval
/// optimum FP = 1 − 0.9·(1 − 0.8^10) ≈ 0.1966 < 0.2.
#[test]
fn e2_figure5_single_interval_is_064() {
    let pipeline = gen::figure5_pipeline();
    let platform = gen::figure5_platform();
    let sol = best_single_interval(&pipeline, &platform, Objective::MinFpUnderLatency(22.0))
        .expect("two fast replicas are feasible");
    assert_approx_eq!(sol.failure_prob, 0.64);
    assert_approx_eq!(sol.latency, 21.01);
}

#[test]
fn e2_figure5_optimum_is_two_intervals_below_02() {
    let pipeline = gen::figure5_pipeline();
    let platform = gen::figure5_platform();
    let sol = solve_comm_homog(&pipeline, &platform, Objective::MinFpUnderLatency(22.0))
        .unwrap()
        .expect("feasible");
    assert_approx_eq!(sol.latency, 22.0);
    assert_approx_eq!(sol.failure_prob, 1.0 - 0.9 * (1.0 - 0.8f64.powi(10)));
    assert!(sol.failure_prob < 0.2);
    assert_eq!(sol.mapping.n_intervals(), 2);
    assert_eq!(sol.mapping.alloc(0), &[ProcId(0)]);
    assert_eq!(sol.mapping.replication(1), 10);
}

/// The Figure 5 structure survives on a reduced platform where the
/// brute-force oracle is also tractable — both solvers agree.
#[test]
fn e2_figure5_reduced_oracle_agreement() {
    let pipeline = gen::figure5_pipeline();
    let mut speeds = vec![100.0; 5];
    speeds[0] = 1.0;
    let mut fps = vec![0.8; 5];
    fps[0] = 0.1;
    let platform = Platform::comm_homogeneous(speeds, 1.0, fps).unwrap();

    let threshold = 16.0; // 10 + 1 + 4·1 + 1 + 0
    let dp = solve_comm_homog(
        &pipeline,
        &platform,
        Objective::MinFpUnderLatency(threshold),
    )
    .unwrap()
    .expect("feasible");
    let oracle = Exhaustive::new(&pipeline, &platform)
        .solve(Objective::MinFpUnderLatency(threshold))
        .expect("feasible");
    assert_approx_eq!(dp.failure_prob, oracle.failure_prob);
    assert_approx_eq!(dp.latency, oracle.latency);
}
