//! E3–E5 — the polynomial algorithms match the exhaustive oracle on random
//! instance suites of their platform classes.

use rpwf::prelude::*;
use rpwf_algo::bicriteria;
use rpwf_algo::exact::Exhaustive;
use rpwf_algo::mono;
use rpwf_core::assert_approx_eq;
use rpwf_gen::SuiteSpec;

/// Latency thresholds that probe the interesting region of an instance:
/// between the latency floor (Thm 2-style) and the all-replica ceiling.
fn latency_thresholds(pipeline: &Pipeline, platform: &Platform) -> Vec<f64> {
    let lo = Exhaustive::new(pipeline, platform).min_latency().latency;
    let hi = mono::minimize_failure(pipeline, platform).latency;
    (0..5).map(|i| lo + (hi - lo) * i as f64 / 4.0).collect()
}

fn fp_thresholds(pipeline: &Pipeline, platform: &Platform) -> Vec<f64> {
    let floor = mono::minimize_failure(pipeline, platform).failure_prob;
    vec![floor * 0.5, floor, (floor + 1.0) / 2.0, 0.9, 1.0]
}

/// E3 — Theorem 1: replicate-all equals the oracle's FP minimum on every
/// class combination.
#[test]
fn e3_thm1_matches_oracle_on_all_classes() {
    for class in [
        PlatformClass::FullyHomogeneous,
        PlatformClass::CommHomogeneous,
        PlatformClass::FullyHeterogeneous,
    ] {
        for failure in [FailureClass::Homogeneous, FailureClass::Heterogeneous] {
            for inst in (SuiteSpec {
                sizes: vec![(3, 4), (4, 4)],
                seeds: vec![5, 31],
                ..SuiteSpec::small(class, failure)
            })
            .instances()
            {
                let thm1 = mono::minimize_failure(&inst.pipeline, &inst.platform);
                let oracle = Exhaustive::new(&inst.pipeline, &inst.platform).min_failure();
                assert_approx_eq!(thm1.failure_prob, oracle.failure_prob);
            }
        }
    }
}

/// Theorem 2: fastest-single-processor equals the oracle latency minimum on
/// comm-homogeneous platforms.
#[test]
fn thm2_matches_oracle_on_comm_homog() {
    let suite = SuiteSpec::small(PlatformClass::CommHomogeneous, FailureClass::Heterogeneous);
    for inst in suite.instances() {
        let thm2 = mono::minimize_latency_comm_homog(&inst.pipeline, &inst.platform).unwrap();
        let oracle = Exhaustive::new(&inst.pipeline, &inst.platform).min_latency();
        assert_approx_eq!(thm2.latency, oracle.latency);
    }
}

/// E4 — Algorithms 1 & 2 (Fully Homogeneous) match the oracle across
/// threshold sweeps.
#[test]
fn e4_algorithms_1_and_2_match_oracle() {
    let suite = SuiteSpec::small(PlatformClass::FullyHomogeneous, FailureClass::Homogeneous);
    for inst in suite.instances().into_iter().take(12) {
        for l in latency_thresholds(&inst.pipeline, &inst.platform) {
            let alg =
                bicriteria::fully_homog::min_fp_under_latency(&inst.pipeline, &inst.platform, l)
                    .ok();
            let oracle = Exhaustive::new(&inst.pipeline, &inst.platform)
                .solve(Objective::MinFpUnderLatency(l));
            match (alg, oracle) {
                (Some(a), Some(o)) => assert_approx_eq!(a.failure_prob, o.failure_prob),
                (None, None) => {}
                (a, o) => panic!("{} @ L={l}: {a:?} vs {o:?}", inst.label),
            }
        }
        for f in fp_thresholds(&inst.pipeline, &inst.platform) {
            let alg =
                bicriteria::fully_homog::min_latency_under_fp(&inst.pipeline, &inst.platform, f)
                    .ok();
            let oracle = Exhaustive::new(&inst.pipeline, &inst.platform)
                .solve(Objective::MinLatencyUnderFp(f));
            match (alg, oracle) {
                (Some(a), Some(o)) => assert_approx_eq!(a.latency, o.latency),
                (None, None) => {}
                (a, o) => panic!("{} @ FP={f}: {a:?} vs {o:?}", inst.label),
            }
        }
    }
}

/// E5 — Algorithms 3 & 4 (Comm Homogeneous + Failure Homogeneous) match the
/// oracle across threshold sweeps.
#[test]
fn e5_algorithms_3_and_4_match_oracle() {
    let suite = SuiteSpec::small(PlatformClass::CommHomogeneous, FailureClass::Homogeneous);
    for inst in suite.instances().into_iter().take(12) {
        for l in latency_thresholds(&inst.pipeline, &inst.platform) {
            let alg =
                bicriteria::comm_homog::min_fp_under_latency(&inst.pipeline, &inst.platform, l)
                    .ok();
            let oracle = Exhaustive::new(&inst.pipeline, &inst.platform)
                .solve(Objective::MinFpUnderLatency(l));
            match (alg, oracle) {
                (Some(a), Some(o)) => assert_approx_eq!(a.failure_prob, o.failure_prob),
                (None, None) => {}
                (a, o) => panic!("{} @ L={l}: {a:?} vs {o:?}", inst.label),
            }
        }
        for f in fp_thresholds(&inst.pipeline, &inst.platform) {
            let alg =
                bicriteria::comm_homog::min_latency_under_fp(&inst.pipeline, &inst.platform, f)
                    .ok();
            let oracle = Exhaustive::new(&inst.pipeline, &inst.platform)
                .solve(Objective::MinLatencyUnderFp(f));
            match (alg, oracle) {
                (Some(a), Some(o)) => assert_approx_eq!(a.latency, o.latency),
                (None, None) => {}
                (a, o) => panic!("{} @ FP={f}: {a:?} vs {o:?}", inst.label),
            }
        }
    }
}

/// The polynomial dispatcher picks the right algorithm per class and
/// agrees with the oracle.
#[test]
fn polynomial_dispatch_agrees_with_oracle() {
    for (class, failure) in [
        (PlatformClass::FullyHomogeneous, FailureClass::Homogeneous),
        (PlatformClass::CommHomogeneous, FailureClass::Homogeneous),
    ] {
        let suite = SuiteSpec {
            sizes: vec![(3, 4)],
            seeds: vec![71, 72],
            ..SuiteSpec::small(class, failure)
        };
        for inst in suite.instances() {
            for l in latency_thresholds(&inst.pipeline, &inst.platform) {
                let dispatched = bicriteria::solve_polynomial(
                    &inst.pipeline,
                    &inst.platform,
                    Objective::MinFpUnderLatency(l),
                );
                let oracle = Exhaustive::new(&inst.pipeline, &inst.platform)
                    .solve(Objective::MinFpUnderLatency(l));
                match (dispatched, oracle) {
                    (Ok(Some(a)), Some(o)) => assert_approx_eq!(a.failure_prob, o.failure_prob),
                    (Err(_), None) => {}
                    (a, o) => panic!("{} @ L={l}: {a:?} vs {o:?}", inst.label),
                }
            }
        }
    }
}
