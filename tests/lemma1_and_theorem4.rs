//! E6 + E9 — Lemma 1's single-interval optimality and Theorem 4's
//! shortest-path solver, validated against brute force on random suites.

use rpwf::prelude::*;
use rpwf_algo::exact::{min_latency_general_brute, min_latency_interval, Exhaustive};
use rpwf_algo::mono::general_mapping_shortest_path;
use rpwf_core::assert_approx_eq;
use rpwf_gen::SuiteSpec;

/// E9 — Lemma 1 on Fully Homogeneous platforms (including heterogeneous
/// failures, the lemma's most general setting): every Pareto-optimal point
/// is matched by a single-interval mapping.
#[test]
fn e9_lemma1_fully_homogeneous() {
    for failure in [FailureClass::Homogeneous, FailureClass::Heterogeneous] {
        let suite = SuiteSpec {
            sizes: vec![(3, 4), (4, 4)],
            seeds: vec![3, 14, 15],
            ..SuiteSpec::small(PlatformClass::FullyHomogeneous, failure)
        };
        for inst in suite.instances() {
            let front = Exhaustive::new(&inst.pipeline, &inst.platform).pareto_front();
            for pt in front.iter() {
                // Some single-interval mapping must weakly dominate this point.
                let dominated_by_single = front.iter().any(|q| {
                    q.payload.n_intervals() == 1
                        && q.latency <= pt.latency + 1e-9
                        && q.failure_prob <= pt.failure_prob + 1e-9
                });
                assert!(
                    dominated_by_single,
                    "{}: point ({}, {}) not covered by a single interval",
                    inst.label, pt.latency, pt.failure_prob
                );
            }
        }
    }
}

/// E9 — Lemma 1 on Comm Homogeneous + Failure Homogeneous platforms.
#[test]
fn e9_lemma1_comm_homogeneous_failure_homogeneous() {
    let suite = SuiteSpec {
        sizes: vec![(3, 4), (4, 5)],
        seeds: vec![8, 21, 34],
        ..SuiteSpec::small(PlatformClass::CommHomogeneous, FailureClass::Homogeneous)
    };
    for inst in suite.instances() {
        let front = Exhaustive::new(&inst.pipeline, &inst.platform).pareto_front();
        for pt in front.iter() {
            let dominated_by_single = front.iter().any(|q| {
                q.payload.n_intervals() == 1
                    && q.latency <= pt.latency + 1e-9
                    && q.failure_prob <= pt.failure_prob + 1e-9
            });
            assert!(dominated_by_single, "{}: Lemma 1 violated", inst.label);
        }
    }
}

/// The counterexample direction: with heterogeneous failures on a
/// comm-homogeneous platform, Lemma 1 *fails* — Figure 5 is the witness.
#[test]
fn e9_lemma1_fails_on_failure_heterogeneous() {
    let pipeline = gen::figure5_pipeline();
    let mut speeds = vec![100.0; 5];
    speeds[0] = 1.0;
    let mut fps = vec![0.8; 5];
    fps[0] = 0.1;
    let platform = Platform::comm_homogeneous(speeds, 1.0, fps).unwrap();
    let front = Exhaustive::new(&pipeline, &platform).pareto_front();
    let multi_needed = front.iter().any(|pt| {
        pt.payload.n_intervals() > 1
            && !front.iter().any(|q| {
                q.payload.n_intervals() == 1
                    && q.latency <= pt.latency + 1e-9
                    && q.failure_prob <= pt.failure_prob + 1e-9
            })
    });
    assert!(
        multi_needed,
        "Figure 5 must need a two-interval Pareto point"
    );
}

/// E6 — Theorem 4: the layered-graph shortest path equals brute force over
/// all `m^n` general mappings on random fully heterogeneous instances.
#[test]
fn e6_shortest_path_matches_brute_force() {
    let suite = SuiteSpec {
        sizes: vec![(2, 3), (3, 4), (4, 4), (4, 5)],
        seeds: vec![1, 2, 3],
        ..SuiteSpec::small(
            PlatformClass::FullyHeterogeneous,
            FailureClass::Heterogeneous,
        )
    };
    for inst in suite.instances() {
        let (sp_map, sp) = general_mapping_shortest_path(&inst.pipeline, &inst.platform);
        let (_, brute) = min_latency_general_brute(&inst.pipeline, &inst.platform);
        assert_approx_eq!(sp, brute);
        assert_approx_eq!(sp, general_latency(&sp_map, &inst.pipeline, &inst.platform));
    }
}

/// E6 — relaxation ordering on every instance:
/// `general ≤ interval ≤ one-to-one` latencies.
#[test]
fn e6_relaxation_chain_is_ordered() {
    let suite = SuiteSpec {
        sizes: vec![(3, 4), (3, 5), (4, 5)],
        seeds: vec![40, 41],
        ..SuiteSpec::small(
            PlatformClass::FullyHeterogeneous,
            FailureClass::Heterogeneous,
        )
    };
    for inst in suite.instances() {
        let (_, general) = general_mapping_shortest_path(&inst.pipeline, &inst.platform);
        let (_, interval) = min_latency_interval(&inst.pipeline, &inst.platform);
        let one_to_one = rpwf_algo::exact::min_latency_one_to_one(&inst.pipeline, &inst.platform)
            .map(|(_, l)| l);
        assert!(
            general <= interval + 1e-9,
            "{}: {general} > {interval}",
            inst.label
        );
        if let Some(oto) = one_to_one {
            assert!(interval <= oto + 1e-9, "{}: {interval} > {oto}", inst.label);
        }
    }
}
