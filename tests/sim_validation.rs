//! E11 — the discrete-event simulator certifies the analytic model on
//! random instances: worst-case equality, upper-bound property, Monte Carlo
//! reliability convergence, and one-port trace validity.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rpwf::prelude::*;
use rpwf_core::assert_approx_eq;
use rpwf_gen::{PipelineGen, PlatformGen};
use rpwf_sim::{simulate, simulate_one, FailureModel, FailureScenario, MonteCarlo, SimConfig};

/// Deterministic random mapping (mirrors the strategy used by the solver
/// heuristics) for fuzzing across instance shapes.
fn random_mapping(n: usize, m: usize, rng: &mut StdRng) -> IntervalMapping {
    rpwf_algo::heuristics::neighborhood::random_mapping(n, m, rng)
}

/// Worst-case simulation equals equation (2) on random mappings over all
/// platform classes.
#[test]
fn e11_adversarial_sim_equals_eq2() {
    let mut rng = StdRng::seed_from_u64(2001);
    for class in [
        PlatformClass::FullyHomogeneous,
        PlatformClass::CommHomogeneous,
        PlatformClass::FullyHeterogeneous,
    ] {
        for _ in 0..8 {
            let pipe = PipelineGen::balanced(4).sample(&mut rng);
            let pf = PlatformGen::new(5, class, FailureClass::Heterogeneous).sample(&mut rng);
            let mapping = random_mapping(4, 5, &mut rng);
            let analytic = latency(&mapping, &pipe, &pf);
            let sim = simulate_one(
                &pipe,
                &pf,
                &mapping,
                &FailureScenario::all_alive(5),
                SimConfig::worst_case(),
            );
            assert_approx_eq!(sim.latency().unwrap(), analytic, 1e-9);
        }
    }
}

/// Any (policy, order, failure pattern) combination that still succeeds
/// stays at or below the analytic worst case.
#[test]
fn e11_eq2_is_an_upper_bound_under_fuzzing() {
    let mut rng = StdRng::seed_from_u64(2002);
    for trial in 0..30 {
        let pipe = PipelineGen::balanced(3).sample(&mut rng);
        let pf = PlatformGen::new(
            5,
            PlatformClass::FullyHeterogeneous,
            FailureClass::Heterogeneous,
        )
        .sample(&mut rng);
        let mapping = random_mapping(3, 5, &mut rng);
        let bound = latency(&mapping, &pipe, &pf);
        let scenario = FailureModel::BernoulliAtStart.sample(&pf, &mut rng);
        for config in [
            SimConfig::default(),
            SimConfig::worst_case(),
            SimConfig::best_case(),
        ] {
            if let Some(lat) = simulate_one(&pipe, &pf, &mapping, &scenario, config).latency() {
                assert!(
                    lat <= bound + 1e-9,
                    "trial {trial}: simulated {lat} exceeds analytic bound {bound}"
                );
            }
        }
    }
}

/// The simulated failure predicate agrees with the analytic one: a run
/// fails exactly when some interval lost every replica.
#[test]
fn e11_failure_predicate_agreement() {
    let mut rng = StdRng::seed_from_u64(2003);
    for _ in 0..40 {
        let pipe = PipelineGen::balanced(3).sample(&mut rng);
        let pf = PlatformGen::new(
            4,
            PlatformClass::CommHomogeneous,
            FailureClass::Heterogeneous,
        )
        .sample(&mut rng);
        let mapping = random_mapping(3, 4, &mut rng);
        let scenario = FailureModel::BernoulliAtStart.sample(&pf, &mut rng);
        let analytic_fail = (0..mapping.n_intervals())
            .any(|j| mapping.alloc(j).iter().all(|&p| !scenario.alive(p)));
        let outcome = simulate_one(&pipe, &pf, &mapping, &scenario, SimConfig::default());
        assert_eq!(!outcome.is_success(), analytic_fail);
    }
}

/// Monte Carlo success rate brackets the analytic reliability (Wilson 95%).
#[test]
fn e11_monte_carlo_converges_to_analytic_reliability() {
    let mut rng = StdRng::seed_from_u64(2004);
    for _ in 0..3 {
        let pipe = PipelineGen::balanced(3).sample(&mut rng);
        let pf = PlatformGen::new(
            5,
            PlatformClass::CommHomogeneous,
            FailureClass::Heterogeneous,
        )
        .sample(&mut rng);
        let mapping = random_mapping(3, 5, &mut rng);
        let analytic = reliability(&mapping, &pf);
        let report = MonteCarlo {
            trials: 20_000,
            seed: 99,
            ..Default::default()
        }
        .run(&pipe, &pf, &mapping);
        assert!(
            report.wilson95.0 <= analytic && analytic <= report.wilson95.1,
            "analytic {analytic} outside {:?}",
            report.wilson95
        );
    }
}

/// Traces from saturated multi-data-set runs always satisfy the one-port
/// invariant.
#[test]
fn e11_traces_respect_one_port_under_load() {
    let mut rng = StdRng::seed_from_u64(2005);
    for _ in 0..10 {
        let pipe = PipelineGen::comm_heavy(3).sample(&mut rng);
        let pf = PlatformGen::new(
            4,
            PlatformClass::FullyHeterogeneous,
            FailureClass::Heterogeneous,
        )
        .sample(&mut rng);
        let mapping = random_mapping(3, 4, &mut rng);
        let scenario = FailureModel::BernoulliAtStart.sample(&pf, &mut rng);
        let report = simulate(
            &pipe,
            &pf,
            &mapping,
            &scenario,
            SimConfig::worst_case().with_trace(),
            &[0.0, 0.0, 0.0, 5.0, 5.0, 100.0],
        );
        report
            .trace
            .expect("requested")
            .check_one_port()
            .expect("one-port invariant");
    }
}

/// Streaming throughput matches the analytic period on comm-homogeneous
/// platforms (extension metric cross-validation).
#[test]
fn e11_streaming_matches_period() {
    let mut rng = StdRng::seed_from_u64(2006);
    for _ in 0..6 {
        let pipe = PipelineGen::balanced(3).sample(&mut rng);
        let pf = PlatformGen::new(
            4,
            PlatformClass::CommHomogeneous,
            FailureClass::Heterogeneous,
        )
        .sample(&mut rng);
        let mapping = random_mapping(3, 4, &mut rng);
        let expected = period(&mapping, &pipe, &pf).unwrap();
        let d = 40;
        let report = simulate(
            &pipe,
            &pf,
            &mapping,
            &FailureScenario::all_alive(4),
            SimConfig::worst_case(),
            &vec![0.0; d],
        );
        let times = report.completion_times();
        let tail = &times[d - 5..];
        for w in tail.windows(2) {
            assert_approx_eq!(w[1] - w[0], expected, 1e-6);
        }
    }
}
