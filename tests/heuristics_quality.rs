//! E10 — heuristic quality against the exact fronts on the NP-hard and
//! open problem classes.

use rpwf::prelude::*;
use rpwf_algo::exact::{pareto_front_comm_homog, Exhaustive};
use rpwf_algo::heuristics::{split_dp, Portfolio};
use rpwf_core::assert_approx_eq;
use rpwf_gen::SuiteSpec;

/// Every heuristic answer must be a genuinely feasible mapping whose
/// objectives re-evaluate to the reported values, and can never beat the
/// exact optimum.
#[test]
fn e10_heuristics_are_sound_vs_bitmask_dp() {
    let suite = SuiteSpec {
        sizes: vec![(3, 5), (4, 6)],
        seeds: vec![10, 20],
        ..SuiteSpec::small(PlatformClass::CommHomogeneous, FailureClass::Heterogeneous)
    };
    for inst in suite.instances() {
        let front = pareto_front_comm_homog(&inst.pipeline, &inst.platform).unwrap();
        // Probe at the front's median latency.
        let mid = front.points()[front.len() / 2].latency;
        let objective = Objective::MinFpUnderLatency(mid);
        let exact = front.min_fp_under_latency(mid).expect("mid point exists");
        for (name, sol) in Portfolio::new(11).run_all(&inst.pipeline, &inst.platform, objective) {
            let Some(sol) = sol else { continue };
            // Feasible and consistent.
            assert!(sol.latency <= mid + 1e-6, "{}/{name}", inst.label);
            let re = rpwf_algo::BiSolution::evaluate(
                sol.mapping.clone(),
                &inst.pipeline,
                &inst.platform,
            );
            assert_approx_eq!(re.latency, sol.latency);
            assert_approx_eq!(re.failure_prob, sol.failure_prob);
            // Never better than exact.
            assert!(
                sol.failure_prob >= exact.failure_prob - 1e-9,
                "{}/{name}: heuristic {} beat exact {}",
                inst.label,
                sol.failure_prob,
                exact.failure_prob
            );
        }
    }
}

/// The portfolio reaches the exact optimum on most small instances of the
/// open problem class (quality floor so regressions are caught).
#[test]
fn e10_portfolio_hits_optimum_often_on_open_class() {
    let suite = SuiteSpec {
        sizes: vec![(3, 5)],
        seeds: vec![1, 2, 3, 4, 5, 6],
        ..SuiteSpec::small(PlatformClass::CommHomogeneous, FailureClass::Heterogeneous)
    };
    let mut hits = 0usize;
    let mut total = 0usize;
    for inst in suite.instances() {
        let front = pareto_front_comm_homog(&inst.pipeline, &inst.platform).unwrap();
        let mid = front.points()[front.len() / 2].latency;
        let exact = front.min_fp_under_latency(mid).unwrap().failure_prob;
        let heur = Portfolio::new(13)
            .solve(
                &inst.pipeline,
                &inst.platform,
                Objective::MinFpUnderLatency(mid),
            )
            .expect("feasible since exact is");
        total += 1;
        if (heur.failure_prob - exact).abs() <= 1e-9 {
            hits += 1;
        }
    }
    assert!(
        hits * 2 >= total,
        "portfolio matched optimum only {hits}/{total} times"
    );
}

/// On the NP-hard fully heterogeneous class, the portfolio is validated
/// against the brute-force oracle on tiny instances.
#[test]
fn e10_portfolio_sound_on_fully_heterogeneous() {
    let suite = SuiteSpec {
        sizes: vec![(3, 4)],
        seeds: vec![50, 51, 52],
        ..SuiteSpec::small(
            PlatformClass::FullyHeterogeneous,
            FailureClass::Heterogeneous,
        )
    };
    for inst in suite.instances() {
        let oracle_front = Exhaustive::new(&inst.pipeline, &inst.platform).pareto_front();
        let mid = oracle_front.points()[oracle_front.len() / 2].latency;
        let exact = oracle_front.min_fp_under_latency(mid).unwrap().failure_prob;
        let heur = Portfolio::new(17)
            .solve(
                &inst.pipeline,
                &inst.platform,
                Objective::MinFpUnderLatency(mid),
            )
            .expect("feasible since exact is");
        assert!(heur.latency <= mid + 1e-6);
        assert!(heur.failure_prob >= exact - 1e-9);
        // Quality: within 3× of the optimal FP on these tiny instances.
        assert!(
            heur.failure_prob <= (exact * 3.0).max(exact + 0.05) + 1e-9,
            "{}: heuristic {} vs exact {exact}",
            inst.label,
            heur.failure_prob
        );
    }
}

/// The split-DP front is always inside the exact region and contains the
/// single-interval family's best points.
#[test]
fn e10_split_dp_front_is_sound() {
    let suite = SuiteSpec {
        sizes: vec![(4, 5)],
        seeds: vec![60, 61],
        ..SuiteSpec::small(PlatformClass::CommHomogeneous, FailureClass::Heterogeneous)
    };
    for inst in suite.instances() {
        let heur = split_dp::pareto_front(&inst.pipeline, &inst.platform).unwrap();
        let exact = pareto_front_comm_homog(&inst.pipeline, &inst.platform).unwrap();
        for pt in heur.iter() {
            assert!(
                exact
                    .iter()
                    .any(|e| e.latency <= pt.latency + 1e-9
                        && e.failure_prob <= pt.failure_prob + 1e-9),
                "{}: heuristic point outside exact region",
                inst.label
            );
        }
        // The DP explores every single-interval prefix of its orders, so its
        // front is at least as good as "fastest processor alone".
        let thm2 =
            rpwf_algo::mono::minimize_latency_comm_homog(&inst.pipeline, &inst.platform).unwrap();
        let best_lat = heur.points().first().map(|pt| pt.latency).unwrap();
        assert!(best_lat <= thm2.latency + 1e-9);
    }
}
