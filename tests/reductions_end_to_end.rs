//! E7 + E8 — the NP-hardness gadgets, exercised in both directions with
//! exact solvers on each side of the reduction.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rpwf::prelude::*;
use rpwf_algo::reductions::{build_tsp_gadget, build_two_partition_gadget};
use rpwf_core::assert_approx_eq;
use rpwf_gen::{TspInstance, TwoPartitionInstance};

/// E7 — Theorem 3: Hamiltonian path with cost ≤ K exists **iff** the gadget
/// admits a one-to-one mapping with latency ≤ K + n + 2.
#[test]
fn e7_tsp_reduction_equivalence() {
    let mut rng = StdRng::seed_from_u64(777);
    for trial in 0..10 {
        let n = 4 + trial % 3;
        let inst = TspInstance::random(n, 8, &mut rng);
        let (best_path, best_cost) = inst.brute_force_best_path();

        // Yes-instance at K = optimum.
        let yes = build_tsp_gadget(&inst, best_cost);
        let witness = yes.decide().expect("yes-instance");
        assert!(inst.path_cost(&witness) <= best_cost + 1e-9);
        // The forward construction maps the witness path onto the threshold.
        assert!(yes.path_latency(&best_path) <= yes.latency_threshold + 1e-9);

        // No-instance just below the optimum.
        let no = build_tsp_gadget(&inst, best_cost - 0.25);
        assert!(
            no.decide().is_none(),
            "trial {trial}: no-instance decided yes"
        );
    }
}

/// E7 — the gadget's latency bookkeeping: path cost C ↦ latency C + n + 2.
#[test]
fn e7_tsp_latency_accounting() {
    let mut rng = StdRng::seed_from_u64(778);
    let inst = TspInstance::random(6, 9, &mut rng);
    let gadget = build_tsp_gadget(&inst, 25.0);
    let (path, cost) = inst.brute_force_best_path();
    assert_approx_eq!(gadget.path_latency(&path), cost + 6.0 + 2.0);
    // Round trip: mapping → path → mapping.
    let mapping = gadget.path_to_mapping(&path);
    assert_eq!(gadget.mapping_to_path(&mapping), path);
}

/// E8 — Theorem 7: the 2-PARTITION instance is a yes-instance **iff** the
/// gadget admits a mapping with latency ≤ S/2 + 2 and FP ≤ e^{−S/2}.
#[test]
fn e8_two_partition_reduction_equivalence() {
    let mut rng = StdRng::seed_from_u64(888);
    for _ in 0..25 {
        let inst = TwoPartitionInstance::random(9, 11, &mut rng);
        let gadget = build_two_partition_gadget(&inst);
        assert_eq!(
            inst.solve().is_some(),
            gadget.decide_by_enumeration().is_some(),
            "values {:?}",
            inst.values
        );
    }
}

/// E8 — witnesses transfer across the reduction in both directions.
#[test]
fn e8_witness_transfer() {
    let mut rng = StdRng::seed_from_u64(889);
    let inst = TwoPartitionInstance::with_planted_solution(5, 20, &mut rng);
    let gadget = build_two_partition_gadget(&inst);

    // partition witness → feasible mapping.
    let subset = inst.solve().expect("planted");
    let mapping = gadget.subset_to_mapping(&subset);
    assert!(gadget.mapping_feasible(&mapping));

    // gadget witness → valid partition.
    let found = gadget.decide_by_enumeration().expect("yes-instance");
    assert!(inst.check_witness(&found));
}

/// E8 — the metric evaluation of gadget mappings agrees with the integer
/// bookkeeping of the proof (latency = Σ a_j + 2, FP = e^{−Σ a_j}).
#[test]
fn e8_gadget_metrics_match_proof() {
    let inst = TwoPartitionInstance {
        values: vec![4, 2, 6, 2],
    }; // S = 14
    let gadget = build_two_partition_gadget(&inst);
    let subset = vec![0, 1]; // Σ = 6
    let mapping = gadget.subset_to_mapping(&subset);
    assert_approx_eq!(
        latency(&mapping, &gadget.pipeline, &gadget.platform),
        6.0 + 2.0
    );
    assert_approx_eq!(
        failure_probability(&mapping, &gadget.platform),
        (-6.0f64).exp(),
        1e-6
    );
    // Σ = 6 < 7 = S/2 → FP too large: infeasible.
    assert!(!gadget.mapping_feasible(&mapping));
    // Σ = 8 > 7 → latency too large: infeasible.
    let heavy = gadget.subset_to_mapping(&[1, 2]); // 2 + 6 = 8
    assert!(!gadget.mapping_feasible(&heavy));
    // All values are even but S/2 = 7 is odd: a genuine no-instance.
    assert!(gadget.decide_by_enumeration().is_none());
    assert!(inst.solve().is_none());
}
