//! Integration tests for the `rpwf-server` serving subsystem: an
//! in-process TCP server answering concurrent solve/pareto requests, the
//! content-addressed solution cache, and per-request deadline behavior.

use rpwf::prelude::*;
use rpwf_server::protocol::{Command, Request, Response};
use rpwf_server::{Server, ServiceConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

fn start_server() -> Server {
    Server::bind(
        "127.0.0.1:0",
        ServiceConfig {
            workers: 4,
            cache_capacity: 256,
            cache_shards: 8,
            seed: 0xCAFE,
            solver_threads: 1,
            node_id: None,
        },
    )
    .expect("bind an ephemeral port")
}

fn request_line(id: u64, deadline_ms: Option<u64>, cmd: Command) -> String {
    serde_json::to_string(&Request {
        id: Some(id),
        deadline_ms,
        no_cache: None,
        trace: None,
        trace_ctx: None,
        explain: None,
        hop: None,
        cmd,
    })
    .expect("requests serialize")
}

/// One request per connection; returns the parsed response.
fn roundtrip(addr: std::net::SocketAddr, line: &str) -> Response {
    let mut stream = TcpStream::connect(addr).expect("connect");
    writeln!(stream, "{line}").expect("send");
    stream.flush().expect("flush");
    let mut reader = BufReader::new(stream);
    let mut out = String::new();
    reader.read_line(&mut out).expect("read response line");
    serde_json::from_str(out.trim()).expect("well-formed response JSON")
}

/// A pool of seeded comm-homogeneous instances the exact DP can finish
/// fast, so server answers are comparable with direct library calls.
fn instances() -> Vec<(Pipeline, Platform)> {
    (0..8u64)
        .map(|seed| {
            let inst = gen::make_instance(
                PlatformClass::CommHomogeneous,
                FailureClass::Heterogeneous,
                3,
                4,
                seed,
            );
            (inst.pipeline, inst.platform)
        })
        .collect()
}

/// A latency threshold every instance can satisfy (its min-FP mapping's
/// latency).
fn budget_for(pipeline: &Pipeline, platform: &Platform) -> f64 {
    rpwf::algo::mono::minimize_failure(pipeline, platform).latency
}

#[test]
fn concurrent_solve_and_pareto_match_direct_library_calls() {
    let mut server = start_server();
    let addr = server.local_addr();
    let pool = instances();

    // 32 concurrent clients: even ids solve, odd ids ask for the front.
    let responses: Vec<(u64, Response)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..32u64)
            .map(|id| {
                let (pipeline, platform) = pool[(id % 8) as usize].clone();
                scope.spawn(move || {
                    let line = if id % 2 == 0 {
                        let l = budget_for(&pipeline, &platform);
                        request_line(
                            id,
                            None,
                            Command::Solve {
                                pipeline,
                                platform,
                                objective: Objective::MinFpUnderLatency(l),
                            },
                        )
                    } else {
                        request_line(
                            id,
                            None,
                            Command::Pareto {
                                pipeline,
                                platform,
                                chunk: None,
                            },
                        )
                    };
                    (id, roundtrip(addr, &line))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });

    assert_eq!(responses.len(), 32);
    for (id, resp) in responses {
        assert_eq!(resp.status, "ok", "request {id}: {:?}", resp.error);
        assert_eq!(resp.id, Some(id), "correlation id echoed");
        let (pipeline, platform) = pool[(id % 8) as usize].clone();
        let result = resp.result.expect("ok responses carry a result");
        let text = serde_json::to_string(&result).expect("serializes");

        if id % 2 == 0 {
            // Exact solver must have won the race and match the library.
            assert_eq!(
                resp.meta.solver,
                Some(rpwf_algo::Provenance::Exact),
                "request {id}"
            );
            assert_eq!(resp.meta.exact_complete, Some(true), "request {id}");
            let l = budget_for(&pipeline, &platform);
            let direct = rpwf::algo::exact::solve_comm_homog(
                &pipeline,
                &platform,
                Objective::MinFpUnderLatency(l),
            )
            .expect("comm-homogeneous")
            .expect("threshold chosen feasible");
            let fp = result
                .get("failure_prob")
                .and_then(serde::Value::as_f64)
                .expect("solve result has failure_prob");
            let lat = result
                .get("latency")
                .and_then(serde::Value::as_f64)
                .expect("solve result has latency");
            assert!(
                (fp - direct.failure_prob).abs() < 1e-9,
                "request {id}: server fp {fp} vs direct {} ({text})",
                direct.failure_prob
            );
            assert!(
                (lat - direct.latency).abs() < 1e-9,
                "request {id}: server latency {lat} vs direct {}",
                direct.latency
            );
        } else {
            let direct = rpwf::algo::exact::pareto_front_comm_homog(&pipeline, &platform)
                .expect("comm-homogeneous");
            let points = result
                .get("points")
                .and_then(serde::Value::as_seq)
                .map(<[serde::Value]>::to_vec)
                .expect("pareto result has points");
            assert_eq!(
                points.len(),
                direct.len(),
                "request {id}: front size ({text})"
            );
            for (got, want) in points.iter().zip(direct.iter()) {
                let lat = got
                    .get("latency")
                    .and_then(serde::Value::as_f64)
                    .expect("latency");
                let fp = got
                    .get("failure_prob")
                    .and_then(serde::Value::as_f64)
                    .expect("failure_prob");
                assert!((lat - want.latency).abs() < 1e-9, "request {id}");
                assert!((fp - want.failure_prob).abs() < 1e-9, "request {id}");
            }
        }
    }
    server.shutdown();
}

#[test]
fn repeated_request_hits_cache_with_byte_identical_result() {
    let mut server = start_server();
    let addr = server.local_addr();
    let (pipeline, platform) = instances().remove(0);
    let l = budget_for(&pipeline, &platform);
    let cmd = || Command::Solve {
        pipeline: pipeline.clone(),
        platform: platform.clone(),
        objective: Objective::MinFpUnderLatency(l),
    };

    let first = roundtrip(addr, &request_line(1, None, cmd()));
    assert_eq!(first.status, "ok", "{:?}", first.error);
    assert!(!first.meta.cache_hit, "first request computes");

    // Same content, different id and connection: must be served from the
    // cache with a byte-identical result payload.
    let second = roundtrip(addr, &request_line(2, None, cmd()));
    assert_eq!(second.status, "ok");
    assert!(
        second.meta.cache_hit,
        "identical content must hit the cache"
    );
    assert_eq!(
        serde_json::to_string(&first.result).expect("serializes"),
        serde_json::to_string(&second.result).expect("serializes"),
        "cached result must replay byte-identically"
    );
    assert_eq!(first.meta.solver, second.meta.solver);
    server.shutdown();
}

#[test]
fn expired_deadline_returns_structured_timeout_not_a_hang() {
    let mut server = start_server();
    let addr = server.local_addr();
    // Large heterogeneous instance (no exact backend, heuristics take
    // real time) with a 0 ms deadline: must come back promptly as a
    // structured timeout error.
    let inst = gen::make_instance(
        PlatformClass::FullyHeterogeneous,
        FailureClass::Heterogeneous,
        6,
        14,
        7,
    );
    let line = request_line(
        77,
        Some(0),
        Command::Solve {
            pipeline: inst.pipeline,
            platform: inst.platform,
            objective: Objective::MinFpUnderLatency(1e-12),
        },
    );
    let start = std::time::Instant::now();
    let resp = roundtrip(addr, &line);
    assert!(
        start.elapsed() < std::time::Duration::from_secs(10),
        "timeout must be prompt, took {:?}",
        start.elapsed()
    );
    assert_eq!(resp.status, "error");
    assert_eq!(resp.id, Some(77));
    let err = resp.error.expect("structured error body");
    assert_eq!(err.kind, "timeout");
    assert!(!err.message.is_empty());
    server.shutdown();
}

#[test]
fn dropped_connection_cancels_its_inflight_solve() {
    // A single worker: if the abandoned heavy request were NOT cancelled
    // it would occupy the worker for a very long time (exhaustive Pareto
    // sweep on n=10, m=6) and the follow-up ping could not be answered.
    let mut server = Server::bind(
        "127.0.0.1:0",
        ServiceConfig {
            workers: 1,
            cache_capacity: 16,
            cache_shards: 2,
            seed: 0xCAFE,
            solver_threads: 1,
            node_id: None,
        },
    )
    .expect("bind an ephemeral port");
    let addr = server.local_addr();

    // Heavy request: fully heterogeneous (m = 6 → exhaustive backend),
    // generous deadline so only cancellation can cut it short.
    let inst = gen::make_instance(
        PlatformClass::FullyHeterogeneous,
        FailureClass::Heterogeneous,
        10,
        6,
        3,
    );
    let heavy = request_line(
        1,
        Some(120_000),
        Command::Pareto {
            pipeline: inst.pipeline,
            platform: inst.platform,
            chunk: None,
        },
    );
    {
        let mut doomed = TcpStream::connect(addr).expect("connect");
        writeln!(doomed, "{heavy}").expect("send");
        doomed.flush().expect("flush");
        // Give the worker a moment to pick the job up, then vanish.
        std::thread::sleep(std::time::Duration::from_millis(100));
    } // drop = close: the server must cancel the in-flight sweep.

    let start = std::time::Instant::now();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(60)))
        .expect("set timeout");
    writeln!(stream, "{}", request_line(2, None, Command::Ping)).expect("send");
    stream.flush().expect("flush");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .expect("ping answered — the dropped connection must have freed the worker");
    let resp: Response = serde_json::from_str(line.trim()).expect("parses");
    assert_eq!(resp.status, "ok");
    assert_eq!(resp.id, Some(2));
    assert!(
        start.elapsed() < std::time::Duration::from_secs(30),
        "worker must be freed promptly after the client dropped, took {:?}",
        start.elapsed()
    );
    server.shutdown();
}

#[test]
fn mixed_pipelined_requests_on_one_connection() {
    let mut server = start_server();
    let addr = server.local_addr();
    let (pipeline, platform) = instances().remove(2);
    let l = budget_for(&pipeline, &platform);

    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut expected = std::collections::HashSet::new();
    for id in 0..12u64 {
        let cmd = match id % 3 {
            0 => Command::Ping,
            1 => Command::Solve {
                pipeline: pipeline.clone(),
                platform: platform.clone(),
                objective: Objective::MinFpUnderLatency(l),
            },
            _ => Command::Stats,
        };
        writeln!(stream, "{}", request_line(id, None, cmd)).expect("send");
        expected.insert(id);
    }
    stream.flush().expect("flush");

    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    for _ in 0..12 {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        let resp: Response = serde_json::from_str(line.trim()).expect("parses");
        assert_eq!(resp.status, "ok", "{:?}", resp.error);
        assert!(
            expected.remove(&resp.id.expect("id")),
            "no duplicate responses"
        );
    }
    assert!(expected.is_empty(), "every request answered");
    server.shutdown();
}
