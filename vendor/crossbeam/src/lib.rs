//! Offline stand-in for the `crossbeam` umbrella crate, covering the two
//! pieces this workspace uses:
//!
//! * [`thread::scope`] — crossbeam-style scoped threads (closure receives
//!   the scope handle, result wrapped in `Result`), implemented on
//!   `std::thread::scope`,
//! * [`channel`] — a multi-producer multi-consumer FIFO channel
//!   (Mutex + Condvar), with clonable receivers, disconnect semantics,
//!   and timeout receives, feeding the solver server's worker pool.

/// Scoped threads.
pub mod thread {
    use std::any::Any;

    /// The scope handle passed to spawned closures.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope handle
        /// (crossbeam convention) so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let handle = *self;
            self.inner.spawn(move || f(&handle))
        }
    }

    /// Runs `f` with a scope in which borrowing, scoped threads can be
    /// spawned; joins them all before returning.
    ///
    /// # Errors
    /// Crossbeam reports child panics as `Err`; the std implementation
    /// resumes the panic instead, so the `Err` arm is never produced. The
    /// `Result` wrapper is kept for call-site compatibility.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

/// MPMC FIFO channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
        capacity: Option<usize>,
    }

    /// Sending half; clonable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; clonable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error: all receivers dropped.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error: channel empty and all senders dropped.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Outcome of a non-blocking receive.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Queue momentarily empty.
        Empty,
        /// Queue empty and no senders remain.
        Disconnected,
    }

    /// Outcome of a timed receive.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No item arrived in time.
        Timeout,
        /// Queue empty and no senders remain.
        Disconnected,
    }

    /// An unbounded channel.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// A bounded channel (senders block at `cap` items).
    #[must_use]
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap))
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
                capacity,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().expect("channel lock").senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().expect("channel lock");
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().expect("channel lock").receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().expect("channel lock");
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueues an item, blocking while a bounded channel is full.
        ///
        /// # Errors
        /// [`SendError`] when every receiver has been dropped.
        pub fn send(&self, item: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().expect("channel lock");
            loop {
                if state.receivers == 0 {
                    return Err(SendError(item));
                }
                match state.capacity {
                    Some(cap) if state.items.len() >= cap => {
                        state = self.shared.ready.wait(state).expect("channel lock");
                    }
                    _ => break,
                }
            }
            state.items.push_back(item);
            drop(state);
            self.shared.ready.notify_all();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues an item, blocking while the channel is empty.
        ///
        /// # Errors
        /// [`RecvError`] when the channel is empty and every sender has
        /// been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().expect("channel lock");
            loop {
                if let Some(item) = state.items.pop_front() {
                    drop(state);
                    self.shared.ready.notify_all();
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).expect("channel lock");
            }
        }

        /// Non-blocking dequeue.
        ///
        /// # Errors
        /// [`TryRecvError::Empty`] or [`TryRecvError::Disconnected`].
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.queue.lock().expect("channel lock");
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.shared.ready.notify_all();
                return Ok(item);
            }
            if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Dequeue with a deadline relative to now.
        ///
        /// # Errors
        /// [`RecvTimeoutError::Timeout`] or
        /// [`RecvTimeoutError::Disconnected`].
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.shared.queue.lock().expect("channel lock");
            loop {
                if let Some(item) = state.items.pop_front() {
                    drop(state);
                    self.shared.ready.notify_all();
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .shared
                    .ready
                    .wait_timeout(state, deadline - now)
                    .expect("channel lock");
                state = guard;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn scope_joins_and_borrows() {
        let data = [1u64, 2, 3, 4];
        let mut partials = vec![0u64; 2];
        thread::scope(|s| {
            for (i, slot) in partials.iter_mut().enumerate() {
                let data = &data;
                s.spawn(move |_| {
                    *slot = data[i * 2] + data[i * 2 + 1];
                });
            }
        })
        .expect("no panics");
        assert_eq!(partials, vec![3, 7]);
    }

    #[test]
    fn channel_fifo_and_disconnect() {
        let (tx, rx) = channel::unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        drop(tx);
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }

    #[test]
    fn channel_mpmc_across_threads() {
        let (tx, rx) = channel::unbounded::<usize>();
        let consumed: Vec<usize> = thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    s.spawn(move |_| {
                        let mut got = Vec::new();
                        while let Ok(v) = rx.recv() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            drop(rx);
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("no panic"))
                .collect()
        })
        .expect("no panics");
        let mut sorted = consumed;
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn recv_timeout_times_out() {
        let (tx, rx) = channel::unbounded::<u8>();
        let err = rx.recv_timeout(Duration::from_millis(10)).unwrap_err();
        assert_eq!(err, channel::RecvTimeoutError::Timeout);
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(9));
    }
}
