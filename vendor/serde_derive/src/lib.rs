//! Offline stand-in for `serde_derive`.
//!
//! Parses the deriving type's token stream by hand (no `syn`/`quote`
//! available offline) and emits `to_value`/`from_value` implementations of
//! the vendored `serde` traits. Supports the shapes this workspace uses:
//!
//! * structs with named fields (including generics, `#[serde(skip)]` and
//!   `#[serde(with = "module")]` field attributes),
//! * tuple structs (newtypes serialize transparently; wider tuples as
//!   sequences),
//! * enums with unit, newtype, tuple, and struct variants (externally
//!   tagged, serde's default representation).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Model
// ---------------------------------------------------------------------------

struct Field {
    name: String,
    skip: bool,
    with: Option<String>,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum Body {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    /// Generic parameter names in declaration order: `'a` or `T`.
    generics: Vec<String>,
    body: Body,
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            toks: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn is_punct(&self, c: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == c)
    }

    fn is_ident(&self, s: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == s)
    }

    /// Skips outer attributes, returning any `#[serde(...)]` payload groups.
    fn take_attrs(&mut self) -> Vec<TokenStream> {
        let mut serde_payloads = Vec::new();
        while self.is_punct('#') {
            self.next(); // '#'
            if let Some(TokenTree::Group(g)) = self.next() {
                let mut inner = g.stream().into_iter();
                if let Some(TokenTree::Ident(name)) = inner.next() {
                    if name.to_string() == "serde" {
                        if let Some(TokenTree::Group(payload)) = inner.next() {
                            serde_payloads.push(payload.stream());
                        }
                    }
                }
            }
        }
        serde_payloads
    }

    fn skip_visibility(&mut self) {
        if self.is_ident("pub") {
            self.next();
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    self.next();
                }
            }
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    c.take_attrs();
    c.skip_visibility();

    let kind = match c.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    let name = match c.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected type name, found {other:?}"),
    };
    let generics = parse_generics(&mut c);

    let body = match kind.as_str() {
        "struct" => {
            if c.is_punct(';') {
                Body::UnitStruct
            } else {
                match c.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        Body::NamedStruct(parse_named_fields(g.stream()))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        Body::TupleStruct(count_tuple_fields(g.stream()))
                    }
                    other => panic!("unsupported struct body: {other:?}"),
                }
            }
        }
        "enum" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("expected enum body, found {other:?}"),
        },
        other => panic!("can only derive for structs and enums, found `{other}`"),
    };

    Item {
        name,
        generics,
        body,
    }
}

/// Parses an optional `<...>` generics list into parameter names (bounds
/// and defaults stripped). `where` clauses are not supported.
fn parse_generics(c: &mut Cursor) -> Vec<String> {
    if !c.is_punct('<') {
        return Vec::new();
    }
    c.next(); // '<'
    let mut depth = 1usize;
    let mut segments: Vec<Vec<TokenTree>> = vec![Vec::new()];
    while depth > 0 {
        let t = c.next().expect("unterminated generics list");
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                ',' if depth == 1 => {
                    segments.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        segments.last_mut().expect("segment list non-empty").push(t);
    }
    segments
        .into_iter()
        .filter(|seg| !seg.is_empty())
        .map(|seg| {
            // A parameter is `'life`, `T`, `T: bounds`, or `const N: usize`;
            // its name is the leading lifetime or the first ident.
            match &seg[0] {
                TokenTree::Punct(p) if p.as_char() == '\'' => {
                    let id = match &seg[1] {
                        TokenTree::Ident(i) => i.to_string(),
                        other => panic!("malformed lifetime: {other:?}"),
                    };
                    format!("'{id}")
                }
                TokenTree::Ident(i) if i.to_string() == "const" => {
                    panic!("const generics are not supported by the vendored serde derive")
                }
                TokenTree::Ident(i) => i.to_string(),
                other => panic!("unsupported generic parameter: {other:?}"),
            }
        })
        .collect()
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut c = Cursor::new(stream);
    let mut fields = Vec::new();
    while !c.at_end() {
        let serde_attrs = c.take_attrs();
        if c.at_end() {
            break;
        }
        c.skip_visibility();
        let name = match c.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("expected field name, found {other:?}"),
        };
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        skip_type(&mut c);
        let (skip, with) = interpret_field_attrs(&serde_attrs);
        fields.push(Field { name, skip, with });
    }
    fields
}

/// Consumes a type up to the next top-level `,` (or end), tracking angle
/// brackets (delimiter groups are atomic in the token stream).
fn skip_type(c: &mut Cursor) {
    let mut angle_depth = 0usize;
    while let Some(t) = c.peek() {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => {
                    c.next(); // consume separator
                    return;
                }
                _ => {}
            }
        }
        c.next();
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut c = Cursor::new(stream);
    let mut count = 0usize;
    while !c.at_end() {
        c.take_attrs();
        if c.at_end() {
            break;
        }
        c.skip_visibility();
        skip_type(&mut c);
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut c = Cursor::new(stream);
    let mut variants = Vec::new();
    while !c.at_end() {
        c.take_attrs();
        if c.at_end() {
            break;
        }
        let name = match c.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("expected variant name, found {other:?}"),
        };
        let shape = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                c.next();
                VariantShape::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                c.next();
                VariantShape::Struct(fields)
            }
            _ => VariantShape::Unit,
        };
        // Skip an optional discriminant, then the separating comma.
        while !c.at_end() && !c.is_punct(',') {
            c.next();
        }
        if c.is_punct(',') {
            c.next();
        }
        variants.push(Variant { name, shape });
    }
    variants
}

fn interpret_field_attrs(payloads: &[TokenStream]) -> (bool, Option<String>) {
    let mut skip = false;
    let mut with = None;
    for payload in payloads {
        let toks: Vec<TokenTree> = payload.clone().into_iter().collect();
        let mut i = 0;
        while i < toks.len() {
            if let TokenTree::Ident(id) = &toks[i] {
                match id.to_string().as_str() {
                    "skip" | "skip_serializing" | "skip_deserializing" => skip = true,
                    "with" => {
                        // with = "module::path"
                        if let Some(TokenTree::Literal(lit)) = toks.get(i + 2) {
                            let raw = lit.to_string();
                            with = Some(raw.trim_matches('"').to_string());
                            i += 2;
                        }
                    }
                    "default" => {}
                    other => panic!("unsupported #[serde({other})] attribute"),
                }
            }
            i += 1;
        }
    }
    (skip, with)
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

/// `impl<T: BOUND> Trait for Name<T>` header pieces for the item.
fn impl_header(item: &Item, extra_lifetime: Option<&str>, bound: &str) -> (String, String) {
    let mut params: Vec<String> = Vec::new();
    if let Some(lt) = extra_lifetime {
        params.push(lt.to_string());
    }
    for g in &item.generics {
        if g.starts_with('\'') {
            params.push(g.clone());
        } else {
            params.push(format!("{g}: {bound}"));
        }
    }
    let impl_generics = if params.is_empty() {
        String::new()
    } else {
        format!("<{}>", params.join(", "))
    };
    let type_generics = if item.generics.is_empty() {
        String::new()
    } else {
        format!("<{}>", item.generics.join(", "))
    };
    (impl_generics, type_generics)
}

fn gen_serialize(item: &Item) -> String {
    let (impl_generics, type_generics) = impl_header(item, None, "::serde::Serialize");
    let name = &item.name;
    let body = match &item.body {
        Body::NamedStruct(fields) => {
            let mut push = String::new();
            for f in fields {
                if f.skip {
                    continue;
                }
                let fname = &f.name;
                let expr = match &f.with {
                    Some(path) => format!(
                        "{path}::serialize(&self.{fname}, ::serde::value::ValueSerializer)\
                         .expect(\"with-module serialization to a value cannot fail\")"
                    ),
                    None => format!("::serde::Serialize::to_value(&self.{fname})"),
                };
                push.push_str(&format!(
                    "__fields.push((::std::string::String::from(\"{fname}\"), {expr}));\n"
                ));
            }
            format!(
                "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n{push}::serde::Value::Map(__fields)"
            )
        }
        Body::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Body::UnitStruct => "::serde::Value::Null".to_string(),
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vname} => ::serde::Value::Str(\
                             ::std::string::String::from(\"{vname}\")),\n"
                        ));
                    }
                    VariantShape::Tuple(1) => {
                        arms.push_str(&format!(
                            "{name}::{vname}(__f0) => ::serde::Value::Map(vec![(\
                             ::std::string::String::from(\"{vname}\"), \
                             ::serde::Serialize::to_value(__f0))]),\n"
                        ));
                    }
                    VariantShape::Tuple(k) => {
                        let binds: Vec<String> = (0..*k).map(|i| format!("__f{i}")).collect();
                        let vals: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::Value::Map(vec![(\
                             ::std::string::String::from(\"{vname}\"), \
                             ::serde::Value::Seq(vec![{}]))]),\n",
                            binds.join(", "),
                            vals.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let pushes: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{0}\"), \
                                     ::serde::Serialize::to_value({0}))",
                                    f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => ::serde::Value::Map(vec![(\
                             ::std::string::String::from(\"{vname}\"), \
                             ::serde::Value::Map(vec![{}]))]),\n",
                            binds.join(", "),
                            pushes.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl{impl_generics} ::serde::Serialize for {name}{type_generics} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn named_fields_from_value(type_path: &str, fields: &[Field], source: &str) -> String {
    let mut inits = Vec::new();
    for f in fields {
        let fname = &f.name;
        let expr = if f.skip {
            "::std::default::Default::default()".to_string()
        } else if let Some(path) = &f.with {
            format!(
                "{path}::deserialize(::serde::value::ValueDeserializer::new(\
                 {source}.get_or_null(\"{fname}\").clone()))?"
            )
        } else {
            format!("::serde::Deserialize::from_value({source}.get_or_null(\"{fname}\"))?")
        };
        inits.push(format!("{fname}: {expr}"));
    }
    format!("{type_path} {{ {} }}", inits.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    let (impl_generics, type_generics) =
        impl_header(item, Some("'de"), "::serde::Deserialize<'de>");
    let name = &item.name;
    let body = match &item.body {
        Body::NamedStruct(fields) => {
            let ctor = named_fields_from_value(name, fields, "__value");
            format!(
                "if __value.as_map().is_none() {{\n\
                 return ::std::result::Result::Err(::serde::Error::msg(\
                 \"expected map for struct {name}\"));\n}}\n\
                 ::std::result::Result::Ok({ctor})"
            )
        }
        Body::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__value)?))")
        }
        Body::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "let __items = __value.as_seq().ok_or_else(|| \
                 ::serde::Error::msg(\"expected array for tuple struct {name}\"))?;\n\
                 if __items.len() != {n} {{\n\
                 return ::std::result::Result::Err(::serde::Error::msg(\
                 \"wrong arity for tuple struct {name}\"));\n}}\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Body::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut keyed_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        unit_arms.push_str(&format!(
                            "\"{vname}\" => return ::std::result::Result::Ok({name}::{vname}),\n"
                        ));
                    }
                    VariantShape::Tuple(1) => {
                        keyed_arms.push_str(&format!(
                            "\"{vname}\" => return ::std::result::Result::Ok(\
                             {name}::{vname}(::serde::Deserialize::from_value(__inner)?)),\n"
                        ));
                    }
                    VariantShape::Tuple(k) => {
                        let items: Vec<String> = (0..*k)
                            .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                            .collect();
                        keyed_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                             let __items = __inner.as_seq().ok_or_else(|| \
                             ::serde::Error::msg(\"expected array for variant {vname}\"))?;\n\
                             if __items.len() != {k} {{\n\
                             return ::std::result::Result::Err(::serde::Error::msg(\
                             \"wrong arity for variant {vname}\"));\n}}\n\
                             return ::std::result::Result::Ok({name}::{vname}({}));\n}}\n",
                            items.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let ctor =
                            named_fields_from_value(&format!("{name}::{vname}"), fields, "__inner");
                        keyed_arms.push_str(&format!(
                            "\"{vname}\" => return ::std::result::Result::Ok({ctor}),\n"
                        ));
                    }
                }
            }
            format!(
                "if let ::std::option::Option::Some(__s) = __value.as_str() {{\n\
                 match __s {{\n{unit_arms}_ => {{}}\n}}\n}}\n\
                 if let ::std::option::Option::Some(__entries) = __value.as_map() {{\n\
                 if __entries.len() == 1 {{\n\
                 let (__key, __inner) = &__entries[0];\n\
                 match __key.as_str() {{\n{keyed_arms}_ => {{}}\n}}\n}}\n}}\n\
                 ::std::result::Result::Err(::serde::Error::msg(\
                 \"unknown variant for enum {name}\"))"
            )
        }
    };
    format!(
        "impl{impl_generics} ::serde::Deserialize<'de> for {name}{type_generics} {{\n\
         fn from_value(__value: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n"
    )
}
