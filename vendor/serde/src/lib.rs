//! Offline stand-in for the `serde` crate.
//!
//! The build environment for this workspace has no network access, so the
//! real serde cannot be fetched. This crate re-implements the (small) slice
//! of serde's API that the workspace uses, shaped around an explicit
//! [`Value`] tree instead of serde's visitor machinery:
//!
//! * [`Serialize`] / [`Deserialize`] traits with `#[derive(...)]` support
//!   (see the sibling `serde_derive` stub),
//! * [`Serializer`] / [`Deserializer`] traits compatible with the
//!   `#[serde(with = "module")]` convention,
//! * `#[serde(skip)]` and `#[serde(with = "...")]` field attributes.
//!
//! The derive emits `to_value`/`from_value` implementations; `serde_json`
//! (also vendored) renders a [`Value`] to JSON text and back.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A self-describing serialized value — the data model every type maps
/// into. Maps preserve insertion (declaration) order so output is stable.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer too large for `i64`.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered string-keyed map.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Map lookup; `None` when `self` is not a map or lacks the key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Map lookup defaulting to [`Value::Null`] for missing keys (used by
    /// the derive so `Option` fields tolerate omission).
    #[must_use]
    pub fn get_or_null(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&Value::Null)
    }

    /// The map entries, when `self` is a map.
    #[must_use]
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The elements, when `self` is a sequence.
    #[must_use]
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The string, when `self` is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view as `f64` (integers widen losslessly for the magnitudes
    /// this workspace uses).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// Numeric view as `i64`.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) => i64::try_from(u).ok(),
            Value::Float(f) if f.fract() == 0.0 && f.abs() < 9.0e18 => Some(f as i64),
            _ => None,
        }
    }

    /// Numeric view as `u64`.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(i) => u64::try_from(i).ok(),
            Value::UInt(u) => Some(u),
            Value::Float(f) if f.fract() == 0.0 && (0.0..1.9e19).contains(&f) => Some(f as u64),
            _ => None,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error carrying a message.
    #[must_use]
    pub fn msg(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }

    /// serde-compatible constructor name.
    #[must_use]
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// A type that can render itself into the [`Value`] data model.
pub trait Serialize {
    /// The value-tree form of `self`.
    fn to_value(&self) -> Value;

    /// serde-compatible entry point: feed [`Self::to_value`] to a
    /// [`Serializer`].
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(self.to_value())
    }
}

/// A sink consuming one [`Value`].
pub trait Serializer: Sized {
    /// Success type.
    type Ok;
    /// Error type.
    type Error;
    /// Consumes the value.
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;
}

/// A type reconstructible from the [`Value`] data model.
pub trait Deserialize<'de>: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    /// When the value does not have the expected shape.
    fn from_value(value: &Value) -> Result<Self, Error>;

    /// serde-compatible entry point: drain a [`Deserializer`] and parse.
    ///
    /// # Errors
    /// Propagates the deserializer's and [`Self::from_value`]'s errors.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let value = deserializer.take_value()?;
        Self::from_value(&value).map_err(Into::into)
    }
}

/// A source producing one [`Value`].
pub trait Deserializer<'de>: Sized {
    /// Error type; must absorb shape errors.
    type Error: From<Error>;
    /// Produces the value.
    ///
    /// # Errors
    /// When the underlying input is malformed.
    fn take_value(self) -> Result<Value, Self::Error>;
}

/// Owned-output alias mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// Adapters used by the derive to route `#[serde(with = "module")]` fields
/// through the module's `serialize`/`deserialize` functions.
pub mod value {
    use super::{Deserializer, Error, Serializer, Value};

    /// A [`Serializer`] that simply hands back the built [`Value`].
    pub struct ValueSerializer;

    impl Serializer for ValueSerializer {
        type Ok = Value;
        type Error = Error;
        fn serialize_value(self, value: Value) -> Result<Value, Error> {
            Ok(value)
        }
    }

    /// A [`Deserializer`] over an already-parsed [`Value`].
    pub struct ValueDeserializer {
        value: Value,
    }

    impl ValueDeserializer {
        /// Wraps a value.
        #[must_use]
        pub fn new(value: Value) -> Self {
            ValueDeserializer { value }
        }
    }

    impl<'de> Deserializer<'de> for ValueDeserializer {
        type Error = Error;
        fn take_value(self) -> Result<Value, Error> {
            Ok(self.value)
        }
    }
}

/// Compatibility module paths (`serde::ser::Serialize` etc.).
pub mod ser {
    pub use super::{Error, Serialize, Serializer};
}

/// Compatibility module paths (`serde::de::Deserialize` etc.).
pub mod de {
    pub use super::{Deserialize, DeserializeOwned, Deserializer, Error};
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! ser_de_int {
    ($($t:ty => $variant:ident as $conv:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::$variant(*self as $conv)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let wide = value
                    .as_i64()
                    .map(i128::from)
                    .or_else(|| value.as_u64().map(i128::from))
                    .ok_or_else(|| {
                        Error::msg(concat!("expected integer for ", stringify!($t)))
                    })?;
                <$t>::try_from(wide)
                    .map_err(|_| Error::msg(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}

ser_de_int! {
    i8 => Int as i64, i16 => Int as i64, i32 => Int as i64, i64 => Int as i64,
    isize => Int as i64,
    u8 => UInt as u64, u16 => UInt as u64, u32 => UInt as u64, u64 => UInt as u64,
    usize => UInt as u64,
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::msg("expected boolean")),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_f64().ok_or_else(|| Error::msg("expected number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::msg("expected number"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(ToOwned::to_owned)
            .ok_or_else(|| Error::msg("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<'de> Deserialize<'de> for &'static str {
    /// Deserializing into `&'static str` (used by error types carrying
    /// static parameter names) leaks the parsed string; acceptable for the
    /// diagnostic paths that need it.
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(|s| &*Box::leak(s.to_owned().into_boxed_str()))
            .ok_or_else(|| Error::msg("expected string"))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<'de> Deserialize<'de> for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = value
            .as_str()
            .ok_or_else(|| Error::msg("expected string"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::msg("expected single-character string")),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl<'de> Deserialize<'de> for () {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(()),
            _ => Err(Error::msg("expected null")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(inner) => inner.to_value(),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = value.as_seq().ok_or_else(|| Error::msg("expected array"))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

macro_rules! ser_de_tuple {
    ($(($($name:ident : $idx:tt),+)),* $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value.as_seq().ok_or_else(|| Error::msg("expected array"))?;
                const LEN: usize = [$($idx),+].len();
                if items.len() != LEN {
                    return Err(Error::msg("tuple length mismatch"));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

ser_de_tuple! {
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
}

impl<K: AsRef<str>, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.as_ref().to_owned(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<'de, V: Deserialize<'de>> Deserialize<'de> for std::collections::BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let entries = value
            .as_map()
            .ok_or_else(|| Error::msg("expected object"))?;
        entries
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<'de, V: Deserialize<'de>, S> Deserialize<'de> for std::collections::HashMap<String, V, S>
where
    S: std::hash::BuildHasher + Default,
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        let entries = value
            .as_map()
            .ok_or_else(|| Error::msg("expected object"))?;
        entries
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}
