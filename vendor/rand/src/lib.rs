//! Offline stand-in for the `rand` crate (0.8 API surface used by this
//! workspace): [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], the
//! [`Rng`] extension methods `gen_range`/`gen_bool`/`gen`, and
//! [`seq::SliceRandom`]'s `choose`/`shuffle`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a different
//! stream than the real `StdRng` (ChaCha12), which is fine for this
//! workspace: all seeded tests compare solvers against each other on the
//! same sampled instance rather than asserting specific sample values.

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A type that can be sampled uniformly from a range (marker mirroring
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Sized {}

/// A range form accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `f64` in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform integer in `[0, bound)` (Lemire-style widening multiply; the
/// tiny modulo bias of the plain multiply is irrelevant here).
fn below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as u64
}

impl SampleUniform for f64 {}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        let v = self.start + (self.end - self.start) * unit_f64(rng);
        // Guard the half-open contract against rounding.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty f64 range");
        lo + (hi - lo) * unit_f64(rng)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {}

        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty integer range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty integer range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u128::from(u64::MAX) {
                    return rng.next_u64() as $t; // full u64 domain
                }
                (lo as i128 + below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Bernoulli sample.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        unit_f64(self) < p
    }

    /// A uniformly random value of a primitive type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types with a "standard" uniform distribution (mirrors
/// `rand::distributions::Standard` for the primitives used here).
pub trait Standard: Sized {
    /// Samples a value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's deterministic RNG: xoshiro256++ seeded via
    /// SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension methods on slices (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly random element; `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = rng.gen_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&f));
            let g = rng.gen_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&g));
            let i = rng.gen_range(3usize..10);
            assert!((3..10).contains(&i));
            let j = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&j));
        }
    }

    #[test]
    fn bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "{hits}");
        assert!((0..1000).all(|_| !rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
