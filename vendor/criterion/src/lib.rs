//! Offline stand-in for the `criterion` crate: the same surface the
//! workspace's benches use (`criterion_group!`/`criterion_main!`,
//! `benchmark_group`, `bench_with_input`, `Bencher::iter`, `Throughput`),
//! implemented as a simple median-of-samples wall-clock harness that
//! prints one line per benchmark.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// The benchmark context handed to group functions.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            throughput: None,
            _parent: self,
        }
    }

    /// Runs a single standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.default_sample_size, None, &mut f);
        self
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement time; accepted for API compatibility (the
    /// stub's sample count already bounds runtime).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Declares the work per iteration for derived rates.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks a closure against one input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.sample_size, self.throughput, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Benchmarks a closure with no input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id: BenchmarkId = id.into();
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one(
    label: &str,
    samples: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut per_sample = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        if bencher.iters > 0 {
            per_sample.push(bencher.elapsed.as_nanos() as f64 / bencher.iters as f64);
        }
    }
    per_sample.sort_by(f64::total_cmp);
    let median = per_sample.get(per_sample.len() / 2).copied().unwrap_or(0.0);
    let rate = throughput.map_or(String::new(), |t| match t {
        Throughput::Elements(n) if median > 0.0 => {
            format!("  ({:.0} elem/s)", n as f64 / median * 1e9)
        }
        Throughput::Bytes(n) if median > 0.0 => {
            format!("  ({:.0} B/s)", n as f64 / median * 1e9)
        }
        _ => String::new(),
    });
    println!("bench {label:<50} {median:>14.1} ns/iter{rate}");
}

/// A single benchmark's measurement driver.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated runs of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warmup, then a small fixed batch per sample.
        let _ = f();
        let batch = 3u64;
        let start = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(f());
        }
        self.elapsed += start.elapsed();
        self.iters += batch;
    }
}

/// A benchmark identifier (`group/function/parameter`).
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter.
    #[must_use]
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id from just a parameter.
    #[must_use]
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

/// Work performed per iteration, for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Logical items per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
