//! Offline stand-in for the `proptest` crate: deterministic seeded
//! random-case testing with the subset of the API this workspace uses —
//! the [`proptest!`] macro, [`Strategy`] with `prop_map`/`prop_flat_map`,
//! range and tuple strategies, [`collection::vec`], and the
//! `prop_assert*` macros.
//!
//! Differences from real proptest: no shrinking (failing cases report the
//! case index and values via the panic message instead), and the case
//! count defaults to 64.

/// Test-case configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic RNG machinery for generated tests.
pub mod test_runner {
    /// SplitMix64 generator seeded from the test's path, so every test has
    /// a fixed, independent stream.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from an arbitrary string (FNV-1a).
        #[must_use]
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }
    }
}

use test_runner::TestRng;

/// A recipe for sampling random values.
pub trait Strategy {
    /// The sampled type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps sampled values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each sampled value.
    fn prop_flat_map<U: Strategy, F: Fn(Self::Value) -> U>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Strategy, F: Fn(S::Value) -> U> Strategy for FlatMap<S, F> {
    type Value = U::Value;
    fn sample(&self, rng: &mut TestRng) -> U::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A strategy always yielding clones of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 strategy range");
        let v = self.start + (self.end - self.start) * rng.unit_f64();
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 strategy range");
        lo + (hi - lo) * rng.unit_f64()
    }
}

macro_rules! int_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u128::from(u64::MAX) {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),* $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Anything usable as the size argument of [`vec()`]: a fixed length or
    /// a length range.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty length range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty length range");
            lo + rng.below((hi - lo + 1) as u64) as usize
        }
    }

    /// A `Vec` strategy: `size` elements drawn from `element`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample_len(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// `proptest::prelude` equivalent.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
    /// Path alias matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
    pub use crate::Just;
}

/// Asserts a condition inside a property (panics with case context).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn name(pattern in strategy, ...)` runs
/// the body over `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); ) => {};
    (config = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                { $body }
            }
        }
        $crate::__proptest_impl!{ config = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn ranges_hold((a, b) in (0.0f64..10.0, 5usize..9), c in 1u64..=4) {
            prop_assert!((0.0..10.0).contains(&a));
            prop_assert!((5..9).contains(&b));
            prop_assert!((1..=4).contains(&c));
        }

        #[test]
        fn vec_and_map_compose(
            v in crate::collection::vec((0.0f64..1.0, 0u32..10), 1..20),
            n in (1usize..5).prop_flat_map(|n| crate::collection::vec(0usize..n, n))
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(n.iter().all(|&x| x < n.len()));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
