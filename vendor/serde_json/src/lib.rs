//! Offline stand-in for the `serde_json` crate, built on the vendored
//! `serde`'s [`Value`] data model: compact and pretty JSON rendering plus a
//! recursive-descent parser.
//!
//! Behavioral conventions matched to real serde_json where this workspace
//! relies on them:
//! * non-finite floats render as `null`,
//! * map keys keep declaration order,
//! * parsing accepts arbitrary whitespace and rejects trailing garbage.

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Parse/print error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error { msg: e.to_string() }
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value as compact JSON.
///
/// # Errors
/// Never fails for the value model in this workspace; kept fallible for
/// serde_json signature compatibility.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value as pretty JSON (two-space indent).
///
/// # Errors
/// Never fails for the value model in this workspace.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a JSON document into `T`.
///
/// # Errors
/// On malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: for<'de> Deserialize<'de>>(text: &str) -> Result<T> {
    let value = parse_value_complete(text)?;
    T::from_value(&value).map_err(Into::into)
}

/// Parses a JSON document into the generic [`Value`] tree.
///
/// # Errors
/// On malformed JSON.
pub fn value_from_str(text: &str) -> Result<Value> {
    parse_value_complete(text)
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Rust's float Display is shortest-round-trip; ensure the
                // token still reads as a float where that matters is not
                // required since parsing accepts integer tokens for floats.
                out.push_str(&f.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..(width * level) {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_complete(text: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON document"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error {
            msg: format!("{msg} at byte {}", self.pos),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed by this
                            // workspace's data; map lone surrogates to the
                            // replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut saw_dot_or_exp = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    saw_dot_or_exp = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !saw_dot_or_exp {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("a\"b\n").unwrap(), "\"a\\\"b\\n\"");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<u64>("18446744073709551615").unwrap(), u64::MAX);
        assert_eq!(
            from_str::<Vec<f64>>("[1, 2.5, 3e1]").unwrap(),
            vec![1.0, 2.5, 30.0]
        );
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        let v: Vec<Option<f64>> = from_str("[1.0, null]").unwrap();
        assert_eq!(v, vec![Some(1.0), None]);
    }

    #[test]
    fn pretty_has_stable_shape() {
        let v = Value::Map(vec![
            ("a".into(), Value::Int(1)),
            ("b".into(), Value::Seq(vec![Value::Bool(false)])),
        ]);
        let text = to_string_pretty(&v).unwrap();
        assert_eq!(text, "{\n  \"a\": 1,\n  \"b\": [\n    false\n  ]\n}");
        assert_eq!(value_from_str(&text).unwrap(), v);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<bool>("true x").is_err());
        assert!(from_str::<Vec<i64>>("[1,]").is_err());
    }
}
