//! E1 and E2 — the paper's §3 worked examples as regenerated tables.

use crate::table::{fnum, Table};
use rpwf_algo::exact::{solve_comm_homog, Exhaustive};
use rpwf_algo::heuristics::single_interval::best_single_interval;
use rpwf_algo::mono::general_mapping_shortest_path;
use rpwf_algo::Objective;
use rpwf_core::prelude::*;

/// E1 — Figures 3 & 4: single-processor mappings cost 105; the optimal
/// mapping splits the two stages across the fast-link chain for 7.
#[must_use]
pub fn fig34() -> Vec<Table> {
    let pipeline = rpwf_gen::figure3_pipeline();
    let platform = rpwf_gen::figure4_platform();

    let mut t = Table::new(
        "E1 / Figures 3-4 — minimum latency needs two intervals (paper: 105 vs 7)",
        &["mapping", "latency", "paper"],
    );
    for u in 0..2u32 {
        let whole = IntervalMapping::single_interval(2, vec![ProcId(u)], 2).expect("valid");
        t.row(vec![
            format!("whole pipeline on P{u}"),
            fnum(latency(&whole, &pipeline, &platform)),
            "105".into(),
        ]);
    }
    let (sp_mapping, sp_latency) = general_mapping_shortest_path(&pipeline, &platform);
    let path: Vec<String> = sp_mapping.procs().iter().map(ToString::to_string).collect();
    t.row(vec![
        format!("Thm 4 shortest path [{}]", path.join(",")),
        fnum(sp_latency),
        "7".into(),
    ]);
    let oracle = Exhaustive::new(&pipeline, &platform).min_latency();
    t.row(vec![
        format!("exhaustive interval optimum ({})", oracle.mapping),
        fnum(oracle.latency),
        "7".into(),
    ]);
    t.note("platform: b(in,P1)=b(P1,P2)=b(P2,out')=100, the remaining I/O links = 1");
    vec![t]
}

/// E2 — Figure 5: at L ≤ 22 the best single interval reaches FP = 0.64; the
/// optimum uses the slow reliable processor plus tenfold replication for
/// FP ≈ 0.1966.
#[must_use]
pub fn fig5() -> Vec<Table> {
    let pipeline = rpwf_gen::figure5_pipeline();
    let platform = rpwf_gen::figure5_platform();
    let threshold = 22.0;
    let paper_fp = 1.0 - 0.9 * (1.0 - 0.8f64.powi(10));

    let mut t = Table::new(
        "E2 / Figure 5 — bi-criteria optimum needs two intervals (paper: 0.64 vs <0.2)",
        &["solution @ L<=22", "latency", "FP", "intervals", "paper"],
    );
    let single = best_single_interval(
        &pipeline,
        &platform,
        Objective::MinFpUnderLatency(threshold),
    )
    .expect("feasible");
    t.row(vec![
        format!("best single interval ({})", single.mapping),
        fnum(single.latency),
        fnum(single.failure_prob),
        single.mapping.n_intervals().to_string(),
        "0.64".into(),
    ]);
    let optimal = solve_comm_homog(
        &pipeline,
        &platform,
        Objective::MinFpUnderLatency(threshold),
    )
    .expect("comm-homog")
    .expect("feasible");
    t.row(vec![
        format!("exact optimum ({})", optimal.mapping),
        fnum(optimal.latency),
        fnum(optimal.failure_prob),
        optimal.mapping.n_intervals().to_string(),
        format!("{paper_fp:.4}"),
    ]);
    t.note(
        "platform: P0 slow/reliable (s=1, fp=0.1); P1..P10 fast/unreliable (s=100, fp=0.8); b=1",
    );
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig34_table_shows_105_and_7() {
        let tables = fig34();
        let s = tables[0].render();
        assert!(s.contains("105.0000"));
        assert!(s.contains("7.0000"));
    }

    #[test]
    fn fig5_table_shows_064_and_01966() {
        let tables = fig5();
        let s = tables[0].render();
        assert!(s.contains("0.6400"));
        assert!(s.contains("0.1966"));
    }
}
