//! E16 — batch amortization: front grouping vs per-request solving
//! (writes `BENCH_batch.json`).
//!
//! The workload is `q` threshold queries spread over `d` distinct
//! `(pipeline, platform)` instances (the acceptance shape: 64 queries
//! over 8 instances). Two scenarios answer the same request lines:
//!
//! * **per-request** — caching disabled and no grouping pass: every query
//!   pays its own full solve (front build racing the heuristics), exactly
//!   what `rpwf batch` did before the front-first refactor;
//! * **grouped** — `WorkerPool::submit_batch` groups the batch by
//!   canonical instance hash, computes one complete Pareto front per
//!   distinct instance (in parallel), and answers every query as a read
//!   off the shared front.
//!
//! The experiment asserts the two scenarios return byte-identical result
//! payloads (grouping is a pure amortization) and, in full mode, the
//! acceptance threshold: grouped throughput ≥ 3× per-request throughput.
//! Smoke mode (`--smoke`, used in CI) shrinks the instances so the whole
//! run takes seconds; the assertion there is the soft form (speedup > 1)
//! to keep CI robust on noisy shared runners.

use crate::table::Table;
use rpwf_algo::Objective;
use rpwf_core::platform::{FailureClass, PlatformClass};
use rpwf_server::protocol::{Command, Request, Response};
use rpwf_server::{ServiceConfig, SolverService, WorkerPool};
use std::sync::Arc;
use std::time::Instant;

struct Measurement {
    scenario: String,
    requests: usize,
    distinct_instances: usize,
    wall_secs: f64,
    requests_per_sec: f64,
}

/// Runs E16 and returns the result tables (also writes
/// `BENCH_batch.json` to the working directory). `smoke` shrinks the
/// workload to CI size.
#[must_use]
pub fn batch_front(smoke: bool) -> Vec<Table> {
    // Acceptance shape (full): 64 threshold queries over 8 distinct
    // instances — 8 queries per instance.
    let (n, m, distinct, per_instance) = if smoke { (4, 8, 4, 8) } else { (6, 12, 8, 8) };
    let workers = 4;

    let lines = workload(n, m, distinct, per_instance);

    // Per-request baseline: zero cache capacity (nothing to share through)
    // and no grouping pass.
    let baseline_pool = WorkerPool::new(Arc::new(SolverService::new(ServiceConfig {
        workers,
        cache_capacity: 0,
        ..Default::default()
    })));
    let start = Instant::now();
    let baseline = baseline_pool.submit_batch_ungrouped(lines.clone());
    let baseline_secs = start.elapsed().as_secs_f64();
    drop(baseline_pool);

    // Grouped: one front per distinct instance, every query a front read.
    let grouped_pool = WorkerPool::new(Arc::new(SolverService::new(ServiceConfig {
        workers,
        ..Default::default()
    })));
    let start = Instant::now();
    let grouped = grouped_pool.submit_batch(lines);
    let grouped_secs = start.elapsed().as_secs_f64();
    drop(grouped_pool);

    // Grouping must be a pure amortization: identical answers.
    assert_eq!(baseline.len(), grouped.len());
    for (b, g) in baseline.iter().zip(&grouped) {
        let b: Response = serde_json::from_str(b).expect("baseline response parses");
        let g: Response = serde_json::from_str(g).expect("grouped response parses");
        assert_eq!(b.status, "ok", "{:?}", b.error);
        assert_eq!(g.status, "ok", "{:?}", g.error);
        assert_eq!(
            serde_json::to_string(&b.result).expect("serializes"),
            serde_json::to_string(&g.result).expect("serializes"),
            "grouped answers must be byte-identical to per-request answers"
        );
    }

    let total = distinct * per_instance;
    let speedup = baseline_secs / grouped_secs.max(1e-9);
    if smoke {
        assert!(
            speedup > 1.0,
            "grouping must beat per-request solving even at smoke size \
             (got {speedup:.2}x)"
        );
    } else {
        assert!(
            speedup >= 3.0,
            "acceptance: grouped batch throughput must be ≥ 3x per-request \
             solving on 64 queries over 8 instances (got {speedup:.2}x)"
        );
    }

    let measurements = [
        Measurement {
            scenario: "per-request".into(),
            requests: total,
            distinct_instances: distinct,
            wall_secs: baseline_secs,
            requests_per_sec: total as f64 / baseline_secs.max(1e-9),
        },
        Measurement {
            scenario: "grouped".into(),
            requests: total,
            distinct_instances: distinct,
            wall_secs: grouped_secs,
            requests_per_sec: total as f64 / grouped_secs.max(1e-9),
        },
    ];

    let mut table = Table::new(
        format!(
            "E16 / batch amortization — {total} threshold queries over {distinct} \
             instances (comm-homog n={n}, m={m})"
        ),
        &[
            "scenario",
            "requests",
            "instances",
            "wall s",
            "req/s",
            "speedup",
        ],
    );
    for meas in &measurements {
        table.row(vec![
            meas.scenario.clone(),
            meas.requests.to_string(),
            meas.distinct_instances.to_string(),
            format!("{:.3}", meas.wall_secs),
            format!("{:.0}", meas.requests_per_sec),
            if meas.scenario == "grouped" {
                format!("{speedup:.2}x")
            } else {
                "1.00x".into()
            },
        ]);
    }
    table.note(
        "grouped = one exact Pareto front per distinct instance, all queries \
         answered as front reads; answers byte-identical to per-request solving",
    );

    write_json(&measurements, speedup);
    vec![table]
}

/// Builds the request lines: `per_instance` threshold queries per instance over
/// `distinct` seeded comm-homogeneous instances, alternating the two
/// threshold objectives with bounds spread so every query is feasible.
fn workload(n: usize, m: usize, distinct: usize, per_instance: usize) -> Vec<String> {
    let mut lines = Vec::with_capacity(distinct * per_instance);
    for seed in 0..distinct {
        let inst = rpwf_gen::make_instance(
            PlatformClass::CommHomogeneous,
            FailureClass::Heterogeneous,
            n,
            m,
            seed as u64,
        );
        let safest = rpwf_algo::mono::minimize_failure(&inst.pipeline, &inst.platform);
        for q in 0..per_instance {
            let t = (q + 1) as f64 / per_instance as f64;
            let objective = if q % 2 == 0 {
                // Latency budgets from the Theorem 1 latency upward.
                Objective::MinFpUnderLatency(safest.latency * (1.0 + t))
            } else {
                // FP budgets between the reliability floor and 1.
                Objective::MinLatencyUnderFp(safest.failure_prob + (1.0 - safest.failure_prob) * t)
            };
            let request = Request {
                id: Some((seed * per_instance + q) as u64),
                deadline_ms: None,
                no_cache: None,
                trace: None,
                trace_ctx: None,
                explain: None,
                hop: None,
                cmd: Command::Solve {
                    pipeline: inst.pipeline.clone(),
                    platform: inst.platform.clone(),
                    objective,
                },
            };
            lines.push(serde_json::to_string(&request).expect("serializes"));
        }
    }
    lines
}

fn write_json(measurements: &[Measurement], speedup: f64) {
    let doc = serde::Value::Map(vec![
        (
            "scenarios".into(),
            serde::Value::Seq(
                measurements
                    .iter()
                    .map(|meas| {
                        serde::Value::Map(vec![
                            ("scenario".into(), serde::Value::Str(meas.scenario.clone())),
                            ("requests".into(), serde::Value::UInt(meas.requests as u64)),
                            (
                                "distinct_instances".into(),
                                serde::Value::UInt(meas.distinct_instances as u64),
                            ),
                            ("wall_secs".into(), serde::Value::Float(meas.wall_secs)),
                            (
                                "requests_per_sec".into(),
                                serde::Value::Float(meas.requests_per_sec),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("grouped_speedup".into(), serde::Value::Float(speedup)),
    ]);
    let text = serde_json::to_string_pretty(&doc).expect("serializes");
    if let Err(e) = std::fs::write("BENCH_batch.json", text) {
        eprintln!("warning: could not write BENCH_batch.json: {e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_batch_amortization_runs_and_groups() {
        let tables = batch_front(true);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].rows.len(), 2);
        let _ = std::fs::remove_file("BENCH_batch.json");
    }
}
