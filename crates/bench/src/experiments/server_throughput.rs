//! E14 — serving-layer throughput: concurrent clients against the TCP
//! solver server, with and without cache reuse.
//!
//! Spins the server up in-process on an ephemeral port, fires batches of
//! solve/pareto requests from several client threads, and reports
//! request throughput, latency quantiles, and cache effectiveness. The
//! machine-readable summary is written to `BENCH_server.json` for
//! regression tracking.

use crate::table::Table;
use rpwf_algo::Objective;
use rpwf_core::platform::{FailureClass, PlatformClass};
use rpwf_server::protocol::{Command, Request, Response};
use rpwf_server::{Server, ServiceConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Instant;

/// One measured scenario.
struct Scenario {
    name: &'static str,
    clients: usize,
    requests_per_client: usize,
    /// Number of distinct instances cycled through (1 ⇒ maximal reuse).
    distinct_instances: usize,
}

struct Measurement {
    name: String,
    clients: usize,
    total_requests: usize,
    wall_secs: f64,
    requests_per_sec: f64,
    mean_elapsed_us: f64,
    max_elapsed_us: u64,
    cache_hits: usize,
}

/// Runs E14 and returns the result tables (also writes
/// `BENCH_server.json` to the working directory).
#[must_use]
pub fn server_throughput() -> Vec<Table> {
    let scenarios = [
        Scenario {
            name: "cold-distinct",
            clients: 4,
            requests_per_client: 8,
            distinct_instances: 32,
        },
        Scenario {
            name: "warm-repeat",
            clients: 4,
            requests_per_client: 8,
            distinct_instances: 4,
        },
        Scenario {
            name: "hot-single",
            clients: 8,
            requests_per_client: 8,
            distinct_instances: 1,
        },
    ];

    let mut measurements = Vec::new();
    for scenario in &scenarios {
        measurements.push(run_scenario(scenario));
    }

    let mut table = Table::new(
        "E14 / server throughput — concurrent solve over TCP",
        &[
            "scenario",
            "clients",
            "requests",
            "wall s",
            "req/s",
            "mean µs",
            "max µs",
            "cache hits",
        ],
    );
    for m in &measurements {
        table.row(vec![
            m.name.clone(),
            m.clients.to_string(),
            m.total_requests.to_string(),
            format!("{:.3}", m.wall_secs),
            format!("{:.0}", m.requests_per_sec),
            format!("{:.0}", m.mean_elapsed_us),
            m.max_elapsed_us.to_string(),
            m.cache_hits.to_string(),
        ]);
    }
    table.note(
        "comm-homogeneous n=3, m=4 instances; exact bitmask-DP answers; \
         cache reuse grows from cold-distinct to hot-single",
    );

    write_json(&measurements);
    vec![table]
}

fn run_scenario(scenario: &Scenario) -> Measurement {
    let mut server = Server::bind(
        "127.0.0.1:0",
        ServiceConfig {
            workers: 4,
            cache_capacity: 1024,
            cache_shards: 16,
            seed: 0xCAFE,
            solver_threads: 1,
            node_id: None,
        },
    )
    .expect("bind an ephemeral port");
    let addr = server.local_addr();

    let instances: Vec<(
        rpwf_core::stage::Pipeline,
        rpwf_core::platform::Platform,
        f64,
    )> = (0..scenario.distinct_instances)
        .map(|i| {
            let inst = rpwf_gen::make_instance(
                PlatformClass::CommHomogeneous,
                FailureClass::Heterogeneous,
                3,
                4,
                i as u64,
            );
            let l = rpwf_algo::mono::minimize_failure(&inst.pipeline, &inst.platform).latency;
            (inst.pipeline, inst.platform, l)
        })
        .collect();

    let start = Instant::now();
    let per_client: Vec<Vec<Response>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..scenario.clients)
            .map(|client| {
                let instances = &instances;
                scope.spawn(move || {
                    let mut stream = TcpStream::connect(addr).expect("connect");
                    let mut responses = Vec::new();
                    let reader_stream = stream.try_clone().expect("clone stream");
                    let mut reader = BufReader::new(reader_stream);
                    for r in 0..scenario.requests_per_client {
                        let idx = (client + r * scenario.clients) % instances.len();
                        let (pipeline, platform, l) = instances[idx].clone();
                        let request = Request {
                            id: Some((client * 1000 + r) as u64),
                            deadline_ms: Some(30_000),
                            no_cache: None,
                            trace: None,
                            trace_ctx: None,
                            explain: None,
                            hop: None,
                            cmd: Command::Solve {
                                pipeline,
                                platform,
                                objective: Objective::MinFpUnderLatency(l),
                            },
                        };
                        let line = serde_json::to_string(&request).expect("serializes");
                        writeln!(stream, "{line}").expect("send");
                        stream.flush().expect("flush");
                        let mut resp = String::new();
                        reader.read_line(&mut resp).expect("read");
                        responses.push(serde_json::from_str(resp.trim()).expect("response parses"));
                    }
                    responses
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall_secs = start.elapsed().as_secs_f64();
    server.shutdown();

    let all: Vec<&Response> = per_client.iter().flatten().collect();
    let total_requests = all.len();
    assert!(
        all.iter().all(|r| r.status == "ok"),
        "benchmark requests must succeed"
    );
    let cache_hits = all.iter().filter(|r| r.meta.cache_hit).count();
    let mean_elapsed_us =
        all.iter().map(|r| r.meta.elapsed_us as f64).sum::<f64>() / total_requests as f64;
    let max_elapsed_us = all.iter().map(|r| r.meta.elapsed_us).max().unwrap_or(0);

    Measurement {
        name: scenario.name.to_string(),
        clients: scenario.clients,
        total_requests,
        wall_secs,
        requests_per_sec: total_requests as f64 / wall_secs.max(1e-9),
        mean_elapsed_us,
        max_elapsed_us,
        cache_hits,
    }
}

fn write_json(measurements: &[Measurement]) {
    let doc = serde::Value::Seq(
        measurements
            .iter()
            .map(|m| {
                serde::Value::Map(vec![
                    ("scenario".into(), serde::Value::Str(m.name.clone())),
                    ("clients".into(), serde::Value::UInt(m.clients as u64)),
                    (
                        "requests".into(),
                        serde::Value::UInt(m.total_requests as u64),
                    ),
                    ("wall_secs".into(), serde::Value::Float(m.wall_secs)),
                    (
                        "requests_per_sec".into(),
                        serde::Value::Float(m.requests_per_sec),
                    ),
                    (
                        "mean_elapsed_us".into(),
                        serde::Value::Float(m.mean_elapsed_us),
                    ),
                    (
                        "max_elapsed_us".into(),
                        serde::Value::UInt(m.max_elapsed_us),
                    ),
                    ("cache_hits".into(), serde::Value::UInt(m.cache_hits as u64)),
                ])
            })
            .collect(),
    );
    let text = serde_json::to_string_pretty(&doc).expect("serializes");
    if let Err(e) = std::fs::write("BENCH_server.json", text) {
        eprintln!("warning: could not write BENCH_server.json: {e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_experiment_runs_and_reports() {
        let tables = server_throughput();
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].rows.len(), 3);
        // The hot-single scenario must see cache hits.
        let hot = &tables[0].rows[2];
        assert_eq!(hot[0], "hot-single");
        let hits: usize = hot[7].parse().expect("hit count");
        assert!(hits > 0, "repeated identical requests must hit the cache");
        let _ = std::fs::remove_file("BENCH_server.json");
    }
}
