//! E10 — heuristic quality against exact Pareto fronts on the open
//! (CH + Failure-Heterogeneous) and NP-hard (Fully Heterogeneous) classes.

use crate::table::{fnum, Table};
use rpwf_algo::exact::{pareto_front_comm_homog, Exhaustive};
use rpwf_algo::heuristics::Portfolio;
use rpwf_algo::Objective;
use rpwf_core::prelude::*;
use rpwf_gen::SuiteSpec;
use std::time::Instant;

/// Quality of each portfolio member at the exact front's median latency
/// threshold: `FP(heuristic) / FP(exact)` — 1.0 means optimal.
#[must_use]
pub fn heuristics() -> Vec<Table> {
    let mut tables = Vec::new();

    // Open problem class: CH + Failure-Heterogeneous, exact via bitmask DP.
    let mut t = Table::new(
        "E10a — heuristics vs exact bitmask DP (Comm Homogeneous + Failure Heterogeneous)",
        &[
            "instance",
            "heuristic",
            "FP ratio (1 = optimal)",
            "latency ok",
            "runtime",
        ],
    );
    let suite = SuiteSpec {
        sizes: vec![(3, 6), (4, 7), (5, 8)],
        seeds: vec![101, 102],
        ..SuiteSpec::small(PlatformClass::CommHomogeneous, FailureClass::Heterogeneous)
    };
    for inst in suite.instances() {
        let front = pareto_front_comm_homog(&inst.pipeline, &inst.platform).expect("comm-homog");
        let mid = front.points()[front.len() / 2].latency;
        let exact = front
            .min_fp_under_latency(mid)
            .expect("exists")
            .failure_prob;
        let objective = Objective::MinFpUnderLatency(mid);
        for (name, sol) in Portfolio::new(19).run_all(&inst.pipeline, &inst.platform, objective) {
            let start = Instant::now();
            let _ = &sol;
            let elapsed = start.elapsed();
            match sol {
                Some(s) => t.row(vec![
                    inst.label.clone(),
                    name.into(),
                    fnum(if exact > 0.0 {
                        s.failure_prob / exact
                    } else {
                        1.0
                    }),
                    if s.latency <= mid + 1e-6 { "yes" } else { "NO" }.into(),
                    format!("{:.1?}", elapsed),
                ]),
                None => t.row(vec![
                    inst.label.clone(),
                    name.into(),
                    "none found".into(),
                    "-".into(),
                    format!("{:.1?}", elapsed),
                ]),
            }
        }
    }
    t.note("FP ratio uses the front's median-latency threshold; exact optimum from the bitmask DP");
    tables.push(t);

    // NP-hard class: Fully Heterogeneous, exact via the brute-force oracle.
    let mut t = Table::new(
        "E10b — heuristics vs exhaustive oracle (Fully Heterogeneous)",
        &[
            "instance",
            "heuristic",
            "FP ratio (1 = optimal)",
            "latency ok",
        ],
    );
    let suite = SuiteSpec {
        sizes: vec![(3, 4), (4, 5)],
        seeds: vec![201, 202],
        ..SuiteSpec::small(
            PlatformClass::FullyHeterogeneous,
            FailureClass::Heterogeneous,
        )
    };
    for inst in suite.instances() {
        let front = Exhaustive::new(&inst.pipeline, &inst.platform).pareto_front();
        let mid = front.points()[front.len() / 2].latency;
        let exact = front
            .min_fp_under_latency(mid)
            .expect("exists")
            .failure_prob;
        let objective = Objective::MinFpUnderLatency(mid);
        for (name, sol) in Portfolio::new(23).run_all(&inst.pipeline, &inst.platform, objective) {
            match sol {
                Some(s) => t.row(vec![
                    inst.label.clone(),
                    name.into(),
                    fnum(if exact > 0.0 {
                        s.failure_prob / exact
                    } else {
                        1.0
                    }),
                    if s.latency <= mid + 1e-6 { "yes" } else { "NO" }.into(),
                ]),
                None => t.row(vec![
                    inst.label.clone(),
                    name.into(),
                    "none found".into(),
                    "-".into(),
                ]),
            }
        }
    }
    tables.push(t);

    // One-to-one heuristic (greedy + 2-opt) vs the exact Held–Karp DP on
    // Theorem 3's NP-hard latency problem.
    let mut t = Table::new(
        "E10c — one-to-one latency: greedy+2-opt vs exact Held-Karp (Fully Heterogeneous)",
        &["instance", "greedy+2opt", "Held-Karp", "ratio"],
    );
    let suite = SuiteSpec {
        sizes: vec![(3, 5), (4, 6), (5, 8), (6, 10)],
        seeds: vec![301, 302],
        ..SuiteSpec::small(
            PlatformClass::FullyHeterogeneous,
            FailureClass::Heterogeneous,
        )
    };
    for inst in suite.instances() {
        let (_, heur) =
            rpwf_algo::heuristics::one_to_one::solve_one_to_one(&inst.pipeline, &inst.platform)
                .expect("n <= m");
        let (_, exact) = rpwf_algo::exact::min_latency_one_to_one(&inst.pipeline, &inst.platform)
            .expect("n <= m");
        t.row(vec![
            inst.label.clone(),
            fnum(heur),
            fnum(exact),
            fnum(heur / exact),
        ]);
    }
    tables.push(t);

    // Branch-and-bound pruning effectiveness: node counts with and without
    // the heuristic incumbent seed, agreement with the exact answer.
    let mut t = Table::new(
        "E10d — branch-and-bound on Fully Heterogeneous: pruning via heuristic seeding",
        &[
            "instance",
            "nodes (seeded)",
            "nodes (raw)",
            "saving",
            "agrees with oracle",
        ],
    );
    let suite = SuiteSpec {
        sizes: vec![(3, 4), (4, 5)],
        seeds: vec![401, 402],
        ..SuiteSpec::small(
            PlatformClass::FullyHeterogeneous,
            FailureClass::Heterogeneous,
        )
    };
    for inst in suite.instances() {
        let hi = rpwf_algo::mono::minimize_failure(&inst.pipeline, &inst.platform).latency;
        let objective = Objective::MinFpUnderLatency(hi * 0.7);
        let bnb = rpwf_algo::exact::BranchBound::new(&inst.pipeline, &inst.platform);
        let (seeded_sol, seeded_nodes) = bnb.solve_counting(objective);
        let raw = rpwf_algo::exact::BranchBound::new(&inst.pipeline, &inst.platform)
            .without_heuristic_seed();
        let (_, raw_nodes) = raw.solve_counting(objective);
        let oracle = Exhaustive::new(&inst.pipeline, &inst.platform).solve(objective);
        let agrees = match (&seeded_sol, &oracle) {
            (Some(a), Some(o)) => (a.failure_prob - o.failure_prob).abs() < 1e-9,
            (None, None) => true,
            _ => false,
        };
        t.row(vec![
            inst.label.clone(),
            seeded_nodes.to_string(),
            raw_nodes.to_string(),
            format!(
                "{:.1}%",
                100.0 * (1.0 - seeded_nodes as f64 / raw_nodes.max(1) as f64)
            ),
            if agrees { "yes" } else { "NO" }.into(),
        ]);
    }
    tables.push(t);
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heuristics_never_violate_thresholds_or_beat_exact() {
        for table in heuristics() {
            let lat_col = table.headers.iter().position(|h| h.starts_with("latency"));
            let ratio_col = table.headers.iter().position(|h| h.contains("ratio"));
            for row in &table.rows {
                if let Some(col) = lat_col {
                    assert_ne!(row[col], "NO", "{}", table.render());
                }
                // Optimality ratios must be ≥ 1 − ε when parseable.
                if let Some(col) = ratio_col {
                    if let Ok(ratio) = row[col].parse::<f64>() {
                        assert!(ratio >= 1.0 - 1e-6, "{}", table.render());
                    }
                }
            }
        }
    }

    #[test]
    fn branch_bound_table_agrees_and_saves_nodes() {
        let tables = heuristics();
        let bnb = tables
            .iter()
            .find(|t| t.title.starts_with("E10d"))
            .expect("present");
        for row in &bnb.rows {
            assert_eq!(row[4], "yes", "{}", bnb.render());
            let seeded: u64 = row[1].parse().unwrap();
            let raw: u64 = row[2].parse().unwrap();
            assert!(seeded <= raw, "{}", bnb.render());
        }
    }
}
