//! E7 and E8 — the NP-hardness reduction gadgets, exercised end to end.

use crate::table::{fnum, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rpwf_algo::reductions::{build_tsp_gadget, build_two_partition_gadget};
use rpwf_gen::{TspInstance, TwoPartitionInstance};

/// E7 — Theorem 3: TSP ⟷ one-to-one latency, both directions, on random
/// graphs, decided exactly on both sides.
#[must_use]
pub fn thm3() -> Vec<Table> {
    let mut t = Table::new(
        "E7 / Theorem 3 — TSP -> one-to-one latency gadget (yes/no at K = opt and K = opt - 1/2)",
        &[
            "n",
            "seed",
            "opt path cost",
            "K'",
            "decide@opt",
            "decide@opt-0.5",
            "equiv",
        ],
    );
    let mut rng = StdRng::seed_from_u64(7007);
    for trial in 0..12u64 {
        let n = 4 + (trial as usize) % 3;
        let inst = TspInstance::random(n, 8, &mut rng);
        let (_, opt) = inst.brute_force_best_path();
        let yes = build_tsp_gadget(&inst, opt);
        let yes_answer = yes.decide();
        let no = build_tsp_gadget(&inst, opt - 0.5);
        let no_answer = no.decide();
        let sound = yes_answer
            .as_ref()
            .is_some_and(|w| inst.path_cost(w) <= opt + 1e-9)
            && no_answer.is_none();
        t.row(vec![
            n.to_string(),
            trial.to_string(),
            fnum(opt),
            fnum(yes.latency_threshold),
            if yes_answer.is_some() { "yes" } else { "no" }.into(),
            if no_answer.is_some() { "yes" } else { "no" }.into(),
            if sound { "holds" } else { "VIOLATED" }.into(),
        ]);
    }
    t.note("decide@opt must be yes with a witness of cost <= K; decide@opt-0.5 must be no");
    vec![t]
}

/// E8 — Theorem 7: 2-PARTITION ⟷ bi-criteria feasibility, over random,
/// planted-yes and forced-no instances.
#[must_use]
pub fn thm7() -> Vec<Table> {
    let mut t = Table::new(
        "E8 / Theorem 7 — 2-PARTITION -> bi-criteria feasibility gadget",
        &[
            "kind",
            "m",
            "S",
            "L = S/2+2",
            "partition?",
            "gadget feasible?",
            "equiv",
        ],
    );
    let mut rng = StdRng::seed_from_u64(7008);
    let mut push = |kind: &str, inst: &TwoPartitionInstance| {
        let gadget = build_two_partition_gadget(inst);
        let partition = inst.solve().is_some();
        let feasible = gadget.decide_by_enumeration().is_some();
        t.row(vec![
            kind.into(),
            inst.values.len().to_string(),
            inst.total().to_string(),
            fnum(gadget.latency_threshold),
            if partition { "yes" } else { "no" }.into(),
            if feasible { "yes" } else { "no" }.into(),
            if partition == feasible {
                "holds"
            } else {
                "VIOLATED"
            }
            .into(),
        ]);
    };
    for _ in 0..8 {
        push("random", &TwoPartitionInstance::random(9, 11, &mut rng));
    }
    for _ in 0..4 {
        push(
            "planted-yes",
            &TwoPartitionInstance::with_planted_solution(4, 15, &mut rng),
        );
    }
    for _ in 0..4 {
        push(
            "odd-total-no",
            &TwoPartitionInstance::odd_total(8, 12, &mut rng),
        );
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thm3_equivalence_holds_everywhere() {
        let t = &thm3()[0];
        assert!(t.rows.iter().all(|r| r[6] == "holds"), "{}", t.render());
        // And the answers are non-trivial: at opt the answer is yes.
        assert!(t.rows.iter().all(|r| r[4] == "yes" && r[5] == "no"));
    }

    #[test]
    fn thm7_equivalence_holds_everywhere() {
        let t = &thm7()[0];
        assert!(t.rows.iter().all(|r| r[6] == "holds"), "{}", t.render());
        // Planted instances answer yes; odd totals answer no.
        for r in &t.rows {
            match r[0].as_str() {
                "planted-yes" => assert_eq!(r[4], "yes"),
                "odd-total-no" => assert_eq!(r[4], "no"),
                _ => {}
            }
        }
    }
}
