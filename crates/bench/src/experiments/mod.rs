//! Experiment runners — one function per DESIGN.md experiment id.
//!
//! | id | function | binary |
//! |----|----------|--------|
//! | E1 | [`figures::fig34`] | `exp_fig34` |
//! | E2 | [`figures::fig5`] | `exp_fig5` |
//! | E3 | [`theorems::thm1`] | `exp_thm1` |
//! | E4 | [`theorems::alg12`] | `exp_alg12` |
//! | E5 | [`theorems::alg34`] | `exp_alg34` |
//! | E6 | [`theorems::thm4`] | `exp_thm4` |
//! | E7 | [`hardness::thm3`] | `exp_thm3` |
//! | E8 | [`hardness::thm7`] | `exp_thm7` |
//! | E9 | [`theorems::lemma1`] | `exp_lemma1` |
//! | E10 | [`heuristics_eval::heuristics`] | `exp_heuristics` |
//! | E11 | [`simulation::sim_validation`] | `exp_sim_validation` |
//! | E13 | [`tricriteria::tricriteria`] | `exp_tricriteria` |
//! | E14 | [`server_throughput::server_throughput`] | `exp_server` |
//! | E15 | [`eval_incremental::eval_incremental`] | `exp_eval` |
//! | E16 | [`batch_front::batch_front`] | `exp_batch` |
//! | E17 | [`fleet::fleet`] | `exp_fleet` |
//! | E18 | [`engine_overhead::engine_overhead`] | `exp_engine` |
//!
//! (E12 is the criterion suite under `benches/`.)

pub mod batch_front;
pub mod engine_overhead;
pub mod eval_incremental;
pub mod figures;
pub mod fleet;
pub mod hardness;
pub mod heuristics_eval;
pub mod server_throughput;
pub mod simulation;
pub mod theorems;
pub mod tricriteria;

use crate::table::Table;

/// Runs every experiment, returning `(id, tables)` pairs — used by the
/// `exp_all` binary and by EXPERIMENTS.md regeneration.
#[must_use]
pub fn run_all() -> Vec<(&'static str, Vec<Table>)> {
    vec![
        ("E1", figures::fig34()),
        ("E2", figures::fig5()),
        ("E3", theorems::thm1()),
        ("E4", theorems::alg12()),
        ("E5", theorems::alg34()),
        ("E6", theorems::thm4()),
        ("E7", hardness::thm3()),
        ("E8", hardness::thm7()),
        ("E9", theorems::lemma1()),
        ("E10", heuristics_eval::heuristics()),
        ("E11", simulation::sim_validation()),
        ("E13", tricriteria::tricriteria()),
        ("E14", server_throughput::server_throughput()),
        ("E15", eval_incremental::eval_incremental(false)),
        ("E16", batch_front::batch_front(false)),
        ("E17", fleet::fleet(false)),
        ("E18", engine_overhead::engine_overhead(false)),
    ]
}
