//! Experiment runners — one function per DESIGN.md experiment id.
//!
//! | id | function | binary |
//! |----|----------|--------|
//! | E1 | [`figures::fig34`] | `exp_fig34` |
//! | E2 | [`figures::fig5`] | `exp_fig5` |
//! | E3 | [`theorems::thm1`] | `exp_thm1` |
//! | E4 | [`theorems::alg12`] | `exp_alg12` |
//! | E5 | [`theorems::alg34`] | `exp_alg34` |
//! | E6 | [`theorems::thm4`] | `exp_thm4` |
//! | E7 | [`hardness::thm3`] | `exp_thm3` |
//! | E8 | [`hardness::thm7`] | `exp_thm7` |
//! | E9 | [`theorems::lemma1`] | `exp_lemma1` |
//! | E10 | [`heuristics_eval::heuristics`] | `exp_heuristics` |
//! | E11 | [`simulation::sim_validation`] | `exp_sim_validation` |
//! | E13 | [`tricriteria::tricriteria`] | `exp_tricriteria` |
//! | E14 | [`server_throughput::server_throughput`] | `exp_server` |
//! | E15 | [`eval_incremental::eval_incremental`] | `exp_eval` |
//! | E16 | [`batch_front::batch_front`] | `exp_batch` |
//! | E17 | [`fleet::fleet`] | `exp_fleet` |
//! | E18 | [`engine_overhead::engine_overhead`] | `exp_engine` |
//! | E19 | [`trace_overhead::trace_overhead`] | `exp_trace` |
//! | E20 | [`chaos::chaos`] | `exp_chaos` |
//! | E21 | [`parallel_search::parallel_search`] | `exp_par` |
//! | E22 | [`overload::overload`] | `exp_overload` |
//! | E23 | [`explain::explain`] | `exp_explain` |
//!
//! (E12 is the criterion suite under `benches/`.)

pub mod batch_front;
pub mod chaos;
pub mod engine_overhead;
pub mod eval_incremental;
pub mod explain;
pub mod figures;
pub mod fleet;
pub mod hardness;
pub mod heuristics_eval;
pub mod overload;
pub mod parallel_search;
pub mod server_throughput;
pub mod simulation;
pub mod theorems;
pub mod trace_overhead;
pub mod tricriteria;

use crate::table::Table;

/// Serializes the timing-sensitive overhead tests (E18, E19): run in
/// parallel inside one test binary they perturb each other's medians
/// past the acceptance bars.
#[cfg(test)]
pub(crate) static TIMING_TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Runs a timing-bar check up to three times, panicking only when every
/// attempt reports a violation. Overhead bars are percentage
/// comparisons of microsecond-scale medians; on shared, unoptimized
/// test machines a single attempt sees scheduler noise above the bar a
/// few percent of the time, while a genuine regression fails all three.
#[cfg(test)]
pub(crate) fn retry_timing_bars(mut attempt: impl FnMut() -> Option<String>) {
    let mut last = None;
    for _ in 0..3 {
        match attempt() {
            None => return,
            violation @ Some(_) => last = violation,
        }
    }
    panic!("{}", last.expect("at least one attempt ran"));
}

/// Runs every experiment, returning `(id, tables)` pairs — used by the
/// `exp_all` binary and by EXPERIMENTS.md regeneration.
#[must_use]
pub fn run_all() -> Vec<(&'static str, Vec<Table>)> {
    vec![
        ("E1", figures::fig34()),
        ("E2", figures::fig5()),
        ("E3", theorems::thm1()),
        ("E4", theorems::alg12()),
        ("E5", theorems::alg34()),
        ("E6", theorems::thm4()),
        ("E7", hardness::thm3()),
        ("E8", hardness::thm7()),
        ("E9", theorems::lemma1()),
        ("E10", heuristics_eval::heuristics()),
        ("E11", simulation::sim_validation()),
        ("E13", tricriteria::tricriteria()),
        ("E14", server_throughput::server_throughput()),
        ("E15", eval_incremental::eval_incremental(false)),
        ("E16", batch_front::batch_front(false)),
        ("E17", fleet::fleet(false)),
        ("E18", engine_overhead::engine_overhead(false)),
        ("E19", trace_overhead::trace_overhead(false)),
        ("E20", chaos::chaos(false)),
        ("E21", parallel_search::parallel_search(false)),
        ("E22", overload::overload(false)),
        ("E23", explain::explain(false)),
    ]
}
