//! E11 — simulator-vs-formula certification tables.

use crate::table::{fnum, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rpwf_core::num::approx_eq;
use rpwf_core::prelude::*;
use rpwf_gen::{PipelineGen, PlatformGen};
use rpwf_sim::{simulate_one, FailureScenario, MonteCarlo, SimConfig};

/// Worst-case equality and Monte Carlo convergence on random instances.
#[must_use]
pub fn sim_validation() -> Vec<Table> {
    let mut tables = Vec::new();
    let mut rng = StdRng::seed_from_u64(4242);

    // (a) adversarial simulation == equation (2).
    let mut t = Table::new(
        "E11a — adversarial DES latency equals equation (2)",
        &["class", "trial", "analytic", "simulated", "match"],
    );
    for class in [
        PlatformClass::FullyHomogeneous,
        PlatformClass::CommHomogeneous,
        PlatformClass::FullyHeterogeneous,
    ] {
        for trial in 0..4 {
            let pipe = PipelineGen::balanced(4).sample(&mut rng);
            let pf = PlatformGen::new(5, class, FailureClass::Heterogeneous).sample(&mut rng);
            let mapping = rpwf_algo::heuristics::neighborhood::random_mapping(4, 5, &mut rng);
            let analytic = latency(&mapping, &pipe, &pf);
            let sim = simulate_one(
                &pipe,
                &pf,
                &mapping,
                &FailureScenario::all_alive(5),
                SimConfig::worst_case(),
            )
            .latency()
            .expect("all alive");
            t.row(vec![
                format!("{class:?}"),
                trial.to_string(),
                fnum(analytic),
                fnum(sim),
                if approx_eq(analytic, sim, 1e-9) {
                    "yes"
                } else {
                    "NO"
                }
                .into(),
            ]);
        }
    }
    tables.push(t);

    // (b) Monte Carlo success rate vs analytic reliability.
    let mut t = Table::new(
        "E11b — Monte Carlo success rate vs analytic 1 - FP (20k trials, Wilson 95%)",
        &[
            "trial",
            "analytic 1-FP",
            "MC rate",
            "wilson lo",
            "wilson hi",
            "within 4.5 sigma",
        ],
    );
    for trial in 0..5 {
        let pipe = PipelineGen::balanced(3).sample(&mut rng);
        let pf = PlatformGen::new(
            5,
            PlatformClass::CommHomogeneous,
            FailureClass::Heterogeneous,
        )
        .sample(&mut rng);
        let mapping = rpwf_algo::heuristics::neighborhood::random_mapping(3, 5, &mut rng);
        let analytic = reliability(&mapping, &pf);
        let report = MonteCarlo {
            trials: 20_000,
            seed: 7 + trial,
            ..Default::default()
        }
        .run(&pipe, &pf, &mapping);
        // Pass criterion: a 4.5-sigma band (the 95% CI misses ~1 in 20
        // checks by construction; the table still reports it for scale).
        let sigma = (analytic * (1.0 - analytic) / report.trials as f64).sqrt();
        let inside = (report.success_rate - analytic).abs() <= 4.5 * sigma + 1e-4;
        t.row(vec![
            trial.to_string(),
            fnum(analytic),
            fnum(report.success_rate),
            fnum(report.wilson95.0),
            fnum(report.wilson95.1),
            if inside { "yes" } else { "NO" }.into(),
        ]);
    }
    tables.push(t);

    // (c) latency distribution bracketing: best-case ≤ observed ≤ bound.
    let mut t = Table::new(
        "E11c — simulated latency distribution stays within [best case, worst-case bound]",
        &[
            "trial",
            "best-case sim",
            "MC min",
            "MC mean",
            "MC max",
            "eq.(2) bound",
            "bracketed",
        ],
    );
    for trial in 0..4 {
        let pipe = PipelineGen::balanced(3).sample(&mut rng);
        let pf = PlatformGen::new(
            5,
            PlatformClass::FullyHeterogeneous,
            FailureClass::Heterogeneous,
        )
        .sample(&mut rng);
        let mapping = rpwf_algo::heuristics::neighborhood::random_mapping(3, 5, &mut rng);
        let bound = latency(&mapping, &pipe, &pf);
        let best = simulate_one(
            &pipe,
            &pf,
            &mapping,
            &FailureScenario::all_alive(5),
            SimConfig::best_case(),
        )
        .latency()
        .expect("all alive");
        let report = MonteCarlo {
            trials: 5_000,
            seed: 100 + trial,
            ..Default::default()
        }
        .run(&pipe, &pf, &mapping);
        let ok = report.latency.count == 0
            || (report.latency.max <= bound + 1e-9 && report.latency.min >= best - 1e-9);
        t.row(vec![
            trial.to_string(),
            fnum(best),
            fnum(report.latency.min),
            fnum(report.latency.mean),
            fnum(report.latency.max),
            fnum(bound),
            if ok { "yes" } else { "NO" }.into(),
        ]);
    }
    t.note("the adversarial worst case elects the costliest survivor, so random trials sit inside the envelope");
    tables.push(t);
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_checks_pass() {
        for table in sim_validation() {
            let last = table.headers.len() - 1;
            for row in &table.rows {
                assert_eq!(row[last], "yes", "{}", table.render());
            }
        }
    }
}
