//! E21 — cooperative parallel exact search: thread-count speedup curve
//! and largest-m-solved-within-budget probe (writes `BENCH_par.json`).
//!
//! Two measurements on fully-heterogeneous instances:
//!
//! * **speedup curve** — the threshold branch-and-bound subtree search at
//!   1/2/4/8 worker threads on m = 10..14 processors, with the work-unit
//!   and steal counters from [`rpwf_algo::exact::SearchStats`]. Answers
//!   are asserted byte-identical across thread counts whenever both runs
//!   complete — parallelism is a pure wall-clock optimization, never an
//!   answer change.
//! * **largest-m probe** — `bnb-sweep` exact fronts under the default
//!   10-second budget at increasing m, recording the largest instance
//!   whose full Pareto front is proven within budget.
//!
//! The ≥ 3× speedup acceptance bar at 8 threads on m = 12 is asserted
//! only when the machine actually has ≥ 8 cores
//! (`std::thread::available_parallelism`): the cooperative search cannot
//! beat sequential wall-clock on a single core, and the honest numbers
//! are worth more than a vacuous pass. Byte-identity is asserted on
//! every machine. Smoke mode (`--smoke`, used in CI) shrinks both
//! measurements to seconds.

use crate::table::Table;
use rpwf_algo::exact::BranchBound;
use rpwf_algo::front::{BranchBoundSweep, FrontSource};
use rpwf_algo::Objective;
use rpwf_core::budget::Budget;
use rpwf_core::platform::{FailureClass, PlatformClass};
use std::time::{Duration, Instant};

/// Per-solve budget for every E21 measurement — the "default budget"
/// the acceptance bars are phrased against.
const DEFAULT_BUDGET: Duration = Duration::from_secs(10);

struct CurvePoint {
    m: usize,
    threads: usize,
    wall_secs: f64,
    complete: bool,
    nodes: u64,
    units_executed: u64,
    units_stolen: u64,
    speedup: f64,
}

struct ProbeRow {
    m: usize,
    seed: u64,
    complete: bool,
    points: usize,
    wall_secs: f64,
}

/// Runs E21 and returns the result tables (also writes `BENCH_par.json`
/// to the working directory). `smoke` shrinks the workload to CI size.
#[must_use]
pub fn parallel_search(smoke: bool) -> Vec<Table> {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    // ---- speedup curve: threshold subtree search --------------------
    // n = 5 stages; seed 2 keeps the m = 12 search in the seconds range
    // sequentially so the full curve stays runnable on one core.
    let (curve_n, curve_seed) = (5, 2u64);
    let curve_ms: &[usize] = if smoke { &[8] } else { &[10, 12, 14] };
    let thread_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };

    let mut curve = Vec::new();
    let mut m12_speedup_at_8 = None;
    for &m in curve_ms {
        let inst = rpwf_gen::make_instance(
            PlatformClass::FullyHeterogeneous,
            FailureClass::Heterogeneous,
            curve_n,
            m,
            curve_seed,
        );
        let safest = rpwf_algo::mono::minimize_failure(&inst.pipeline, &inst.platform);
        let objective = Objective::MinFpUnderLatency(safest.latency * 1.1);

        let mut baseline: Option<(f64, bool, String)> = None;
        for &threads in thread_counts {
            let budget = Budget::with_deadline(DEFAULT_BUDGET);
            let start = Instant::now();
            let (outcome, stats) = BranchBound::new(&inst.pipeline, &inst.platform)
                .with_threads(threads)
                .solve_with_budget_seeded_stats(objective, &budget, None);
            let wall_secs = start.elapsed().as_secs_f64();
            let complete = outcome.is_complete();
            let bytes = serde_json::to_string(&outcome).expect("serializes");

            let speedup = match &baseline {
                None => {
                    baseline = Some((wall_secs, complete, bytes));
                    1.0
                }
                Some((base_secs, base_complete, base_bytes)) => {
                    // Determinism bar: identical answers whenever both
                    // runs finished their proof. (Cutoff payloads are
                    // wall-clock artifacts, not comparable.)
                    if complete && *base_complete {
                        assert_eq!(
                            base_bytes, &bytes,
                            "m={m} threads={threads}: parallel answer must be \
                             byte-identical to sequential"
                        );
                    }
                    base_secs / wall_secs.max(1e-9)
                }
            };
            if m == 12 && threads == 8 {
                m12_speedup_at_8 = Some(speedup);
            }
            curve.push(CurvePoint {
                m,
                threads,
                wall_secs,
                complete,
                nodes: stats.nodes(),
                units_executed: stats.units_executed(),
                units_stolen: stats.units_stolen(),
                speedup,
            });
        }
    }

    if !smoke && cores >= 8 {
        let speedup = m12_speedup_at_8.expect("full curve covers m=12 at 8 threads");
        assert!(
            speedup >= 3.0,
            "acceptance: 8-thread subtree search must be ≥ 3x sequential \
             on m=12 het with {cores} cores (got {speedup:.2}x)"
        );
    }

    // ---- largest-m probe: exact fronts under the default budget -----
    // Short pipelines (n = 3) are where the processor count, not the
    // stage count, is the wall; seeds 2..4 include instances solvable
    // at m = 14 and instances that exhaust the budget at m = 15.
    let probe_n = 3;
    let (probe_ms, probe_seeds): (&[usize], &[u64]) = if smoke {
        (&[8], &[2])
    } else {
        (&[12, 13, 14, 15], &[2, 3])
    };
    let probe_threads = cores.min(8);

    let mut probe = Vec::new();
    for &m in probe_ms {
        for &seed in probe_seeds {
            let inst = rpwf_gen::make_instance(
                PlatformClass::FullyHeterogeneous,
                FailureClass::Heterogeneous,
                probe_n,
                m,
                seed,
            );
            let budget = Budget::with_deadline(DEFAULT_BUDGET);
            let start = Instant::now();
            let outcome = BranchBoundSweep {
                threads: probe_threads,
                ..BranchBoundSweep::default()
            }
            .front_with_budget(&inst.pipeline, &inst.platform, &budget);
            probe.push(ProbeRow {
                m,
                seed,
                complete: outcome.is_complete(),
                points: outcome.inner().iter().count(),
                wall_secs: start.elapsed().as_secs_f64(),
            });
        }
    }

    let largest_solved = probe
        .iter()
        .filter(|row| row.complete)
        .map(|row| row.m)
        .max()
        .unwrap_or(0);
    if smoke {
        assert!(
            largest_solved >= 8,
            "smoke probe instance must complete within the default budget"
        );
    } else {
        assert!(
            largest_solved >= 14,
            "acceptance: bnb-sweep must prove an exact front for at least \
             one m >= 14 instance inside the default {}s budget \
             (largest solved: m={largest_solved})",
            DEFAULT_BUDGET.as_secs()
        );
    }

    // ---- tables ------------------------------------------------------
    let mut curve_table = Table::new(
        format!(
            "E21 / parallel subtree search — het n={curve_n}, threshold BnB, \
             {}s budget, {cores} core(s) available",
            DEFAULT_BUDGET.as_secs()
        ),
        &[
            "m", "threads", "wall s", "complete", "nodes", "units", "stolen", "speedup",
        ],
    );
    for point in &curve {
        curve_table.row(vec![
            point.m.to_string(),
            point.threads.to_string(),
            format!("{:.3}", point.wall_secs),
            point.complete.to_string(),
            point.nodes.to_string(),
            point.units_executed.to_string(),
            point.units_stolen.to_string(),
            format!("{:.2}x", point.speedup),
        ]);
    }
    curve_table.note(
        "answers byte-identical across thread counts (asserted when both \
         runs complete); speedup bars are hardware-gated — on a single \
         core the cooperative search reports honest <=1x numbers",
    );

    let mut probe_table = Table::new(
        format!(
            "E21 / largest-m probe — bnb-sweep exact fronts, het n={probe_n}, \
             {probe_threads} thread(s), {}s budget",
            DEFAULT_BUDGET.as_secs()
        ),
        &["m", "seed", "complete", "front points", "wall s"],
    );
    for row in &probe {
        probe_table.row(vec![
            row.m.to_string(),
            row.seed.to_string(),
            row.complete.to_string(),
            row.points.to_string(),
            format!("{:.3}", row.wall_secs),
        ]);
    }
    probe_table.note(format!(
        "largest m with a fully proven exact front inside the budget: \
         m={largest_solved}"
    ));

    write_json(&curve, &probe, cores, largest_solved);
    vec![curve_table, probe_table]
}

fn write_json(curve: &[CurvePoint], probe: &[ProbeRow], cores: usize, largest_solved: usize) {
    let doc = serde::Value::Map(vec![
        ("cores".into(), serde::Value::UInt(cores as u64)),
        (
            "speedup_curve".into(),
            serde::Value::Seq(
                curve
                    .iter()
                    .map(|point| {
                        serde::Value::Map(vec![
                            ("m".into(), serde::Value::UInt(point.m as u64)),
                            ("threads".into(), serde::Value::UInt(point.threads as u64)),
                            ("wall_secs".into(), serde::Value::Float(point.wall_secs)),
                            ("complete".into(), serde::Value::Bool(point.complete)),
                            ("nodes".into(), serde::Value::UInt(point.nodes)),
                            (
                                "units_executed".into(),
                                serde::Value::UInt(point.units_executed),
                            ),
                            (
                                "units_stolen".into(),
                                serde::Value::UInt(point.units_stolen),
                            ),
                            ("speedup".into(), serde::Value::Float(point.speedup)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "largest_m_probe".into(),
            serde::Value::Seq(
                probe
                    .iter()
                    .map(|row| {
                        serde::Value::Map(vec![
                            ("m".into(), serde::Value::UInt(row.m as u64)),
                            ("seed".into(), serde::Value::UInt(row.seed)),
                            ("complete".into(), serde::Value::Bool(row.complete)),
                            ("front_points".into(), serde::Value::UInt(row.points as u64)),
                            ("wall_secs".into(), serde::Value::Float(row.wall_secs)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "largest_m_solved".into(),
            serde::Value::UInt(largest_solved as u64),
        ),
    ]);
    let text = serde_json::to_string_pretty(&doc).expect("serializes");
    if let Err(e) = std::fs::write("BENCH_par.json", text) {
        eprintln!("warning: could not write BENCH_par.json: {e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_parallel_search_runs_and_stays_deterministic() {
        let tables = parallel_search(true);
        assert_eq!(tables.len(), 2);
        assert!(!tables[0].rows.is_empty());
        assert!(!tables[1].rows.is_empty());
        let _ = std::fs::remove_file("BENCH_par.json");
    }
}
