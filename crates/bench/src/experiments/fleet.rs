//! E17 — fleet cache partitioning: 3-node consistent-hash ring vs a
//! single node at the same per-node cache budget (writes
//! `BENCH_fleet.json`).
//!
//! The workload is `q` threshold queries per instance over `d` distinct
//! instances, with `d` chosen to **overflow one node's front cache but
//! fit the fleet's aggregate** (`c < d ≤ 3c` entries). This is the
//! scenario ring sharding exists for: scale-out multiplies aggregate
//! cache capacity at fixed per-node memory, because each instance lives
//! on exactly one owner instead of being churned through every node's
//! LRU.
//!
//! * **single** — one server with a `c`-entry cache answers everything:
//!   the working set cycles through the LRU, so warm passes keep
//!   re-solving evicted fronts;
//! * **fleet** — three ring-sharded servers, `c` entries each; a
//!   topology-aware client (same `HashRing` as the servers) sends each
//!   query to its owner, so after one warm pass every query is a cached
//!   front read.
//!
//! The experiment first asserts entry-node transparency — requests
//! entering through the *wrong* fleet node return byte-identical result
//! payloads (forwarded to the owner) — then measures warm aggregate
//! throughput. Acceptance (full mode): fleet ≥ 2× single. Smoke mode
//! (`--smoke`, CI) shrinks everything and asserts the soft form (> 1×).

use crate::table::Table;
use rpwf_algo::Objective;
use rpwf_core::platform::{FailureClass, PlatformClass};
use rpwf_core::ring::HashRing;
use rpwf_server::protocol::{Command, Request, Response};
use rpwf_server::{Server, ServiceConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Instant;

const VNODES: usize = 64;

struct Measurement {
    scenario: String,
    nodes: usize,
    cache_per_node: usize,
    distinct_instances: usize,
    requests: usize,
    wall_secs: f64,
    requests_per_sec: f64,
}

/// Runs E17 and returns the result tables (also writes
/// `BENCH_fleet.json`). `smoke` shrinks the workload to CI size.
///
/// # Panics
/// When the fleet fails the acceptance threshold or answers diverge.
#[must_use]
pub fn fleet(smoke: bool) -> Vec<Table> {
    // d distinct instances vs c cache entries per node: one node
    // thrashes (d > c), the 3-node fleet holds everything (d ≤ 3c).
    let (n, m, distinct, per_instance, cache) = if smoke {
        (3, 5, 6, 2, 2)
    } else {
        // 24 instances overflow one 16-entry node (cyclic LRU: every
        // warm query misses) but fit the fleet with headroom for the
        // ring's vnode imbalance.
        (5, 10, 24, 4, 16)
    };
    let config = |node_id: Option<String>| ServiceConfig {
        workers: 2,
        cache_capacity: cache,
        cache_shards: 1, // exact capacity: the overflow must be real
        seed: 0xCAFE,
        solver_threads: 1,
        node_id,
    };

    let queries = workload(n, m, distinct, per_instance);
    let total = queries.len();

    // Client-side partition of the workload into 3 equal-shaped groups —
    // the SAME concurrent harness drives both scenarios, so the measured
    // difference isolates cache partitioning (not 1-client-vs-3-clients
    // asymmetry). For the fleet the groups are the ring owners' shares;
    // for the single node the same groups all dial the one server.
    let run_pass = |targets: &[(&str, &[&String])]| -> Vec<String> {
        std::thread::scope(|scope| {
            let handles: Vec<_> = targets
                .iter()
                .map(|&(addr, group)| {
                    scope.spawn(move || {
                        let mut client = Client::connect(addr);
                        group.iter().map(|q| client.call(q)).collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("client thread"))
                .collect()
        })
    };

    // -- Single node -------------------------------------------------------
    let single = Server::bind("127.0.0.1:0", config(None)).expect("bind single node");
    let single_addr = single.local_addr().to_string();
    let mut client = Client::connect(&single_addr);
    let reference: Vec<String> = queries.iter().map(|q| client.call(q)).collect();
    drop(client);

    // -- 3-node fleet ------------------------------------------------------
    let addrs = reserve_addrs(3);
    let servers: Vec<Server> = addrs
        .iter()
        .map(|addr| {
            let peers: Vec<String> = addrs.iter().filter(|a| *a != addr).cloned().collect();
            // replicas: 1 — E17 isolates cache *partitioning*; replicated
            // ownership (which spends aggregate capacity on copies) is
            // E20's subject.
            let options = rpwf_server::RingOptions {
                vnodes: Some(VNODES),
                replicas: 1,
                ..rpwf_server::RingOptions::default()
            };
            Server::bind_ring(addr, config(Some(addr.clone())), &peers, options)
                .expect("bind fleet node")
        })
        .collect();
    let ring = HashRing::new(addrs.clone(), VNODES);

    // Entry-node transparency: a few queries through the WRONG node must
    // return the single-node payloads (forwarded to the owner).
    {
        let probe = queries.len().min(6);
        for (i, query) in queries.iter().take(probe).enumerate() {
            let request: Request = serde_json::from_str(query).expect("workload parses");
            let key = request.cmd.route_key().expect("solve routes");
            let owner = ring.owner(key).expect("non-empty ring");
            let wrong = addrs.iter().find(|a| a.as_str() != owner).expect("3 nodes");
            let mut client = Client::connect(wrong);
            assert_eq!(
                result_payload(&client.call(query)),
                result_payload(&reference[i]),
                "query {i}: wrong-entry answer must be byte-identical to a single node"
            );
        }
    }

    // Topology-aware warm + measure: one client per node, each sending
    // the queries that node owns (the router answers them locally).
    let by_owner: Vec<Vec<&String>> = {
        let mut groups: Vec<Vec<&String>> = vec![Vec::new(); addrs.len()];
        for query in &queries {
            let request: Request = serde_json::from_str(query).expect("workload parses");
            let key = request.cmd.route_key().expect("solve routes");
            let owner = ring.owner(key).expect("non-empty ring");
            let idx = addrs.iter().position(|a| a == owner).expect("member");
            groups[idx].push(query);
        }
        groups
    };
    // Measured passes: identical 3-client harness against each scenario.
    let single_targets: Vec<(&str, &[&String])> = by_owner
        .iter()
        .map(|group| (single_addr.as_str(), group.as_slice()))
        .collect();
    let fleet_targets: Vec<(&str, &[&String])> = addrs
        .iter()
        .zip(&by_owner)
        .map(|(addr, group)| (addr.as_str(), group.as_slice()))
        .collect();

    let start = Instant::now();
    let single_warm = run_pass(&single_targets);
    let single_secs = start.elapsed().as_secs_f64();
    drop(single);

    let _warm = run_pass(&fleet_targets);
    let start = Instant::now();
    let fleet_warm = run_pass(&fleet_targets);
    let fleet_secs = start.elapsed().as_secs_f64();
    drop(servers);

    // Same answers, warm or cold, fleet or single.
    let mut expected: Vec<String> = reference.iter().map(|r| result_payload(r)).collect();
    expected.sort_unstable();
    let mut single_sorted: Vec<String> = single_warm.iter().map(|r| result_payload(r)).collect();
    single_sorted.sort_unstable();
    assert_eq!(expected, single_sorted, "single-node warm answers diverged");
    let mut fleet_sorted: Vec<String> = fleet_warm.iter().map(|r| result_payload(r)).collect();
    fleet_sorted.sort_unstable();
    assert_eq!(
        expected, fleet_sorted,
        "fleet answers must be byte-identical to the single node's"
    );

    let speedup = single_secs / fleet_secs.max(1e-9);
    if smoke {
        assert!(
            speedup > 1.0,
            "fleet must beat the thrashing single node even at smoke size \
             (got {speedup:.2}x)"
        );
    } else {
        assert!(
            speedup >= 2.0,
            "acceptance: 3-node warm-cache fleet must deliver ≥ 2x aggregate \
             throughput over one node at the same per-node cache (got {speedup:.2}x)"
        );
    }

    let measurements = [
        Measurement {
            scenario: "single".into(),
            nodes: 1,
            cache_per_node: cache,
            distinct_instances: distinct,
            requests: total,
            wall_secs: single_secs,
            requests_per_sec: total as f64 / single_secs.max(1e-9),
        },
        Measurement {
            scenario: "fleet-3".into(),
            nodes: 3,
            cache_per_node: cache,
            distinct_instances: distinct,
            requests: total,
            wall_secs: fleet_secs,
            requests_per_sec: total as f64 / fleet_secs.max(1e-9),
        },
    ];

    let mut table = Table::new(
        format!(
            "E17 / fleet cache partitioning — {total} warm queries over \
             {distinct} instances, {cache}-entry cache per node \
             (comm-homog n={n}, m={m})"
        ),
        &[
            "scenario",
            "nodes",
            "cache/node",
            "instances",
            "requests",
            "wall s",
            "req/s",
            "speedup",
        ],
    );
    for meas in &measurements {
        table.row(vec![
            meas.scenario.clone(),
            meas.nodes.to_string(),
            meas.cache_per_node.to_string(),
            meas.distinct_instances.to_string(),
            meas.requests.to_string(),
            format!("{:.3}", meas.wall_secs),
            format!("{:.0}", meas.requests_per_sec),
            if meas.scenario == "single" {
                "1.00x".into()
            } else {
                format!("{speedup:.2}x")
            },
        ]);
    }
    table.note(
        "the working set overflows one node's cache but fits the fleet's \
         aggregate: ring sharding turns every warm query into an owner-local \
         front read while the single node keeps re-solving evicted fronts; \
         both scenarios are driven by the identical 3-client harness",
    );
    table.note(
        "entry-node transparency asserted: queries through a non-owning node \
         forward to the owner and return byte-identical payloads",
    );

    write_json(&measurements, speedup);
    vec![table]
}

/// One persistent JSON-lines connection.
struct Client {
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        Client {
            reader: BufReader::new(stream),
        }
    }

    /// Sends one request and returns its final response line.
    fn call(&mut self, line: &str) -> String {
        let stream = self.reader.get_mut();
        stream.write_all(line.as_bytes()).expect("send");
        stream.write_all(b"\n").expect("send");
        stream.flush().expect("flush");
        loop {
            let mut buf = String::new();
            self.reader.read_line(&mut buf).expect("response line");
            let response = buf.trim_end().to_string();
            let parsed: Response = serde_json::from_str(&response).expect("parses");
            if parsed.status != "part" {
                return response;
            }
        }
    }
}

fn result_payload(line: &str) -> String {
    let parsed: Response = serde_json::from_str(line).expect("response parses");
    assert_eq!(parsed.status, "ok", "{:?}", parsed.error);
    serde_json::to_string(&parsed.result).expect("serializes")
}

fn reserve_addrs(n: usize) -> Vec<String> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("reserve port"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("addr").to_string())
        .collect()
}

/// `per_instance` feasible threshold queries per instance, interleaved
/// across instances so consecutive queries never share an instance — the
/// cyclic access pattern that defeats a too-small LRU.
fn workload(n: usize, m: usize, distinct: usize, per_instance: usize) -> Vec<String> {
    let mut per_instance_lines: Vec<Vec<String>> = Vec::with_capacity(distinct);
    for seed in 0..distinct {
        let inst = rpwf_gen::make_instance(
            PlatformClass::CommHomogeneous,
            FailureClass::Heterogeneous,
            n,
            m,
            seed as u64,
        );
        let safest = rpwf_algo::mono::minimize_failure(&inst.pipeline, &inst.platform);
        let mut lines = Vec::with_capacity(per_instance);
        for q in 0..per_instance {
            let t = (q + 1) as f64 / per_instance as f64;
            let objective = if q % 2 == 0 {
                Objective::MinFpUnderLatency(safest.latency * (1.0 + t))
            } else {
                Objective::MinLatencyUnderFp(safest.failure_prob + (1.0 - safest.failure_prob) * t)
            };
            let request = Request {
                id: Some((seed * per_instance + q) as u64),
                deadline_ms: None,
                no_cache: None,
                trace: None,
                trace_ctx: None,
                explain: None,
                hop: None,
                cmd: Command::Solve {
                    pipeline: inst.pipeline.clone(),
                    platform: inst.platform.clone(),
                    objective,
                },
            };
            lines.push(serde_json::to_string(&request).expect("serializes"));
        }
        per_instance_lines.push(lines);
    }
    let mut out = Vec::with_capacity(distinct * per_instance);
    for q in 0..per_instance {
        for lines in &per_instance_lines {
            out.push(lines[q].clone());
        }
    }
    out
}

fn write_json(measurements: &[Measurement], speedup: f64) {
    let doc = serde::Value::Map(vec![
        (
            "scenarios".into(),
            serde::Value::Seq(
                measurements
                    .iter()
                    .map(|meas| {
                        serde::Value::Map(vec![
                            ("scenario".into(), serde::Value::Str(meas.scenario.clone())),
                            ("nodes".into(), serde::Value::UInt(meas.nodes as u64)),
                            (
                                "cache_per_node".into(),
                                serde::Value::UInt(meas.cache_per_node as u64),
                            ),
                            (
                                "distinct_instances".into(),
                                serde::Value::UInt(meas.distinct_instances as u64),
                            ),
                            ("requests".into(), serde::Value::UInt(meas.requests as u64)),
                            ("wall_secs".into(), serde::Value::Float(meas.wall_secs)),
                            (
                                "requests_per_sec".into(),
                                serde::Value::Float(meas.requests_per_sec),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("fleet_speedup".into(), serde::Value::Float(speedup)),
    ]);
    let text = serde_json::to_string_pretty(&doc).expect("serializes");
    if let Err(e) = std::fs::write("BENCH_fleet.json", text) {
        eprintln!("warning: could not write BENCH_fleet.json: {e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_fleet_partitioning_runs() {
        let tables = fleet(true);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].rows.len(), 2);
        let _ = std::fs::remove_file("BENCH_fleet.json");
    }
}
