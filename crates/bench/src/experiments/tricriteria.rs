//! E13 — the paper's §5 future-work direction: latency × reliability ×
//! throughput on the JPEG encoder pipeline.

use crate::table::{fnum, Table};
use rpwf_algo::exact::pareto_front_comm_homog;
use rpwf_core::prelude::*;

/// The exact latency×FP front of the JPEG workload annotated with the
/// steady-state period: the third criterion exposes which reliability
/// points are also throughput-friendly.
#[must_use]
pub fn tricriteria() -> Vec<Table> {
    let pipeline = rpwf_gen::jpeg_encoder();
    let speeds = vec![2.0, 2.0, 2.0, 8.0, 8.0, 8.0, 8.0, 4.0];
    let fps = vec![0.05, 0.05, 0.05, 0.45, 0.45, 0.45, 0.45, 0.15];
    let platform = Platform::comm_homogeneous(speeds, 64.0, fps).expect("valid");

    let mut t = Table::new(
        "E13 — tri-criteria view of the JPEG encoder on a two-tier cluster",
        &[
            "latency",
            "FP",
            "period",
            "throughput",
            "intervals",
            "replicas",
            "mapping",
        ],
    );
    let front = pareto_front_comm_homog(&pipeline, &platform).expect("comm-homog");
    for pt in front.iter() {
        let per = period(&pt.payload, &pipeline, &platform).expect("comm-homog");
        t.row(vec![
            fnum(pt.latency),
            fnum(pt.failure_prob),
            fnum(per),
            fnum(1.0 / per),
            pt.payload.n_intervals().to_string(),
            pt.payload.total_replicas().to_string(),
            pt.payload.to_string(),
        ]);
    }
    t.note("period per §5 / companion work: conservative one-port cycle; replication trades all three criteria");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn front_is_nontrivial_and_periods_positive() {
        let t = &tricriteria()[0];
        assert!(
            t.rows.len() >= 3,
            "front should have several trade-off points"
        );
        for row in &t.rows {
            let period: f64 = row[2].parse().unwrap();
            let latency: f64 = row[0].parse().unwrap();
            assert!(period > 0.0);
            assert!(period <= latency + 1e-9, "period must lower-bound latency");
        }
    }
}
