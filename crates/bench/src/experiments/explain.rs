//! E23 — the cost of an explanation: cold and warm `explain` next to
//! the cold solve it explains (writes `BENCH_explain.json`).
//!
//! One server answers the same *infeasible* threshold query three ways:
//!
//! * **cold-solve** — uncached `solve`: the full exact front
//!   computation that ends in a structured `infeasible` error. This is
//!   the price the client already paid to learn the bad news.
//! * **cold-explain** — uncached `explain`: MARCO enumerates the
//!   MUS/MCS lattice with every oracle front solved from scratch. The
//!   worst case for an explanation.
//! * **warm-explain** — cached `explain` after one warming call: every
//!   oracle front comes out of the front cache, so the explanation
//!   costs threshold reads and set arithmetic, not solves.
//!
//! Measured per mode: p50/p99 client-observed latency. From the
//! server's `rpwf_explain_*` metrics: mean oracle front-solves per
//! explanation — MARCO's entire point is that this stays strictly
//! below the 2⁴ = 16 subsets of the constraint universe (structurally
//! ≤ 8: bound-free subsets are decided without an oracle and fronts
//! are memoized per relaxation variant).
//!
//! Acceptance: every explanation is infeasible/proven with at least one
//! MUS; mean oracle calls per explanation < 16 (always); warm-explain
//! p50 ≤ 10% of cold-solve p50 (full mode — the timing bar is retried,
//! not dropped, in the CI smoke test). Smoke mode (`--smoke`) shrinks
//! the workload.

use crate::table::Table;
use rpwf_algo::Objective;
use rpwf_core::platform::{FailureClass, PlatformClass};
use rpwf_server::protocol::{Command, ExplainResult, Request, Response};
use rpwf_server::{Server, ServiceConfig, ServingOptions};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Instant;

struct Mode {
    name: String,
    requests: usize,
    p50_ms: f64,
    p99_ms: f64,
}

/// Runs E23 and returns the result tables (also writes
/// `BENCH_explain.json`). `smoke` shrinks the workload to CI size.
///
/// # Panics
/// When a solve fails to report `infeasible` with its violated bound,
/// an explanation comes back feasible / unproven / conflict-free, the
/// mean oracle effort reaches the 16-subset powerset, or (full mode)
/// warm explanations cost more than 10% of the cold solve.
#[must_use]
pub fn explain(smoke: bool) -> Vec<Table> {
    let (n, m, iters) = if smoke { (3, 4, 8) } else { (4, 6, 30) };

    let mut server = Server::bind_tuned(
        "127.0.0.1:0",
        ServiceConfig {
            workers: 2,
            cache_capacity: 256,
            cache_shards: 4,
            seed: 0xE23,
            solver_threads: 1,
            node_id: None,
        },
        ServingOptions::default(),
    )
    .expect("bind explain server");
    let addr = server.local_addr().to_string();
    let stream = TcpStream::connect(&addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;

    // An infeasible threshold query: a latency bound at 1% of the
    // safest mapping's latency sits below everything achievable.
    let inst = rpwf_gen::make_instance(
        PlatformClass::CommHomogeneous,
        FailureClass::Heterogeneous,
        n,
        m,
        7,
    );
    let safest = rpwf_algo::mono::minimize_failure(&inst.pipeline, &inst.platform);
    let objective = Objective::MinFpUnderLatency(safest.latency * 0.01);
    let solve_cmd = Command::Solve {
        pipeline: inst.pipeline.clone(),
        platform: inst.platform.clone(),
        objective,
    };
    let explain_cmd = Command::Explain {
        pipeline: inst.pipeline.clone(),
        platform: inst.platform.clone(),
        objective,
    };

    let cold_solve = run_mode(
        "cold-solve",
        iters,
        &mut reader,
        &mut writer,
        &solve_cmd,
        true,
        check_infeasible_solve,
    );
    let cold_explain = run_mode(
        "cold-explain",
        iters,
        &mut reader,
        &mut writer,
        &explain_cmd,
        true,
        check_explanation,
    );
    // One cached call warms every relaxation variant's front, then the
    // timed passes read them back.
    let _ = roundtrip(&mut reader, &mut writer, 0, &explain_cmd, false);
    let warm_explain = run_mode(
        "warm-explain",
        iters,
        &mut reader,
        &mut writer,
        &explain_cmd,
        false,
        check_explanation,
    );

    let (calls, oracle_calls, oracle_cached) = scrape_metrics(&mut reader, &mut writer);
    server.shutdown();
    assert!(calls > 0, "the metrics must have counted the explanations");
    let mean_oracle_calls = oracle_calls as f64 / calls as f64;
    assert!(
        mean_oracle_calls < 16.0,
        "MARCO must beat the 2^4 powerset of the constraint universe \
         (mean {mean_oracle_calls:.2} oracle calls per explanation)"
    );
    if !smoke {
        assert!(
            warm_explain.p50_ms <= 0.10 * cold_solve.p50_ms.max(1e-3),
            "acceptance: a cache-warm explanation must cost at most 10% of \
             the cold solve it explains (warm p50 {:.3} ms vs cold solve \
             p50 {:.3} ms)",
            warm_explain.p50_ms,
            cold_solve.p50_ms
        );
    }

    let modes = [cold_solve, cold_explain, warm_explain];
    let mut table = Table::new(
        format!(
            "E23 / cost of an explanation — infeasible threshold query \
             (comm-homog n={n}, m={m}), {iters} requests per mode, \
             mean {mean_oracle_calls:.2} oracle front-solves per \
             explanation ({oracle_cached} of {oracle_calls} from cache)"
        ),
        &["mode", "requests", "p50 ms", "p99 ms", "vs cold-solve p50"],
    );
    let base_p50 = modes[0].p50_ms.max(1e-9);
    for meas in &modes {
        table.row(vec![
            meas.name.clone(),
            meas.requests.to_string(),
            format!("{:.3}", meas.p50_ms),
            format!("{:.3}", meas.p99_ms),
            format!("{:.1}%", 100.0 * meas.p50_ms / base_p50),
        ]);
    }
    table.note(
        "an explanation is not a luxury good: MARCO decides the whole \
         constraint lattice in well under the 16-subset powerset of \
         oracle calls, and once the front cache is warm an explanation \
         costs a small fraction of the solve that discovered the \
         infeasibility in the first place",
    );

    write_json(&modes, calls, oracle_calls, oracle_cached);
    vec![table]
}

type Check = fn(&Response);

/// One measurement pass: `iters` sequential requests of one command,
/// each latency-stamped, checked, and folded into p50/p99.
fn run_mode(
    name: &str,
    iters: usize,
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    cmd: &Command,
    no_cache: bool,
    check: Check,
) -> Mode {
    let mut samples_ms = Vec::with_capacity(iters);
    for i in 0..iters {
        let began = Instant::now();
        let parsed = roundtrip(reader, writer, i as u64, cmd, no_cache);
        samples_ms.push(began.elapsed().as_secs_f64() * 1e3);
        check(&parsed);
    }
    samples_ms.sort_unstable_by(f64::total_cmp);
    Mode {
        name: name.to_string(),
        requests: iters,
        p50_ms: percentile(&samples_ms, 50.0),
        p99_ms: percentile(&samples_ms, 99.0),
    }
}

/// Sends one request and reads back its response line.
fn roundtrip(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    id: u64,
    cmd: &Command,
    no_cache: bool,
) -> Response {
    let request = Request {
        id: Some(id),
        deadline_ms: Some(30_000),
        no_cache: no_cache.then_some(true),
        hop: None,
        trace: None,
        trace_ctx: None,
        explain: None,
        cmd: cmd.clone(),
    };
    writeln!(
        writer,
        "{}",
        serde_json::to_string(&request).expect("serializes")
    )
    .expect("send");
    writer.flush().expect("flush");
    let mut buf = String::new();
    reader.read_line(&mut buf).expect("response line");
    serde_json::from_str(buf.trim_end()).expect("response parses")
}

/// A solve of the doomed query must come back as a structured
/// `infeasible` error echoing the violated latency bound.
fn check_infeasible_solve(parsed: &Response) {
    assert_eq!(parsed.status, "error", "the query is infeasible by design");
    let error = parsed.error.as_ref().expect("error payload");
    assert_eq!(error.kind, "infeasible");
    let bound = error.bound.as_ref().expect("structured violated bound");
    assert_eq!(bound.axis, "latency");
}

/// An explanation of the doomed query must be a proven infeasibility
/// with at least one conflict and one fix.
fn check_explanation(parsed: &Response) {
    assert_eq!(parsed.status, "ok", "explain answers, it does not error");
    let payload = parsed.result.as_ref().expect("result payload");
    let text = serde_json::to_string(payload).expect("serializes");
    let result: ExplainResult = serde_json::from_str(&text).expect("explain payload parses");
    assert!(!result.feasible, "the query is infeasible by design");
    assert!(result.proven, "exact fronts on this size ⇒ proven verdicts");
    assert!(
        !result.muses.is_empty(),
        "infeasible ⇒ at least one conflict"
    );
    assert!(!result.mcses.is_empty(), "infeasible ⇒ at least one fix");
}

/// Reads `(calls, oracle_calls, oracle_cached)` from the server's
/// `rpwf_explain_*` metrics.
fn scrape_metrics(reader: &mut BufReader<TcpStream>, writer: &mut TcpStream) -> (u64, u64, u64) {
    let parsed = roundtrip(reader, writer, 9_999, &Command::Metrics, false);
    let serde::Value::Str(dump) = parsed.result.expect("metrics payload") else {
        panic!("metrics payload is a text dump");
    };
    let read = |metric: &str| {
        dump.lines()
            .find_map(|line| line.strip_prefix(metric))
            .and_then(|rest| rest.trim().parse::<u64>().ok())
            .unwrap_or_else(|| panic!("metric {metric} missing from dump"))
    };
    (
        read("rpwf_explain_calls_total "),
        read("rpwf_explain_oracle_calls_total "),
        read("rpwf_explain_oracle_cached_total "),
    )
}

/// Nearest-rank percentile over an ascending-sorted sample.
fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted_ms.len() as f64).ceil() as usize;
    sorted_ms[rank.saturating_sub(1).min(sorted_ms.len() - 1)]
}

fn write_json(modes: &[Mode], calls: u64, oracle_calls: u64, oracle_cached: u64) {
    let doc = serde::Value::Map(vec![
        (
            "modes".into(),
            serde::Value::Seq(
                modes
                    .iter()
                    .map(|meas| {
                        serde::Value::Map(vec![
                            ("mode".into(), serde::Value::Str(meas.name.clone())),
                            ("requests".into(), serde::Value::UInt(meas.requests as u64)),
                            ("p50_ms".into(), serde::Value::Float(meas.p50_ms)),
                            ("p99_ms".into(), serde::Value::Float(meas.p99_ms)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "warm_explain_p50_over_cold_solve_p50".into(),
            serde::Value::Float(modes[2].p50_ms / modes[0].p50_ms.max(1e-9)),
        ),
        ("explain_calls".into(), serde::Value::UInt(calls)),
        ("oracle_calls".into(), serde::Value::UInt(oracle_calls)),
        ("oracle_cached".into(), serde::Value::UInt(oracle_cached)),
        (
            "mean_oracle_calls_per_explanation".into(),
            serde::Value::Float(oracle_calls as f64 / calls.max(1) as f64),
        ),
    ]);
    let text = serde_json::to_string_pretty(&doc).expect("serializes");
    if let Err(e) = std::fs::write("BENCH_explain.json", text) {
        eprintln!("warning: could not write BENCH_explain.json: {e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_explain_runs() {
        // Serialized with the timing-sensitive tests, and the timing bar
        // is retried: a violation must survive three attempts before it
        // counts as a regression.
        let _timing = crate::experiments::TIMING_TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        crate::experiments::retry_timing_bars(|| {
            let tables = explain(true);
            assert_eq!(tables.len(), 1);
            assert_eq!(tables[0].rows.len(), 3);
            let cold_solve_p50: f64 = tables[0].rows[0][2].parse().expect("cold solve p50");
            let warm_p50: f64 = tables[0].rows[2][2].parse().expect("warm explain p50");
            if warm_p50 > 0.10 * cold_solve_p50.max(1e-3) {
                return Some(format!(
                    "a cache-warm explanation must cost at most 10% of the \
                     cold solve (warm p50 {warm_p50:.3} ms vs cold solve \
                     p50 {cold_solve_p50:.3} ms)"
                ));
            }
            None
        });
        let _ = std::fs::remove_file("BENCH_explain.json");
    }
}
