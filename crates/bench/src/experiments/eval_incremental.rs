//! E15 — incremental vs full neighbor evaluation (writes
//! `BENCH_eval.json`).
//!
//! Two measurements per instance class:
//!
//! * **steps/sec** — raw neighbor-evaluation throughput: the full path
//!   materializes every neighbor (`neighbors()` + `BiSolution::evaluate`)
//!   exactly like the pre-incremental heuristics did; the incremental
//!   path streams `Move`s through a `DeltaEval` (apply → score → revert).
//! * **end-to-end** — wall time of `LocalSearch::solve` and
//!   `Annealing::solve` (now running on the incremental engine) against
//!   frozen copies of their pre-incremental implementations, asserting
//!   the final `(latency, FP)` answers are **identical** — the engine is
//!   a pure speedup, not a behavior change.
//!
//! Smoke mode (`--smoke`, used in CI) runs tiny instances in milliseconds
//! so the harness cannot rot; full mode covers the paper's platform
//! classes up to the acceptance target n=50, m=20 fully heterogeneous.

use crate::table::Table;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rpwf_algo::heuristics::neighborhood::{neighbors, random_mapping, random_neighbor, MoveStream};
use rpwf_algo::heuristics::{Annealing, LocalSearch};
use rpwf_algo::{BiSolution, Objective};
use rpwf_core::eval::{DeltaEval, EvalContext};
use rpwf_core::mapping::IntervalMapping;
use rpwf_core::platform::{FailureClass, Platform, PlatformClass};
use rpwf_core::stage::Pipeline;
use std::hint::black_box;
use std::time::{Duration, Instant};

struct Scenario {
    name: &'static str,
    class: PlatformClass,
    n: usize,
    m: usize,
}

struct Measurement {
    name: String,
    n: usize,
    m: usize,
    full_steps_per_sec: f64,
    incr_steps_per_sec: f64,
    speedup: f64,
    ls_legacy_ms: f64,
    ls_dlb_ms: f64,
    ls_incr_ms: f64,
    sa_legacy_ms: f64,
    sa_incr_ms: f64,
    results_match: bool,
}

/// Runs E15 and returns the result tables (also writes
/// `BENCH_eval.json` to the working directory). `smoke` shrinks the
/// instances and measurement windows to CI size.
#[must_use]
pub fn eval_incremental(smoke: bool) -> Vec<Table> {
    let scenarios: &[Scenario] = if smoke {
        &[
            Scenario {
                name: "smoke-ch-n6-m4",
                class: PlatformClass::CommHomogeneous,
                n: 6,
                m: 4,
            },
            Scenario {
                name: "smoke-het-n8-m5",
                class: PlatformClass::FullyHeterogeneous,
                n: 8,
                m: 5,
            },
        ]
    } else {
        &[
            Scenario {
                name: "ch-n20-m10",
                class: PlatformClass::CommHomogeneous,
                n: 20,
                m: 10,
            },
            Scenario {
                name: "het-n30-m12",
                class: PlatformClass::FullyHeterogeneous,
                n: 30,
                m: 12,
            },
            Scenario {
                name: "het-n50-m20",
                class: PlatformClass::FullyHeterogeneous,
                n: 50,
                m: 20,
            },
        ]
    };

    let window = if smoke {
        Duration::from_millis(20)
    } else {
        Duration::from_millis(300)
    };

    let mut measurements = Vec::new();
    for sc in scenarios {
        measurements.push(run_scenario(sc, window, smoke));
    }

    let mut table = Table::new(
        "E15 / incremental evaluation — full vs delta neighbor scoring",
        &[
            "scenario",
            "n",
            "m",
            "full steps/s",
            "incr steps/s",
            "speedup",
            "LS full ms",
            "LS dlb ms",
            "LS incr ms",
            "SA full ms",
            "SA incr ms",
            "same results",
        ],
    );
    for m in &measurements {
        table.row(vec![
            m.name.clone(),
            m.n.to_string(),
            m.m.to_string(),
            format!("{:.0}", m.full_steps_per_sec),
            format!("{:.0}", m.incr_steps_per_sec),
            format!("{:.1}x", m.speedup),
            format!("{:.1}", m.ls_legacy_ms),
            format!("{:.1}", m.ls_dlb_ms),
            format!("{:.1}", m.ls_incr_ms),
            format!("{:.1}", m.sa_legacy_ms),
            format!("{:.1}", m.sa_incr_ms),
            m.results_match.to_string(),
        ]);
    }
    table.note(
        "steps/s = neighbor evaluations per second; full materializes every \
         neighbor and re-evaluates both objectives from scratch, incr \
         delta-scores moves in place (bit-identical values)",
    );
    table.note(
        "LS/SA columns: end-to-end solve wall time of the frozen full-eval \
         implementations vs the shipped incremental ones; 'same results' \
         asserts identical final (latency, FP) on every scenario",
    );
    table.note(
        "LS dlb ms = opt-in candidate-list (don't-look bits) scan; LS incr \
         ms = shipped full incremental scan. The run asserts both produce \
         bit-identical seeded answers; with few intervals per mapping the \
         dirty window covers most of the neighborhood, so the bits only \
         pay off on interval-heavy workloads",
    );

    write_json(&measurements);
    vec![table]
}

fn run_scenario(sc: &Scenario, window: Duration, smoke: bool) -> Measurement {
    let inst = rpwf_gen::make_instance(sc.class, FailureClass::Heterogeneous, sc.n, sc.m, 1);
    let (pipeline, platform) = (&inst.pipeline, &inst.platform);
    let mut rng = StdRng::seed_from_u64(42);
    let mapping = random_mapping(sc.n, sc.m, &mut rng);

    // -- Raw neighbor-evaluation throughput -------------------------------
    let full_steps_per_sec = {
        let start = Instant::now();
        let mut steps = 0u64;
        loop {
            for nb in neighbors(&mapping, sc.m) {
                black_box(BiSolution::evaluate(nb, pipeline, platform).latency);
                steps += 1;
            }
            if start.elapsed() >= window {
                break;
            }
        }
        steps as f64 / start.elapsed().as_secs_f64()
    };
    let incr_steps_per_sec = {
        let ctx = EvalContext::new(pipeline, platform);
        let mut de = DeltaEval::new(&ctx, &mapping);
        let start = Instant::now();
        let mut steps = 0u64;
        loop {
            let mut stream = MoveStream::new();
            while let Some(mv) = stream.next(&de) {
                black_box(de.apply(mv).latency);
                de.revert();
                steps += 1;
            }
            if start.elapsed() >= window {
                break;
            }
        }
        steps as f64 / start.elapsed().as_secs_f64()
    };

    // -- End-to-end heuristic wall time, legacy vs incremental ------------
    let objective = Objective::MinLatencyUnderFp(0.5);
    let ls = if smoke {
        LocalSearch {
            random_restarts: 2,
            max_steps: 30,
            ..LocalSearch::default()
        }
    } else {
        LocalSearch {
            random_restarts: 4,
            max_steps: 100,
            ..LocalSearch::default()
        }
    };
    let sa = if smoke {
        Annealing {
            epochs: 10,
            moves_per_epoch: 20,
            ..Annealing::default()
        }
    } else {
        Annealing::default()
    };

    let t = Instant::now();
    let ls_legacy = legacy_local_search(&ls, pipeline, platform, objective);
    let ls_legacy_ms = t.elapsed().as_secs_f64() * 1e3;
    // Opt-in candidate list (don't-look bits): must reproduce the
    // shipped full scan to the bit, whatever its wall time does.
    let dlb = LocalSearch {
        candidate_list: true,
        ..ls
    };
    let t = Instant::now();
    let ls_dlb = dlb.solve(pipeline, platform, objective);
    let ls_dlb_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    let ls_incr = ls.solve(pipeline, platform, objective);
    let ls_incr_ms = t.elapsed().as_secs_f64() * 1e3;
    assert!(
        same_answer(&ls_dlb, &ls_incr),
        "{}: don't-look bits changed the local-search answer ({:?} vs {:?})",
        sc.name,
        ls_dlb.as_ref().map(|s| (s.latency, s.failure_prob)),
        ls_incr.as_ref().map(|s| (s.latency, s.failure_prob)),
    );

    let t = Instant::now();
    let sa_legacy = legacy_annealing(&sa, pipeline, platform, objective);
    let sa_legacy_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    let sa_incr = sa.solve(pipeline, platform, objective);
    let sa_incr_ms = t.elapsed().as_secs_f64() * 1e3;

    let results_match = same_answer(&ls_legacy, &ls_incr) && same_answer(&sa_legacy, &sa_incr);
    assert!(
        results_match,
        "{}: incremental heuristics must reproduce the legacy answers \
         (LS {:?} vs {:?}; SA {:?} vs {:?})",
        sc.name,
        ls_legacy.as_ref().map(|s| (s.latency, s.failure_prob)),
        ls_incr.as_ref().map(|s| (s.latency, s.failure_prob)),
        sa_legacy.as_ref().map(|s| (s.latency, s.failure_prob)),
        sa_incr.as_ref().map(|s| (s.latency, s.failure_prob)),
    );

    Measurement {
        name: sc.name.to_string(),
        n: sc.n,
        m: sc.m,
        full_steps_per_sec,
        incr_steps_per_sec,
        speedup: incr_steps_per_sec / full_steps_per_sec.max(1e-9),
        ls_legacy_ms,
        ls_dlb_ms,
        ls_incr_ms,
        sa_legacy_ms,
        sa_incr_ms,
        results_match,
    }
}

fn same_answer(a: &Option<BiSolution>, b: &Option<BiSolution>) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(a), Some(b)) => {
            a.mapping == b.mapping
                && a.latency.to_bits() == b.latency.to_bits()
                && a.failure_prob.to_bits() == b.failure_prob.to_bits()
        }
        _ => false,
    }
}

/// Frozen copy of the pre-incremental `LocalSearch::solve`: materializes
/// every neighbor and fully re-evaluates it. Baseline only — do not use
/// outside this experiment.
fn legacy_local_search(
    cfg: &LocalSearch,
    pipeline: &Pipeline,
    platform: &Platform,
    objective: Objective,
) -> Option<BiSolution> {
    let n = pipeline.n_stages();
    let m = platform.n_procs();
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let mut starts: Vec<IntervalMapping> = Vec::new();
    starts.push(
        IntervalMapping::single_interval(n, platform.procs().collect(), m).expect("valid start"),
    );
    starts.push(
        IntervalMapping::single_interval(n, vec![platform.fastest_proc()], m).expect("valid start"),
    );
    let half = m.div_ceil(2);
    starts.push(
        IntervalMapping::single_interval(
            n,
            platform.procs_by_reliability_desc()[..half].to_vec(),
            m,
        )
        .expect("valid start"),
    );
    for _ in 0..cfg.random_restarts {
        starts.push(random_mapping(n, m, &mut rng));
    }

    let mut best: Option<BiSolution> = None;
    for start in starts {
        let mut current = BiSolution::evaluate(start, pipeline, platform);
        for _ in 0..cfg.max_steps {
            let mut improved = false;
            for nb in neighbors(&current.mapping, m) {
                let cand = BiSolution::evaluate(nb, pipeline, platform);
                if objective.better(&cand, &current) {
                    current = cand;
                    improved = true;
                }
            }
            if !improved {
                break;
            }
        }
        if objective.feasible(current.latency, current.failure_prob)
            && best.as_ref().is_none_or(|b| objective.better(&current, b))
        {
            best = Some(current);
        }
    }
    best
}

/// Frozen copy of the pre-incremental `Annealing::solve`. Baseline only.
fn legacy_annealing(
    cfg: &Annealing,
    pipeline: &Pipeline,
    platform: &Platform,
    objective: Objective,
) -> Option<BiSolution> {
    fn energy(objective: Objective, sol: &BiSolution, ref_latency: f64, penalty: f64) -> f64 {
        match objective {
            Objective::MinFpUnderLatency(l) => {
                let violation = ((sol.latency - l) / l.max(1e-12)).max(0.0);
                sol.failure_prob + penalty * violation
            }
            Objective::MinLatencyUnderFp(f) => {
                let violation = ((sol.failure_prob - f) / f.max(1e-12)).max(0.0);
                sol.latency / ref_latency.max(1e-12) + penalty * violation
            }
        }
    }

    let n = pipeline.n_stages();
    let m = platform.n_procs();
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let start = random_mapping(n, m, &mut rng);
    let mut current = BiSolution::evaluate(start, pipeline, platform);
    let ref_latency = current.latency.max(1e-12);
    let mut current_energy = energy(objective, &current, ref_latency, cfg.penalty);

    let mut best: Option<BiSolution> = None;
    let consider_best = |sol: &BiSolution, best: &mut Option<BiSolution>| {
        if objective.feasible(sol.latency, sol.failure_prob)
            && best.as_ref().is_none_or(|b| objective.better(sol, b))
        {
            *best = Some(sol.clone());
        }
    };
    consider_best(&current, &mut best);

    let mut temperature = cfg.t0;
    for _ in 0..cfg.epochs {
        for _ in 0..cfg.moves_per_epoch {
            let Some(nb) = random_neighbor(&current.mapping, m, &mut rng) else {
                break;
            };
            let cand = BiSolution::evaluate(nb, pipeline, platform);
            let cand_energy = energy(objective, &cand, ref_latency, cfg.penalty);
            let accept = cand_energy <= current_energy
                || rng.gen::<f64>() < ((current_energy - cand_energy) / temperature).exp();
            if accept {
                current = cand;
                current_energy = cand_energy;
                consider_best(&current, &mut best);
            }
        }
        temperature *= cfg.cooling;
    }
    best
}

fn write_json(measurements: &[Measurement]) {
    let doc = serde::Value::Seq(
        measurements
            .iter()
            .map(|m| {
                serde::Value::Map(vec![
                    ("scenario".into(), serde::Value::Str(m.name.clone())),
                    ("n".into(), serde::Value::UInt(m.n as u64)),
                    ("m".into(), serde::Value::UInt(m.m as u64)),
                    (
                        "full_steps_per_sec".into(),
                        serde::Value::Float(m.full_steps_per_sec),
                    ),
                    (
                        "incr_steps_per_sec".into(),
                        serde::Value::Float(m.incr_steps_per_sec),
                    ),
                    ("speedup".into(), serde::Value::Float(m.speedup)),
                    ("ls_legacy_ms".into(), serde::Value::Float(m.ls_legacy_ms)),
                    ("ls_dlb_ms".into(), serde::Value::Float(m.ls_dlb_ms)),
                    ("ls_incr_ms".into(), serde::Value::Float(m.ls_incr_ms)),
                    ("sa_legacy_ms".into(), serde::Value::Float(m.sa_legacy_ms)),
                    ("sa_incr_ms".into(), serde::Value::Float(m.sa_incr_ms)),
                    ("results_match".into(), serde::Value::Bool(m.results_match)),
                ])
            })
            .collect(),
    );
    let text = serde_json::to_string_pretty(&doc).expect("serializes");
    if let Err(e) = std::fs::write("BENCH_eval.json", text) {
        eprintln!("warning: could not write BENCH_eval.json: {e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpwf_algo::heuristics::neighborhood::move_count;

    #[test]
    fn smoke_mode_runs_and_matches_legacy_results() {
        let tables = eval_incremental(true);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].rows.len(), 2);
        for row in &tables[0].rows {
            // run_scenario asserts result equality internally; the table
            // must reflect it.
            assert_eq!(row[11], "true", "{row:?}");
            let speedup: f64 = row[5].trim_end_matches('x').parse().expect("speedup");
            assert!(speedup.is_finite() && speedup > 0.0, "{row:?}");
        }
        let _ = std::fs::remove_file("BENCH_eval.json");
    }

    #[test]
    fn move_stream_covers_the_whole_neighborhood_on_bench_instances() {
        let inst = rpwf_gen::make_instance(
            PlatformClass::FullyHeterogeneous,
            FailureClass::Heterogeneous,
            8,
            5,
            1,
        );
        let mut rng = StdRng::seed_from_u64(42);
        let mapping = random_mapping(8, 5, &mut rng);
        let ctx = EvalContext::new(&inst.pipeline, &inst.platform);
        let de = DeltaEval::new(&ctx, &mapping);
        assert_eq!(move_count(&de), neighbors(&mapping, 5).len());
    }
}
