//! E18 — Engine dispatch overhead: `Engine::solve` vs direct backend
//! calls on the E14 server-throughput instance family (writes
//! `BENCH_engine.json`).
//!
//! The unified engine routes every solve/pareto request through
//! capability filtering, registry scans and report assembly. Those must
//! be noise next to the actual solving — the acceptance bar is **≤ 3%**
//! median overhead against hand-wired direct calls running the *same*
//! backends (`Portfolio::race` for points, the bitmask-DP front source
//! for fronts), measured over interleaved rounds so drift hits both
//! sides equally.

use crate::table::Table;
use rpwf_algo::engine::{Engine, SolveRequest, Want};
use rpwf_algo::front::{BitmaskDpFront, FrontSource};
use rpwf_algo::heuristics::Portfolio;
use rpwf_algo::Objective;
use rpwf_core::budget::Budget;
use rpwf_core::platform::{FailureClass, Platform, PlatformClass};
use rpwf_core::stage::Pipeline;
use std::time::Instant;

const SEED: u64 = 0xCAFE;

struct Scenario {
    name: &'static str,
    class: PlatformClass,
    n: usize,
    m: usize,
    want_front: bool,
}

struct Measurement {
    name: String,
    rounds: usize,
    iters_per_round: usize,
    direct_us: f64,
    engine_us: f64,
    overhead_pct: f64,
}

/// Runs E18 and returns the result tables (also writes
/// `BENCH_engine.json`). `smoke` shrinks rounds/iterations for CI.
#[must_use]
pub fn engine_overhead(smoke: bool) -> Vec<Table> {
    let (rounds, iters) = if smoke { (3, 24) } else { (7, 80) };
    let scenarios = [
        // The E14 throughput family: comm-homogeneous n=3 m=4, exact
        // bitmask-DP answers.
        Scenario {
            name: "ch-point-race",
            class: PlatformClass::CommHomogeneous,
            n: 3,
            m: 4,
            want_front: false,
        },
        Scenario {
            name: "ch-front",
            class: PlatformClass::CommHomogeneous,
            n: 3,
            m: 4,
            want_front: true,
        },
        // Heuristic-only regime: het m=14, no exact point backend.
        Scenario {
            name: "het-point-race",
            class: PlatformClass::FullyHeterogeneous,
            n: 3,
            m: 14,
            want_front: false,
        },
    ];

    let mut measurements = Vec::new();
    for scenario in &scenarios {
        measurements.push(run_scenario(scenario, rounds, iters));
    }

    let mut table = Table::new(
        "E18 / engine dispatch overhead — Engine::solve vs direct backend calls",
        &[
            "scenario",
            "rounds",
            "iters",
            "direct µs/req",
            "engine µs/req",
            "overhead %",
        ],
    );
    for m in &measurements {
        table.row(vec![
            m.name.clone(),
            m.rounds.to_string(),
            m.iters_per_round.to_string(),
            format!("{:.1}", m.direct_us),
            format!("{:.1}", m.engine_us),
            format!("{:+.2}", m.overhead_pct),
        ]);
    }
    table.note(
        "identical backends on both sides (Portfolio::race / bitmask-DP front); \
         interleaved per-call medians, median across rounds; bar: ≤ 3%",
    );

    write_json(&measurements);
    vec![table]
}

fn run_scenario(scenario: &Scenario, rounds: usize, iters: usize) -> Measurement {
    let inst = rpwf_gen::make_instance(
        scenario.class,
        FailureClass::Heterogeneous,
        scenario.n,
        scenario.m,
        9,
    );
    let objective = Objective::MinFpUnderLatency(
        rpwf_algo::mono::minimize_failure(&inst.pipeline, &inst.platform).latency,
    );
    let engine = Engine::with_default_backends(SEED);

    // Warm-up (untimed): fault in code paths and allocator state.
    run_direct(scenario, &inst.pipeline, &inst.platform, objective);
    run_engine(scenario, &engine, &inst.pipeline, &inst.platform, objective);

    // Per-call medians, then the median round: interleaving cancels slow
    // drift, and medians discard scheduler bursts that hit one side's sum
    // (the raw sums swing ±20% on noisy shared machines; the medians sit
    // within ±1%).
    let mut overheads: Vec<(f64, f64, f64)> = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let mut direct: Vec<f64> = Vec::with_capacity(iters);
        let mut through_engine: Vec<f64> = Vec::with_capacity(iters);
        for _ in 0..iters {
            let t0 = Instant::now();
            run_direct(scenario, &inst.pipeline, &inst.platform, objective);
            direct.push(t0.elapsed().as_secs_f64() * 1e6);
            let t1 = Instant::now();
            run_engine(scenario, &engine, &inst.pipeline, &inst.platform, objective);
            through_engine.push(t1.elapsed().as_secs_f64() * 1e6);
        }
        let per_direct = median(&mut direct);
        let per_engine = median(&mut through_engine);
        overheads.push((
            per_direct,
            per_engine,
            (per_engine - per_direct) / per_direct * 100.0,
        ));
    }
    overheads.sort_by(|a, b| a.2.total_cmp(&b.2));
    let (direct_us, engine_us, overhead_pct) = overheads[overheads.len() / 2];

    Measurement {
        name: scenario.name.to_string(),
        rounds,
        iters_per_round: iters,
        direct_us,
        engine_us,
        overhead_pct,
    }
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// The legacy hand-wired path: the same backends the engine would pick,
/// called directly.
fn run_direct(scenario: &Scenario, pipeline: &Pipeline, platform: &Platform, objective: Objective) {
    let budget = Budget::unlimited();
    if scenario.want_front {
        let outcome = BitmaskDpFront.front_with_budget(pipeline, platform, &budget);
        assert!(!outcome.into_inner().is_empty());
    } else {
        let report = Portfolio::new(SEED).race(pipeline, platform, objective, &budget);
        assert!(report.best.is_some());
    }
}

/// The unified path: one `Engine::solve` call.
fn run_engine(
    scenario: &Scenario,
    engine: &Engine,
    pipeline: &Pipeline,
    platform: &Platform,
    objective: Objective,
) {
    let budget = Budget::unlimited();
    let want = if scenario.want_front {
        Want::Front
    } else {
        Want::Point {
            objective,
            keep_front: false,
        }
    };
    let report = engine.solve(&SolveRequest {
        pipeline,
        platform,
        want,
        budget: &budget,
    });
    match want {
        Want::Front => assert!(!report.front_answer().expect("front").is_empty()),
        _ => assert!(report.point().is_some()),
    }
}

fn write_json(measurements: &[Measurement]) {
    let doc = serde::Value::Seq(
        measurements
            .iter()
            .map(|m| {
                serde::Value::Map(vec![
                    ("scenario".into(), serde::Value::Str(m.name.clone())),
                    ("rounds".into(), serde::Value::UInt(m.rounds as u64)),
                    (
                        "iters_per_round".into(),
                        serde::Value::UInt(m.iters_per_round as u64),
                    ),
                    ("direct_us".into(), serde::Value::Float(m.direct_us)),
                    ("engine_us".into(), serde::Value::Float(m.engine_us)),
                    ("overhead_pct".into(), serde::Value::Float(m.overhead_pct)),
                ])
            })
            .collect(),
    );
    let text = serde_json::to_string_pretty(&doc).expect("serializes");
    if let Err(e) = std::fs::write("BENCH_engine.json", text) {
        eprintln!("warning: could not write BENCH_engine.json: {e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_overhead_is_within_three_percent() {
        let _timing = crate::experiments::TIMING_TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // Timing bars on shared unoptimized test machines see scheduler
        // noise well above the 3% bound — a genuine regression fails
        // every attempt, noise does not.
        crate::experiments::retry_timing_bars(|| {
            let tables = engine_overhead(true);
            assert_eq!(tables.len(), 1);
            assert_eq!(tables[0].rows.len(), 3);
            let mut violation = None;
            for row in &tables[0].rows {
                let overhead: f64 = row[5].parse().expect("overhead percentage");
                if overhead > 3.0 {
                    violation = Some(format!(
                        "engine dispatch overhead for {} must stay within 3% of \
                         direct backend calls, measured {overhead:+.2}%",
                        row[0]
                    ));
                }
            }
            violation
        });
        let _ = std::fs::remove_file("BENCH_engine.json");
    }
}
