//! E19 — Request-tracing overhead: untraced `Engine::solve` vs the same
//! call with a live span collector attached (writes `BENCH_trace.json`).
//!
//! Tracing is opt-in per request, so it must be effectively free when
//! off and cheap when on. Two bars, measured on the E14 instance family
//! with the same interleaved per-call-median protocol as E18:
//!
//! * **off ≤ 3%** — `solve_traced(req, None)` (the production path with
//!   the tracing plumbing compiled in but no collector) against plain
//!   `Engine::solve`,
//! * **on ≤ 10%** — the full traced request lifecycle (allocate a
//!   [`Trace`], open the root span, solve under a [`TraceScope`], close,
//!   [`Trace::finish`] and serialize the span tree to its wire JSON)
//!   against plain `Engine::solve`.

use crate::table::Table;
use rpwf_algo::engine::{Engine, SolveRequest, Want};
use rpwf_algo::Objective;
use rpwf_core::budget::Budget;
use rpwf_core::platform::{FailureClass, Platform, PlatformClass};
use rpwf_core::stage::Pipeline;
use rpwf_core::trace::{Trace, TraceId, TraceScope};
use std::time::Instant;

const SEED: u64 = 0xCAFE;

struct Scenario {
    name: &'static str,
    class: PlatformClass,
    n: usize,
    m: usize,
    want_front: bool,
}

struct Measurement {
    name: String,
    rounds: usize,
    iters_per_round: usize,
    base_us: f64,
    off_us: f64,
    on_us: f64,
    off_pct: f64,
    on_pct: f64,
}

/// Runs E19 and returns the result tables (also writes
/// `BENCH_trace.json`). `smoke` shrinks rounds/iterations for CI.
#[must_use]
pub fn trace_overhead(smoke: bool) -> Vec<Table> {
    let (rounds, iters) = if smoke { (3, 24) } else { (7, 80) };
    let scenarios = [
        // The E14 throughput family: comm-homogeneous n=3 m=4, exact
        // bitmask-DP answers.
        Scenario {
            name: "ch-point-race",
            class: PlatformClass::CommHomogeneous,
            n: 3,
            m: 4,
            want_front: false,
        },
        // Front production on a larger platform of the same family —
        // the m=4 front finishes in ~30µs, too small a denominator for
        // a stable percentage (the fixed ~10µs per-trace cost would
        // dominate); m=8 keeps the bitmask DP exact while giving the
        // span collector a realistically sized request to ride on.
        Scenario {
            name: "ch-front",
            class: PlatformClass::CommHomogeneous,
            n: 3,
            m: 8,
            want_front: true,
        },
        // Heuristic-only regime: het m=14, no exact point backend.
        Scenario {
            name: "het-point-race",
            class: PlatformClass::FullyHeterogeneous,
            n: 3,
            m: 14,
            want_front: false,
        },
    ];

    let mut measurements = Vec::new();
    for scenario in &scenarios {
        measurements.push(run_scenario(scenario, rounds, iters));
    }

    let mut table = Table::new(
        "E19 / request-tracing overhead — Engine::solve untraced vs traced",
        &[
            "scenario",
            "rounds",
            "iters",
            "base µs/req",
            "off µs/req",
            "on µs/req",
            "off %",
            "on %",
        ],
    );
    for m in &measurements {
        table.row(vec![
            m.name.clone(),
            m.rounds.to_string(),
            m.iters_per_round.to_string(),
            format!("{:.1}", m.base_us),
            format!("{:.1}", m.off_us),
            format!("{:.1}", m.on_us),
            format!("{:+.2}", m.off_pct),
            format!("{:+.2}", m.on_pct),
        ]);
    }
    table.note(
        "off = solve_traced(None); on = Trace + root span + scope + finish + \
         wire serialization; interleaved per-call medians, median across \
         rounds; bars: off ≤ 3%, on ≤ 10%",
    );

    write_json(&measurements);
    vec![table]
}

fn run_scenario(scenario: &Scenario, rounds: usize, iters: usize) -> Measurement {
    let inst = rpwf_gen::make_instance(
        scenario.class,
        FailureClass::Heterogeneous,
        scenario.n,
        scenario.m,
        9,
    );
    let objective = Objective::MinFpUnderLatency(
        rpwf_algo::mono::minimize_failure(&inst.pipeline, &inst.platform).latency,
    );
    let engine = Engine::with_default_backends(SEED);

    // Warm-up (untimed): fault in code paths and allocator state.
    run_base(scenario, &engine, &inst.pipeline, &inst.platform, objective);
    run_off(scenario, &engine, &inst.pipeline, &inst.platform, objective);
    run_on(scenario, &engine, &inst.pipeline, &inst.platform, objective);

    // Per-call medians, then the median round — the same protocol as
    // E18: interleaving cancels slow drift, medians discard scheduler
    // bursts that hit one arm's sum. The two bars are medianed
    // independently across rounds so one noisy round cannot poison
    // both readings.
    let mut off_rounds: Vec<(f64, f64, f64)> = Vec::with_capacity(rounds);
    let mut on_rounds: Vec<(f64, f64, f64)> = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let mut base: Vec<f64> = Vec::with_capacity(iters);
        let mut off: Vec<f64> = Vec::with_capacity(iters);
        let mut on: Vec<f64> = Vec::with_capacity(iters);
        for _ in 0..iters {
            let t0 = Instant::now();
            run_base(scenario, &engine, &inst.pipeline, &inst.platform, objective);
            base.push(t0.elapsed().as_secs_f64() * 1e6);
            let t1 = Instant::now();
            run_off(scenario, &engine, &inst.pipeline, &inst.platform, objective);
            off.push(t1.elapsed().as_secs_f64() * 1e6);
            let t2 = Instant::now();
            run_on(scenario, &engine, &inst.pipeline, &inst.platform, objective);
            on.push(t2.elapsed().as_secs_f64() * 1e6);
        }
        let per_base = median(&mut base);
        let per_off = median(&mut off);
        let per_on = median(&mut on);
        off_rounds.push((per_base, per_off, (per_off - per_base) / per_base * 100.0));
        on_rounds.push((per_base, per_on, (per_on - per_base) / per_base * 100.0));
    }
    off_rounds.sort_by(|a, b| a.2.total_cmp(&b.2));
    on_rounds.sort_by(|a, b| a.2.total_cmp(&b.2));
    let (base_us, off_us, off_pct) = off_rounds[off_rounds.len() / 2];
    let (_, on_us, on_pct) = on_rounds[on_rounds.len() / 2];

    Measurement {
        name: scenario.name.to_string(),
        rounds,
        iters_per_round: iters,
        base_us,
        off_us,
        on_us,
        off_pct,
        on_pct,
    }
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn request<'a>(
    scenario: &Scenario,
    pipeline: &'a Pipeline,
    platform: &'a Platform,
    objective: Objective,
    budget: &'a Budget,
) -> SolveRequest<'a> {
    let want = if scenario.want_front {
        Want::Front
    } else {
        Want::Point {
            objective,
            keep_front: false,
        }
    };
    SolveRequest {
        pipeline,
        platform,
        want,
        budget,
    }
}

fn check(scenario: &Scenario, report: &rpwf_algo::engine::SolveReport) {
    if scenario.want_front {
        assert!(!report.front_answer().expect("front").is_empty());
    } else {
        assert!(report.point().is_some());
    }
}

/// Baseline: plain `Engine::solve`, no tracing anywhere in sight.
fn run_base(
    scenario: &Scenario,
    engine: &Engine,
    pipeline: &Pipeline,
    platform: &Platform,
    objective: Objective,
) {
    let budget = Budget::unlimited();
    let report = engine.solve(&request(scenario, pipeline, platform, objective, &budget));
    check(scenario, &report);
}

/// Tracing off: the traced entry point with no collector attached —
/// exactly what every untraced production request pays.
fn run_off(
    scenario: &Scenario,
    engine: &Engine,
    pipeline: &Pipeline,
    platform: &Platform,
    objective: Objective,
) {
    let budget = Budget::unlimited();
    let report = engine.solve_traced(
        &request(scenario, pipeline, platform, objective, &budget),
        None,
    );
    check(scenario, &report);
}

/// Tracing on: the full traced lifecycle a `"trace": true` request
/// pays at the engine layer — collector allocation, root span, solving
/// under a scope, close, finish, and wire serialization.
fn run_on(
    scenario: &Scenario,
    engine: &Engine,
    pipeline: &Pipeline,
    platform: &Platform,
    objective: Objective,
) {
    let budget = Budget::unlimited();
    let trace = Trace::new(TraceId::next(), Instant::now());
    let root = trace.begin_root("request");
    let report = engine.solve_traced(
        &request(scenario, pipeline, platform, objective, &budget),
        Some(TraceScope::new(&trace, root.index())),
    );
    check(scenario, &report);
    trace.end(&root);
    let tree = trace.finish();
    let wire = serde_json::to_string(&tree).expect("span tree serializes");
    assert!(!wire.is_empty());
}

fn write_json(measurements: &[Measurement]) {
    let doc = serde::Value::Seq(
        measurements
            .iter()
            .map(|m| {
                serde::Value::Map(vec![
                    ("scenario".into(), serde::Value::Str(m.name.clone())),
                    ("rounds".into(), serde::Value::UInt(m.rounds as u64)),
                    (
                        "iters_per_round".into(),
                        serde::Value::UInt(m.iters_per_round as u64),
                    ),
                    ("base_us".into(), serde::Value::Float(m.base_us)),
                    ("off_us".into(), serde::Value::Float(m.off_us)),
                    ("on_us".into(), serde::Value::Float(m.on_us)),
                    ("off_pct".into(), serde::Value::Float(m.off_pct)),
                    ("on_pct".into(), serde::Value::Float(m.on_pct)),
                ])
            })
            .collect(),
    );
    let text = serde_json::to_string_pretty(&doc).expect("serializes");
    if let Err(e) = std::fs::write("BENCH_trace.json", text) {
        eprintln!("warning: could not write BENCH_trace.json: {e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracing_overhead_is_within_the_bars() {
        let _timing = crate::experiments::TIMING_TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // Same noise discipline as the E18 bar: only a violation that
        // survives every attempt is a regression.
        crate::experiments::retry_timing_bars(|| {
            let tables = trace_overhead(true);
            assert_eq!(tables.len(), 1);
            assert_eq!(tables[0].rows.len(), 3);
            let mut violation = None;
            for row in &tables[0].rows {
                let off: f64 = row[6].parse().expect("off percentage");
                let on: f64 = row[7].parse().expect("on percentage");
                if off > 3.0 {
                    violation = Some(format!(
                        "tracing-off overhead for {} must stay within 3% of the \
                         untraced path, measured {off:+.2}%",
                        row[0]
                    ));
                }
                if on > 10.0 {
                    violation = Some(format!(
                        "tracing-on overhead for {} must stay within 10% of the \
                         untraced path, measured {on:+.2}%",
                        row[0]
                    ));
                }
            }
            violation
        });
        let _ = std::fs::remove_file("BENCH_trace.json");
    }
}
