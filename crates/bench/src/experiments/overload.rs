//! E22 — overload behavior of the admission-controlled reactor: a 10×
//! overload burst against a small solve queue vs a 1× baseline (writes
//! `BENCH_overload.json`).
//!
//! One server (2 workers, a 2-slot solve queue) answers the same
//! uncached threshold solve over and over — a uniform unit of work — in
//! two scenarios:
//!
//! * **baseline-1x** — as many closed-loop clients as workers: the
//!   queue stays shallow and (almost) nothing is shed,
//! * **overload-10x** — ten times that many clients: far more demand
//!   than capacity, so the admission controller must shed most of it.
//!
//! What an overloaded server owes its clients is an *immediate, honest*
//! answer: either the solve, still fast, or a structured `overloaded`
//! rejection carrying `retry_after_ms` — never a request that queues
//! silently until its deadline dies. Measured per scenario:
//!
//! * **availability** — answered-`ok` plus fast-rejected-with-hint,
//!   over all requests (must be 1.0: overload degrades *throughput*,
//!   never leaves a client hanging),
//! * **accepted p50/p99** — latency of the admitted requests: the
//!   bounded queue keeps the accepted tail within a small multiple of
//!   the baseline's instead of growing with offered load,
//! * **shed p99** — latency of the rejections (a reject must be fast,
//!   that is its entire point),
//! * **late timeouts** — admitted requests that still blew their
//!   deadline (must be zero: admission only accepts what it can serve
//!   in time).
//!
//! Acceptance (full mode): both availabilities 1.0, zero late timeouts,
//! overload sheds > 0, accepted p99 under overload ≤ 3× the baseline's.
//! Smoke mode (`--smoke`, CI) shrinks the workload and skips the timing
//! bar (the structural bars still hold).

use crate::table::Table;
use rpwf_algo::Objective;
use rpwf_core::platform::{FailureClass, PlatformClass};
use rpwf_server::protocol::{Command, Request, Response};
use rpwf_server::{Server, ServiceConfig, ServingOptions};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Instant;

/// Every request carries this deadline — generous next to the
/// millisecond-scale service time, so an admitted request that still
/// times out is unambiguously an admission-control failure.
const DEADLINE_MS: u64 = 10_000;
/// Solve-queue bound: one slot, so an admitted request waits at most
/// one in-flight solve plus its own — the accepted tail is bounded by
/// ~2 service times and overload turns into shedding, not queue growth.
const MAX_QUEUE: usize = 1;
const WORKERS: usize = 2;

struct Scenario {
    name: String,
    clients: usize,
    requests: usize,
    ok: usize,
    shed: usize,
    late_timeouts: usize,
    availability: f64,
    accepted_p50_ms: f64,
    accepted_p99_ms: f64,
    shed_p99_ms: f64,
    wall_secs: f64,
}

/// Runs E22 and returns the result tables (also writes
/// `BENCH_overload.json`). `smoke` shrinks the workload to CI size.
///
/// # Panics
/// When availability drops below 1.0, an admitted request times out, a
/// rejection lacks its retry hint, the overload pass sheds nothing, or
/// (full mode) the accepted tail under overload exceeds 3× baseline.
#[must_use]
pub fn overload(smoke: bool) -> Vec<Table> {
    let (n, m, per_client) = if smoke { (3, 4, 6) } else { (4, 6, 20) };

    let baseline = run_scenario("baseline-1x", WORKERS, per_client, n, m);
    let overloaded = run_scenario("overload-10x", WORKERS * 10, per_client, n, m);

    for scenario in [&baseline, &overloaded] {
        assert!(
            (scenario.availability - 1.0).abs() < f64::EPSILON,
            "{}: every request must be answered or fast-rejected \
             (availability {})",
            scenario.name,
            scenario.availability
        );
        assert_eq!(
            scenario.late_timeouts, 0,
            "{}: an admitted request must never queue into a late timeout",
            scenario.name
        );
    }
    assert!(
        overloaded.shed > 0,
        "10× offered load against a {MAX_QUEUE}-slot queue must shed"
    );
    if !smoke {
        assert!(
            overloaded.accepted_p99_ms <= 3.0 * baseline.accepted_p99_ms.max(1e-3),
            "acceptance: the bounded queue must keep the accepted tail within \
             3× of baseline (overload p99 {:.3} ms vs baseline {:.3} ms)",
            overloaded.accepted_p99_ms,
            baseline.accepted_p99_ms
        );
    }

    let scenarios = [baseline, overloaded];
    let mut table = Table::new(
        format!(
            "E22 / overload shedding — {WORKERS} workers, {MAX_QUEUE}-slot \
             solve queue, uncached solves (comm-homog n={n}, m={m}), \
             {per_client} requests per closed-loop client"
        ),
        &[
            "scenario",
            "clients",
            "requests",
            "ok",
            "shed",
            "availability",
            "accepted p50 ms",
            "accepted p99 ms",
            "shed p99 ms",
            "late timeouts",
        ],
    );
    for meas in &scenarios {
        table.row(vec![
            meas.name.clone(),
            meas.clients.to_string(),
            meas.requests.to_string(),
            meas.ok.to_string(),
            meas.shed.to_string(),
            format!("{:.3}", meas.availability),
            format!("{:.3}", meas.accepted_p50_ms),
            format!("{:.3}", meas.accepted_p99_ms),
            format!("{:.3}", meas.shed_p99_ms),
            meas.late_timeouts.to_string(),
        ]);
    }
    table.note(
        "under 10× offered load the admission controller sheds the excess \
         immediately with a structured overloaded + retry_after_ms error: \
         every client hears back fast (availability 1.0), admitted requests \
         never rot in a queue past their deadline, and the accepted tail \
         stays within a small multiple of the uncontended baseline",
    );

    write_json(&scenarios);
    vec![table]
}

/// One scenario: a fresh server, `clients` closed-loop clients each
/// issuing `per_client` identical uncached solves.
fn run_scenario(name: &str, clients: usize, per_client: usize, n: usize, m: usize) -> Scenario {
    let mut server = Server::bind_tuned(
        "127.0.0.1:0",
        ServiceConfig {
            workers: WORKERS,
            cache_capacity: 0,
            cache_shards: 1,
            seed: 0xCAFE,
            solver_threads: 1,
            node_id: None,
        },
        ServingOptions {
            max_queue: MAX_QUEUE,
            ..ServingOptions::default()
        },
    )
    .expect("bind overload server");
    let addr = server.local_addr().to_string();
    let line = workload_line(n, m);

    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let addr = addr.clone();
            let line = line.clone();
            std::thread::spawn(move || client_loop(&addr, &line, c as u64, per_client))
        })
        .collect();
    let mut accepted_ms = Vec::new();
    let mut shed_ms = Vec::new();
    let mut ok = 0usize;
    let mut shed = 0usize;
    let mut late_timeouts = 0usize;
    for handle in handles {
        let outcomes = handle.join().expect("client thread");
        for (latency_ms, outcome) in outcomes {
            match outcome {
                Outcome::Ok => {
                    ok += 1;
                    accepted_ms.push(latency_ms);
                }
                Outcome::Shed => {
                    shed += 1;
                    shed_ms.push(latency_ms);
                }
                Outcome::LateTimeout => late_timeouts += 1,
            }
        }
    }
    let wall_secs = start.elapsed().as_secs_f64();
    server.shutdown();

    let requests = clients * per_client;
    accepted_ms.sort_unstable_by(f64::total_cmp);
    shed_ms.sort_unstable_by(f64::total_cmp);
    Scenario {
        name: name.to_string(),
        clients,
        requests,
        ok,
        shed,
        late_timeouts,
        availability: (ok + shed) as f64 / requests as f64,
        accepted_p50_ms: percentile(&accepted_ms, 50.0),
        accepted_p99_ms: percentile(&accepted_ms, 99.0),
        shed_p99_ms: percentile(&shed_ms, 99.0),
        wall_secs,
    }
}

enum Outcome {
    /// Admitted and answered in time.
    Ok,
    /// Fast-rejected with a usable `retry_after_ms` hint.
    Shed,
    /// Admitted, then timed out anyway — the admission-control failure
    /// this experiment exists to rule out.
    LateTimeout,
}

/// One closed-loop client: `count` sequential requests over one
/// connection, each latency-stamped and classified.
fn client_loop(addr: &str, line: &str, client: u64, count: usize) -> Vec<(f64, Outcome)> {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let mut outcomes = Vec::with_capacity(count);
    for i in 0..count {
        let reissued = reissue(line, client * 10_000 + i as u64);
        let began = Instant::now();
        writeln!(writer, "{reissued}").expect("send");
        writer.flush().expect("flush");
        let mut buf = String::new();
        reader.read_line(&mut buf).expect("response line");
        let latency_ms = began.elapsed().as_secs_f64() * 1e3;
        let parsed: Response = serde_json::from_str(buf.trim_end()).expect("response parses");
        let outcome = match parsed.status.as_str() {
            "ok" => Outcome::Ok,
            _ => {
                let error = parsed.error.expect("error payload");
                match error.kind.as_str() {
                    "overloaded" => {
                        let hint = error.retry_after_ms.expect("rejections carry a retry hint");
                        assert!(hint > 0, "retry_after_ms must be a usable wait");
                        Outcome::Shed
                    }
                    "timeout" => Outcome::LateTimeout,
                    other => panic!("unexpected error kind {other}: {}", error.message),
                }
            }
        };
        outcomes.push((latency_ms, outcome));
    }
    outcomes
}

/// The uniform unit of work: one feasible uncached threshold solve.
fn workload_line(n: usize, m: usize) -> String {
    let inst = rpwf_gen::make_instance(
        PlatformClass::CommHomogeneous,
        FailureClass::Heterogeneous,
        n,
        m,
        42,
    );
    let safest = rpwf_algo::mono::minimize_failure(&inst.pipeline, &inst.platform);
    let request = Request {
        id: Some(0),
        deadline_ms: Some(DEADLINE_MS),
        no_cache: Some(true),
        hop: None,
        trace: None,
        trace_ctx: None,
        explain: None,
        cmd: Command::Solve {
            pipeline: inst.pipeline,
            platform: inst.platform,
            objective: Objective::MinFpUnderLatency(safest.latency * 1.5),
        },
    };
    serde_json::to_string(&request).expect("serializes")
}

/// Re-serializes the workload line under a fresh request id.
fn reissue(line: &str, id: u64) -> String {
    let mut request: Request = serde_json::from_str(line).expect("workload parses");
    request.id = Some(id);
    serde_json::to_string(&request).expect("serializes")
}

/// Nearest-rank percentile over an ascending-sorted sample.
fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted_ms.len() as f64).ceil() as usize;
    sorted_ms[rank.saturating_sub(1).min(sorted_ms.len() - 1)]
}

fn write_json(scenarios: &[Scenario]) {
    let doc = serde::Value::Map(vec![
        (
            "scenarios".into(),
            serde::Value::Seq(
                scenarios
                    .iter()
                    .map(|meas| {
                        serde::Value::Map(vec![
                            ("scenario".into(), serde::Value::Str(meas.name.clone())),
                            ("clients".into(), serde::Value::UInt(meas.clients as u64)),
                            ("requests".into(), serde::Value::UInt(meas.requests as u64)),
                            ("ok".into(), serde::Value::UInt(meas.ok as u64)),
                            ("shed".into(), serde::Value::UInt(meas.shed as u64)),
                            (
                                "late_timeouts".into(),
                                serde::Value::UInt(meas.late_timeouts as u64),
                            ),
                            (
                                "availability".into(),
                                serde::Value::Float(meas.availability),
                            ),
                            (
                                "accepted_p50_ms".into(),
                                serde::Value::Float(meas.accepted_p50_ms),
                            ),
                            (
                                "accepted_p99_ms".into(),
                                serde::Value::Float(meas.accepted_p99_ms),
                            ),
                            ("shed_p99_ms".into(), serde::Value::Float(meas.shed_p99_ms)),
                            ("wall_secs".into(), serde::Value::Float(meas.wall_secs)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "accepted_p99_ratio_overload_over_baseline".into(),
            serde::Value::Float(
                scenarios[1].accepted_p99_ms / scenarios[0].accepted_p99_ms.max(1e-9),
            ),
        ),
        ("workers".into(), serde::Value::UInt(WORKERS as u64)),
        ("max_queue".into(), serde::Value::UInt(MAX_QUEUE as u64)),
        ("deadline_ms".into(), serde::Value::UInt(DEADLINE_MS)),
    ]);
    let text = serde_json::to_string_pretty(&doc).expect("serializes");
    if let Err(e) = std::fs::write("BENCH_overload.json", text) {
        eprintln!("warning: could not write BENCH_overload.json: {e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_overload_runs() {
        // Serialized with the timing-sensitive tests: dozens of client
        // threads perturb microsecond-scale medians elsewhere.
        let _timing = crate::experiments::TIMING_TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let tables = overload(true);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].rows.len(), 2);
        let _ = std::fs::remove_file("BENCH_overload.json");
    }
}
