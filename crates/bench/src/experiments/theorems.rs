//! E3–E6 and E9 — theorem/algorithm verification tables over random
//! instance suites.

use crate::table::{fnum, Table};
use rpwf_algo::bicriteria;
use rpwf_algo::exact::{min_latency_general_brute, min_latency_interval, Exhaustive};
use rpwf_algo::mono;
use rpwf_algo::Objective;
use rpwf_core::num::approx_eq;
use rpwf_core::prelude::*;
use rpwf_gen::SuiteSpec;

fn match_str(a: f64, b: f64) -> &'static str {
    if approx_eq(a, b, 1e-9) {
        "yes"
    } else {
        "NO"
    }
}

/// E3 — Theorem 1 (min FP is replicate-all) against the exhaustive oracle
/// on every platform-class combination.
#[must_use]
pub fn thm1() -> Vec<Table> {
    let mut t = Table::new(
        "E3 / Theorem 1 — minimize FP by replicating the whole pipeline on all processors",
        &["instance", "Thm1 FP", "oracle FP", "match"],
    );
    for class in [
        PlatformClass::FullyHomogeneous,
        PlatformClass::CommHomogeneous,
        PlatformClass::FullyHeterogeneous,
    ] {
        for failure in [FailureClass::Homogeneous, FailureClass::Heterogeneous] {
            let suite = SuiteSpec {
                sizes: vec![(3, 4), (4, 4)],
                seeds: vec![5, 31],
                ..SuiteSpec::small(class, failure)
            };
            for inst in suite.instances() {
                let alg = mono::minimize_failure(&inst.pipeline, &inst.platform);
                let oracle = Exhaustive::new(&inst.pipeline, &inst.platform).min_failure();
                t.row(vec![
                    inst.label.clone(),
                    fnum(alg.failure_prob),
                    fnum(oracle.failure_prob),
                    match_str(alg.failure_prob, oracle.failure_prob).into(),
                ]);
            }
        }
    }
    vec![t]
}

/// Shared sweep for E4/E5: runs a polynomial algorithm pair against the
/// oracle across latency and FP thresholds.
fn bicriteria_sweep(
    title: &str,
    suite: SuiteSpec,
    min_fp: impl Fn(&Pipeline, &Platform, f64) -> Option<rpwf_algo::BiSolution>,
    min_lat: impl Fn(&Pipeline, &Platform, f64) -> Option<rpwf_algo::BiSolution>,
) -> Table {
    let mut t = Table::new(
        title,
        &[
            "instance",
            "objective",
            "threshold",
            "algorithm",
            "oracle",
            "match",
        ],
    );
    for inst in suite.instances().into_iter().take(8) {
        let ex = Exhaustive::new(&inst.pipeline, &inst.platform);
        let lo = ex.min_latency().latency;
        let hi = mono::minimize_failure(&inst.pipeline, &inst.platform).latency;
        for i in 0..4 {
            let l = lo + (hi - lo) * i as f64 / 3.0;
            let alg = min_fp(&inst.pipeline, &inst.platform, l);
            let oracle = ex.solve(Objective::MinFpUnderLatency(l));
            let (a, o, m) = match (alg, oracle) {
                (Some(a), Some(o)) => {
                    let m = match_str(a.failure_prob, o.failure_prob);
                    (fnum(a.failure_prob), fnum(o.failure_prob), m)
                }
                (None, None) => ("infeasible".into(), "infeasible".into(), "yes"),
                (a, o) => (
                    a.map_or("infeasible".into(), |s| fnum(s.failure_prob)),
                    o.map_or("infeasible".into(), |s| fnum(s.failure_prob)),
                    "NO",
                ),
            };
            t.row(vec![
                inst.label.clone(),
                "min FP s.t. L".into(),
                fnum(l),
                a,
                o,
                m.into(),
            ]);
        }
        let fp_floor = mono::minimize_failure(&inst.pipeline, &inst.platform).failure_prob;
        for f in [fp_floor, (fp_floor + 1.0) / 2.0, 0.95] {
            let alg = min_lat(&inst.pipeline, &inst.platform, f);
            let oracle = ex.solve(Objective::MinLatencyUnderFp(f));
            let (a, o, m) = match (alg, oracle) {
                (Some(a), Some(o)) => {
                    let m = match_str(a.latency, o.latency);
                    (fnum(a.latency), fnum(o.latency), m)
                }
                (None, None) => ("infeasible".into(), "infeasible".into(), "yes"),
                (a, o) => (
                    a.map_or("infeasible".into(), |s| fnum(s.latency)),
                    o.map_or("infeasible".into(), |s| fnum(s.latency)),
                    "NO",
                ),
            };
            t.row(vec![
                inst.label.clone(),
                "min L s.t. FP".into(),
                fnum(f),
                a,
                o,
                m.into(),
            ]);
        }
    }
    t
}

/// E4 — Algorithms 1 & 2 on Fully Homogeneous platforms vs the oracle.
#[must_use]
pub fn alg12() -> Vec<Table> {
    let suite = SuiteSpec::small(PlatformClass::FullyHomogeneous, FailureClass::Homogeneous);
    vec![bicriteria_sweep(
        "E4 / Theorem 5 — Algorithms 1 & 2 (Fully Homogeneous) vs exhaustive oracle",
        suite,
        |pi, pl, l| bicriteria::fully_homog::min_fp_under_latency(pi, pl, l).ok(),
        |pi, pl, f| bicriteria::fully_homog::min_latency_under_fp(pi, pl, f).ok(),
    )]
}

/// E5 — Algorithms 3 & 4 on Comm Homogeneous + Failure Homogeneous vs the
/// oracle.
#[must_use]
pub fn alg34() -> Vec<Table> {
    let suite = SuiteSpec::small(PlatformClass::CommHomogeneous, FailureClass::Homogeneous);
    vec![bicriteria_sweep(
        "E5 / Theorem 6 — Algorithms 3 & 4 (Comm Homogeneous + Failure Homogeneous) vs oracle",
        suite,
        |pi, pl, l| bicriteria::comm_homog::min_fp_under_latency(pi, pl, l).ok(),
        |pi, pl, f| bicriteria::comm_homog::min_latency_under_fp(pi, pl, f).ok(),
    )]
}

/// E6 — Theorem 4: the layered-graph shortest path equals brute force, and
/// the relaxation chain `general ≤ interval` holds.
#[must_use]
pub fn thm4() -> Vec<Table> {
    let mut t = Table::new(
        "E6 / Theorem 4 — general-mapping shortest path vs brute force (Fully Heterogeneous)",
        &[
            "instance",
            "shortest path",
            "brute force",
            "match",
            "interval opt",
            "general<=interval",
        ],
    );
    let suite = SuiteSpec {
        sizes: vec![(2, 3), (3, 4), (4, 4), (4, 5), (5, 5)],
        seeds: vec![1, 2, 3],
        ..SuiteSpec::small(
            PlatformClass::FullyHeterogeneous,
            FailureClass::Heterogeneous,
        )
    };
    for inst in suite.instances() {
        let (_, sp) = mono::general_mapping_shortest_path(&inst.pipeline, &inst.platform);
        let (_, brute) = min_latency_general_brute(&inst.pipeline, &inst.platform);
        let (_, interval) = min_latency_interval(&inst.pipeline, &inst.platform);
        t.row(vec![
            inst.label.clone(),
            fnum(sp),
            fnum(brute),
            match_str(sp, brute).into(),
            fnum(interval),
            if sp <= interval + 1e-9 { "yes" } else { "NO" }.into(),
        ]);
    }
    t.note("'interval opt' is the exact no-replication interval optimum (open problem, §4.1)");
    vec![t]
}

/// E9 — Lemma 1: on the two stated class combinations, single-interval
/// mappings cover the whole Pareto front; on CH + Failure-Het (Figure 5)
/// they provably do not.
#[must_use]
pub fn lemma1() -> Vec<Table> {
    let mut t = Table::new(
        "E9 / Lemma 1 — single-interval coverage of the exact Pareto front",
        &[
            "instance",
            "front size",
            "covered by single interval",
            "lemma holds",
        ],
    );
    let mut check = |label: String, pipeline: &Pipeline, platform: &Platform, expect: bool| {
        let front = Exhaustive::new(pipeline, platform).pareto_front();
        let covered = front
            .iter()
            .filter(|pt| {
                front.iter().any(|q| {
                    q.payload.n_intervals() == 1
                        && q.latency <= pt.latency + 1e-9
                        && q.failure_prob <= pt.failure_prob + 1e-9
                })
            })
            .count();
        let holds = covered == front.len();
        t.row(vec![
            label,
            front.len().to_string(),
            format!("{covered}/{}", front.len()),
            if holds == expect {
                format!("{holds} (as predicted)")
            } else {
                format!("{holds} UNEXPECTED")
            },
        ]);
    };

    for failure in [FailureClass::Homogeneous, FailureClass::Heterogeneous] {
        let suite = SuiteSpec {
            sizes: vec![(3, 4)],
            seeds: vec![3, 14],
            ..SuiteSpec::small(PlatformClass::FullyHomogeneous, failure)
        };
        for inst in suite.instances() {
            check(inst.label.clone(), &inst.pipeline, &inst.platform, true);
        }
    }
    let suite = SuiteSpec {
        sizes: vec![(3, 4)],
        seeds: vec![8, 21],
        ..SuiteSpec::small(PlatformClass::CommHomogeneous, FailureClass::Homogeneous)
    };
    for inst in suite.instances() {
        check(inst.label.clone(), &inst.pipeline, &inst.platform, true);
    }
    // The counterexample class: reduced Figure 5.
    let pipeline = rpwf_gen::figure5_pipeline();
    let mut speeds = vec![100.0; 5];
    speeds[0] = 1.0;
    let mut fps = vec![0.8; 5];
    fps[0] = 0.1;
    let platform = Platform::comm_homogeneous(speeds, 1.0, fps).expect("valid");
    check(
        "figure5-reduced (CH+FailureHet)".into(),
        &pipeline,
        &platform,
        false,
    );
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thm1_all_match() {
        let t = &thm1()[0];
        assert!(t.rows.iter().all(|r| r[3] == "yes"), "{}", t.render());
    }

    #[test]
    fn alg12_all_match() {
        let t = &alg12()[0];
        assert!(t.rows.iter().all(|r| r[5] == "yes"), "{}", t.render());
    }

    #[test]
    fn alg34_all_match() {
        let t = &alg34()[0];
        assert!(t.rows.iter().all(|r| r[5] == "yes"), "{}", t.render());
    }

    #[test]
    fn thm4_all_match() {
        let t = &thm4()[0];
        assert!(
            t.rows.iter().all(|r| r[3] == "yes" && r[5] == "yes"),
            "{}",
            t.render()
        );
    }

    #[test]
    fn lemma1_predictions_hold() {
        let t = &lemma1()[0];
        assert!(
            t.rows.iter().all(|r| r[3].contains("as predicted")),
            "{}",
            t.render()
        );
    }
}
