//! E20 — fleet fault tolerance under scripted node death: replicated
//! ownership (R = 2) vs a no-replication baseline (writes
//! `BENCH_chaos.json`).
//!
//! A 3-node ring serves `d` distinct instances; one node — the primary
//! owner of the most keys among the victims considered — is killed by a
//! deterministic [`FaultPlan`]: its request counter is scripted to fire
//! [`kill_node_at`](rpwf_server::FaultPlan::kill_node_at) on the **first
//! line it receives after the warm phase**, i.e. the first degraded-pass
//! forward that reaches it. Both scenarios then push the full workload
//! through the two survivors and measure:
//!
//! * **availability** — the fraction of requests answered `ok` (the
//!   failover + local-fallback paths must make this 1.0 in *both*
//!   scenarios: fault tolerance of the *answer* never depended on
//!   replication),
//! * **warm fraction** — the fraction answered from a front cache
//!   (replication's actual contribution: the dead node's keys stay warm
//!   on its successor instead of being re-solved cold),
//! * **p50/p99 latency** — re-solving cold is orders of magnitude
//!   slower than a warm front read, so the baseline's tail pays for
//!   every key the dead node owned.
//!
//! Every degraded answer is asserted byte-identical to its warm-phase
//! reference — a killed node may cost latency, never correctness.
//! Acceptance (full mode): both availabilities 1.0, replicated warm
//! fraction 1.0 with the baseline's strictly below, replicated p99 ≤
//! baseline p99. Smoke mode (`--smoke`, CI) shrinks the workload and
//! skips the timing bar (the structural bars still hold).

use crate::table::Table;
use rpwf_algo::Objective;
use rpwf_core::platform::{FailureClass, PlatformClass};
use rpwf_core::ring::HashRing;
use rpwf_server::protocol::{Command, Request, Response};
use rpwf_server::{FaultPlan, RingOptions, Server, ServiceConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

const VNODES: usize = 64;
/// The fault-plan seed: fixes the scripted schedule bit-for-bit.
const CHAOS_SEED: u64 = 0xBAD5EED;

struct Scenario {
    name: String,
    replicas: usize,
    requests: usize,
    availability: f64,
    warm_fraction: f64,
    p50_ms: f64,
    p99_ms: f64,
    wall_secs: f64,
    failovers: u64,
    victim_owned: usize,
}

/// Runs E20 and returns the result tables (also writes
/// `BENCH_chaos.json`). `smoke` shrinks the workload to CI size.
///
/// # Panics
/// When availability drops below 1.0, a degraded answer diverges from
/// its reference, or (full mode) the replicated tail fails to beat the
/// baseline's.
#[must_use]
pub fn chaos(smoke: bool) -> Vec<Table> {
    let (n, m, distinct, rounds) = if smoke { (3, 5, 6, 2) } else { (5, 10, 24, 3) };

    let replicated = run_scenario("replicated-r2", 2, n, m, distinct, rounds);
    let baseline = run_scenario("baseline-r1", 1, n, m, distinct, rounds);

    // Fault tolerance of the answer itself never depends on replication:
    // the local-solve fallback keeps the baseline available too.
    for scenario in [&replicated, &baseline] {
        assert!(
            (scenario.availability - 1.0).abs() < f64::EPSILON,
            "{}: every request must be answered through the node death \
             (availability {})",
            scenario.name,
            scenario.availability
        );
    }
    // What replication buys: the dead node's keys stay warm on the
    // successor, so nothing is re-solved.
    assert!(
        (replicated.warm_fraction - 1.0).abs() < f64::EPSILON,
        "replicated: every degraded answer must come from a warm front \
         (got {})",
        replicated.warm_fraction
    );
    assert!(
        baseline.warm_fraction < 1.0,
        "baseline: the dead node's keys must be re-solved cold \
         ({} victim-owned keys)",
        baseline.victim_owned
    );
    assert!(
        replicated.failovers >= 1,
        "replicated: the victim's keys must be served via failover"
    );
    if !smoke {
        assert!(
            replicated.p99_ms <= baseline.p99_ms,
            "acceptance: warm replicas must beat cold re-solving at the tail \
             (replicated p99 {:.3} ms vs baseline {:.3} ms)",
            replicated.p99_ms,
            baseline.p99_ms
        );
    }

    let scenarios = [replicated, baseline];
    let total = scenarios[0].requests;
    let mut table = Table::new(
        format!(
            "E20 / fleet fault tolerance — scripted kill of 1 of 3 nodes, \
             {total} degraded requests over {distinct} instances \
             (comm-homog n={n}, m={m}, {rounds} rounds)"
        ),
        &[
            "scenario",
            "replicas",
            "requests",
            "availability",
            "warm",
            "p50 ms",
            "p99 ms",
            "failovers",
        ],
    );
    for meas in &scenarios {
        table.row(vec![
            meas.name.clone(),
            meas.replicas.to_string(),
            meas.requests.to_string(),
            format!("{:.3}", meas.availability),
            format!("{:.3}", meas.warm_fraction),
            format!("{:.3}", meas.p50_ms),
            format!("{:.3}", meas.p99_ms),
            meas.failovers.to_string(),
        ]);
    }
    table.note(
        "a FaultPlan kills the victim on the first request line it receives \
         after the warm phase; both scenarios stay fully available (the \
         failover and local-fallback paths answer everything), but only \
         the replicated fleet keeps the dead node's keys warm — the \
         baseline re-solves them cold and pays at the tail",
    );
    table.note(
        "every degraded answer is asserted byte-identical to its warm-phase \
         reference: node death costs latency, never correctness",
    );

    write_json(&scenarios);
    vec![table]
}

/// One full scenario: bind a 3-node fleet at the given replication
/// factor, warm it, let the scripted plan kill the victim, and measure
/// the degraded pass through the survivors.
fn run_scenario(
    name: &str,
    replicas: usize,
    n: usize,
    m: usize,
    distinct: usize,
    rounds: usize,
) -> Scenario {
    let addrs = reserve_addrs(3);
    let ring = HashRing::new(addrs.clone(), VNODES);
    let (lines, keys) = workload(n, m, distinct);

    // The victim is the primary owner of instance 0 — guaranteed to own
    // at least one key, so the degraded pass must exercise failover.
    let victim = ring.owner(keys[0]).expect("non-empty ring").to_string();
    let victim_primary = keys
        .iter()
        .filter(|&&k| ring.owner(k) == Some(victim.as_str()))
        .count();
    let victim_replica = if replicas >= 2 {
        keys.iter()
            .filter(|&&k| ring.owners(k, replicas).get(1).copied() == Some(victim.as_str()))
            .count()
    } else {
        0
    };
    // During the warm phase the victim receives exactly one request line
    // per key it primaries (sent by the topology-aware client) plus one
    // CacheFill push per key it backs as the successor. The line after
    // those — the first degraded-pass forward — triggers the kill.
    let kill_at = (victim_primary + victim_replica) as u64;
    let plan = Arc::new(FaultPlan::new(CHAOS_SEED).kill_node_at(kill_at));

    let options = || RingOptions {
        vnodes: Some(VNODES),
        replicas,
        ..RingOptions::default()
    };
    let config = |node_id: &str| ServiceConfig {
        workers: 2,
        cache_capacity: 256,
        cache_shards: 4,
        seed: 0xCAFE,
        solver_threads: 1,
        node_id: Some(node_id.to_string()),
    };
    let servers: Vec<Server> = addrs
        .iter()
        .map(|addr| {
            let peers: Vec<String> = addrs.iter().filter(|a| *a != addr).cloned().collect();
            let faults = (*addr == victim).then(|| Arc::clone(&plan));
            Server::bind_ring_faulted(addr, config(addr), &peers, options(), faults)
                .expect("bind fleet node")
        })
        .collect();

    // Warm phase: topology-aware client sends each key to its primary.
    let references: Vec<String> = lines
        .iter()
        .zip(&keys)
        .map(|(line, &key)| {
            let owner = ring.owner(key).expect("non-empty ring");
            let response = call(owner, line);
            result_payload(&response)
        })
        .collect();
    if replicas >= 2 {
        await_replication(&servers, &keys, replicas);
    }

    // Degraded pass: the full workload again, `rounds` times, through
    // the two survivors only (a load balancer stops dialing a corpse);
    // the victim dies on the first forward that reaches it.
    let survivors: Vec<&String> = addrs.iter().filter(|a| **a != victim).collect();
    let mut latencies_ms = Vec::with_capacity(distinct * rounds);
    let mut ok = 0usize;
    let mut warm = 0usize;
    let start = Instant::now();
    for round in 0..rounds {
        for (i, (line, reference)) in lines.iter().zip(&references).enumerate() {
            let entry = survivors[i % survivors.len()];
            let reissued = reissue(line, (1000 + round * distinct + i) as u64);
            let began = Instant::now();
            let response = call(entry, &reissued);
            latencies_ms.push(began.elapsed().as_secs_f64() * 1e3);
            let parsed: Response = serde_json::from_str(&response).expect("response parses");
            if parsed.status == "ok" {
                ok += 1;
                if parsed.meta.cache_hit {
                    warm += 1;
                }
                assert_eq!(
                    result_payload(&response),
                    *reference,
                    "scenario {name}, round {round}, key {i}: a degraded \
                     answer diverged from its warm reference"
                );
            }
        }
    }
    let wall_secs = start.elapsed().as_secs_f64();
    assert!(plan.killed(), "the scripted kill must have fired");

    // The survivors' view of the failover traffic.
    let failovers: u64 = survivors
        .iter()
        .map(|entry| {
            let ring_line = serde_json::to_string(&Request {
                id: Some(9000),
                deadline_ms: None,
                no_cache: None,
                hop: None,
                trace: None,
                trace_ctx: None,
                explain: None,
                cmd: Command::Ring,
            })
            .expect("serializes");
            let parsed: Response =
                serde_json::from_str(&call(entry, &ring_line)).expect("ring parses");
            parsed
                .result
                .as_ref()
                .and_then(|r| r.get("failovers"))
                .and_then(serde::Value::as_u64)
                .unwrap_or(0)
        })
        .sum();
    drop(servers);

    let total = distinct * rounds;
    latencies_ms.sort_unstable_by(f64::total_cmp);
    Scenario {
        name: name.to_string(),
        replicas,
        requests: total,
        availability: ok as f64 / total as f64,
        warm_fraction: warm as f64 / total as f64,
        p50_ms: percentile(&latencies_ms, 50.0),
        p99_ms: percentile(&latencies_ms, 99.0),
        wall_secs,
        failovers,
        victim_owned: victim_primary,
    }
}

/// `d` distinct feasible threshold queries, one per instance, plus their
/// ring keys.
fn workload(n: usize, m: usize, distinct: usize) -> (Vec<String>, Vec<u128>) {
    let mut lines = Vec::with_capacity(distinct);
    let mut keys = Vec::with_capacity(distinct);
    for seed in 0..distinct {
        let inst = rpwf_gen::make_instance(
            PlatformClass::CommHomogeneous,
            FailureClass::Heterogeneous,
            n,
            m,
            seed as u64,
        );
        let safest = rpwf_algo::mono::minimize_failure(&inst.pipeline, &inst.platform);
        let request = Request {
            id: Some(seed as u64),
            deadline_ms: None,
            no_cache: None,
            hop: None,
            trace: None,
            trace_ctx: None,
            explain: None,
            cmd: Command::Solve {
                pipeline: inst.pipeline,
                platform: inst.platform,
                objective: Objective::MinFpUnderLatency(safest.latency * 1.5),
            },
        };
        keys.push(request.cmd.route_key().expect("solve routes"));
        lines.push(serde_json::to_string(&request).expect("serializes"));
    }
    (lines, keys)
}

/// Re-serializes a workload line under a fresh request id (so degraded
/// responses are distinguishable in traces from warm ones).
fn reissue(line: &str, id: u64) -> String {
    let mut request: Request = serde_json::from_str(line).expect("workload parses");
    request.id = Some(id);
    serde_json::to_string(&request).expect("serializes")
}

/// One request over a fresh connection; returns the final response line.
fn call(addr: &str, line: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    writeln!(stream, "{line}").expect("send");
    stream.flush().expect("flush");
    let mut reader = BufReader::new(stream);
    loop {
        let mut buf = String::new();
        reader.read_line(&mut buf).expect("response line");
        let response = buf.trim_end().to_string();
        let parsed: Response = serde_json::from_str(&response).expect("parses");
        if parsed.status != "part" {
            return response;
        }
    }
}

fn result_payload(line: &str) -> String {
    let parsed: Response = serde_json::from_str(line).expect("response parses");
    assert_eq!(parsed.status, "ok", "{:?}", parsed.error);
    serde_json::to_string(&parsed.result).expect("serializes")
}

fn reserve_addrs(count: usize) -> Vec<String> {
    let listeners: Vec<TcpListener> = (0..count)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("reserve port"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("addr").to_string())
        .collect()
}

/// Polls until every key is held by `copies` nodes (replica fills are
/// asynchronous pushes). Panics after ~10 s.
fn await_replication(servers: &[Server], keys: &[u128], copies: usize) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let cached: Vec<Vec<u128>> = servers
            .iter()
            .map(|s| s.service().front_cache_keys())
            .collect();
        let done = keys
            .iter()
            .all(|key| cached.iter().filter(|node| node.contains(key)).count() == copies);
        if done {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "replica fills did not converge to {copies} copies per key"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Nearest-rank percentile over an ascending-sorted sample.
fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted_ms.len() as f64).ceil() as usize;
    sorted_ms[rank.saturating_sub(1).min(sorted_ms.len() - 1)]
}

fn write_json(scenarios: &[Scenario]) {
    let doc = serde::Value::Map(vec![
        (
            "scenarios".into(),
            serde::Value::Seq(
                scenarios
                    .iter()
                    .map(|meas| {
                        serde::Value::Map(vec![
                            ("scenario".into(), serde::Value::Str(meas.name.clone())),
                            ("replicas".into(), serde::Value::UInt(meas.replicas as u64)),
                            ("requests".into(), serde::Value::UInt(meas.requests as u64)),
                            (
                                "availability".into(),
                                serde::Value::Float(meas.availability),
                            ),
                            (
                                "warm_fraction".into(),
                                serde::Value::Float(meas.warm_fraction),
                            ),
                            ("p50_ms".into(), serde::Value::Float(meas.p50_ms)),
                            ("p99_ms".into(), serde::Value::Float(meas.p99_ms)),
                            ("wall_secs".into(), serde::Value::Float(meas.wall_secs)),
                            ("failovers".into(), serde::Value::UInt(meas.failovers)),
                            (
                                "victim_owned_keys".into(),
                                serde::Value::UInt(meas.victim_owned as u64),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "p99_ratio_baseline_over_replicated".into(),
            serde::Value::Float(scenarios[1].p99_ms / scenarios[0].p99_ms.max(1e-9)),
        ),
        ("fault_plan_seed".into(), serde::Value::UInt(CHAOS_SEED)),
    ]);
    let text = serde_json::to_string_pretty(&doc).expect("serializes");
    if let Err(e) = std::fs::write("BENCH_chaos.json", text) {
        eprintln!("warning: could not write BENCH_chaos.json: {e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_chaos_runs() {
        // Serialized with the timing-sensitive tests: three servers'
        // worth of solving threads perturb microsecond-scale medians.
        let _timing = crate::experiments::TIMING_TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let tables = chaos(true);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].rows.len(), 2);
        let _ = std::fs::remove_file("BENCH_chaos.json");
    }
}
