//! # rpwf-bench — the experiment harness
//!
//! Regenerates every figure/worked example of the paper and the extended
//! evaluation defined in DESIGN.md §3. Each experiment is a library
//! function returning [`table::Table`]s plus a thin binary (`src/bin/`);
//! E12 (runtime scaling) is the criterion suite under `benches/`.
//!
//! Run a single experiment:
//! ```sh
//! cargo run --release -p rpwf-bench --bin exp_fig5
//! ```
//! or everything at once:
//! ```sh
//! cargo run --release -p rpwf-bench --bin exp_all
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod experiments;
pub mod table;

pub use table::Table;
