//! E10 — heuristic quality vs exact fronts.
fn main() {
    for table in rpwf_bench::experiments::heuristics_eval::heuristics() {
        table.print();
    }
}
