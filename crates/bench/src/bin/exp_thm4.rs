//! E6 — Theorem 4 shortest path vs brute force.
fn main() {
    for table in rpwf_bench::experiments::theorems::thm4() {
        table.print();
    }
}
