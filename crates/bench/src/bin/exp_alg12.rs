//! E4 — Algorithms 1 & 2 vs the exhaustive oracle.
fn main() {
    for table in rpwf_bench::experiments::theorems::alg12() {
        table.print();
    }
}
