//! E14 — serving-layer throughput (writes `BENCH_server.json`).
fn main() {
    for table in rpwf_bench::experiments::server_throughput::server_throughput() {
        table.print();
    }
}
