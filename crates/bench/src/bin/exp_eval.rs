//! E15 — incremental vs full neighbor evaluation (writes
//! `BENCH_eval.json`). Pass `--smoke` for the tiny CI-sized run.
fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    for table in rpwf_bench::experiments::eval_incremental::eval_incremental(smoke) {
        table.print();
    }
}
