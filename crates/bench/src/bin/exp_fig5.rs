//! E2 — regenerates the Figure 5 bi-criteria table (0.64 vs 0.1966).
fn main() {
    for table in rpwf_bench::experiments::figures::fig5() {
        table.print();
    }
}
