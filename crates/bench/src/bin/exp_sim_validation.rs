//! E11 — simulator certification of the analytic formulas.
fn main() {
    for table in rpwf_bench::experiments::simulation::sim_validation() {
        table.print();
    }
}
