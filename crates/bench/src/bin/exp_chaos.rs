//! E20 — fleet fault tolerance under scripted node death: replicated
//! ownership vs a no-replication baseline (writes `BENCH_chaos.json`).
//! Pass `--smoke` for the tiny CI-sized run.
fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    for table in rpwf_bench::experiments::chaos::chaos(smoke) {
        table.print();
    }
}
