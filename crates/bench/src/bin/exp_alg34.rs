//! E5 — Algorithms 3 & 4 vs the exhaustive oracle.
fn main() {
    for table in rpwf_bench::experiments::theorems::alg34() {
        table.print();
    }
}
