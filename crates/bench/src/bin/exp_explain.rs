//! E23 — cold vs warm `explain` next to the cold solve it explains
//! (writes `BENCH_explain.json`). Pass `--smoke` for the tiny CI-sized
//! run.
fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    for table in rpwf_bench::experiments::explain::explain(smoke) {
        table.print();
    }
}
