//! E13 — tri-criteria JPEG exploration (extension).
fn main() {
    for table in rpwf_bench::experiments::tricriteria::tricriteria() {
        table.print();
    }
}
