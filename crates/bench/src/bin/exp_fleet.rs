//! E17 — fleet cache partitioning over the consistent-hash ring (writes
//! `BENCH_fleet.json`). Pass `--smoke` for the tiny CI-sized run.
fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    for table in rpwf_bench::experiments::fleet::fleet(smoke) {
        table.print();
    }
}
