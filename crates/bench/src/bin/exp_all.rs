//! Runs every experiment (E1–E11, E13) and prints all result tables.
//!
//! Pass `--json` to emit the tables as a single JSON document instead
//! (machine-readable form used to refresh EXPERIMENTS.md).

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let all = rpwf_bench::experiments::run_all();
    if json {
        let doc: Vec<(&str, &Vec<rpwf_bench::Table>)> =
            all.iter().map(|(id, tables)| (*id, tables)).collect();
        println!(
            "{}",
            serde_json::to_string_pretty(&doc).expect("tables serialize")
        );
        return;
    }
    for (id, tables) in all {
        println!("######## {id} ########\n");
        for table in tables {
            table.print();
        }
    }
}
