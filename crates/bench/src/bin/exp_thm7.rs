//! E8 — the 2-PARTITION reduction gadget of Theorem 7.
fn main() {
    for table in rpwf_bench::experiments::hardness::thm7() {
        table.print();
    }
}
