//! E3 — Theorem 1 (min FP) vs the exhaustive oracle.
fn main() {
    for table in rpwf_bench::experiments::theorems::thm1() {
        table.print();
    }
}
