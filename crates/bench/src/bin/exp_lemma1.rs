//! E9 — Lemma 1 single-interval coverage of Pareto fronts.
fn main() {
    for table in rpwf_bench::experiments::theorems::lemma1() {
        table.print();
    }
}
