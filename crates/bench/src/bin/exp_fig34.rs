//! E1 — regenerates the Figures 3/4 latency table (105 vs 7).
fn main() {
    for table in rpwf_bench::experiments::figures::fig34() {
        table.print();
    }
}
