//! E22 — overload shedding: 10× offered load against the
//! admission-controlled reactor (writes `BENCH_overload.json`).
//! Pass `--smoke` for the tiny CI-sized run.
fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    for table in rpwf_bench::experiments::overload::overload(smoke) {
        table.print();
    }
}
