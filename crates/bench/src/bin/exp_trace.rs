//! E19 — Request-tracing overhead: untraced vs traced `Engine::solve`
//! (writes `BENCH_trace.json`). Pass `--smoke` for the tiny CI-sized run.
fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    for table in rpwf_bench::experiments::trace_overhead::trace_overhead(smoke) {
        table.print();
    }
}
