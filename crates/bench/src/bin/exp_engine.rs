//! E18 — Engine dispatch overhead vs direct backend calls (writes
//! `BENCH_engine.json`). Pass `--smoke` for the tiny CI-sized run.
fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    for table in rpwf_bench::experiments::engine_overhead::engine_overhead(smoke) {
        table.print();
    }
}
