//! E7 — the TSP reduction gadget of Theorem 3.
fn main() {
    for table in rpwf_bench::experiments::hardness::thm3() {
        table.print();
    }
}
