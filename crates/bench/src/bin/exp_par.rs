//! E21 — cooperative parallel exact search: thread-count speedup curve
//! and largest-m-solved-within-budget probe (writes `BENCH_par.json`).
//! Pass `--smoke` for the tiny CI-sized run.
fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    for table in rpwf_bench::experiments::parallel_search::parallel_search(smoke) {
        table.print();
    }
}
