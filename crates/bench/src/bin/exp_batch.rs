//! E16 — batch amortization via front grouping (writes
//! `BENCH_batch.json`). Pass `--smoke` for the tiny CI-sized run.
fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    for table in rpwf_bench::experiments::batch_front::batch_front(smoke) {
        table.print();
    }
}
