//! Plain-text result tables for the experiment binaries.
//!
//! Every experiment prints one or more [`Table`]s — the "rows the paper
//! reports" (DESIGN.md §3). Tables also serialize to JSON so EXPERIMENTS.md
//! can be regenerated mechanically.

use serde::{Deserialize, Serialize};

/// A titled, column-aligned result table.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    /// Table caption (e.g. `E2 / Figure 5 — one vs two intervals`).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row-major cells, already formatted.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes printed below the table.
    pub notes: Vec<String>,
}

impl Table {
    /// Starts a table.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends one row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Appends a note shown under the table.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Renders the table as aligned plain text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("  ");
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:>w$}", w = w));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        out.push_str(&format!("  {}\n", "-".repeat(total)));
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        for note in &self.notes {
            out.push_str(&format!("  note: {note}\n"));
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Formats an `f64` compactly for table cells.
#[must_use]
pub fn fnum(v: f64) -> String {
    if v == 0.0 {
        return "0".into();
    }
    let a = v.abs();
    if (1e-3..1e6).contains(&a) {
        format!("{v:.4}")
    } else {
        format!("{v:.3e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_aligned_and_complete() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["short".into(), "1.0".into()]);
        t.row(vec!["a-much-longer-name".into(), "2.25".into()]);
        t.note("hello");
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("a-much-longer-name"));
        assert!(s.contains("note: hello"));
        // All data rows align to the same width.
        let lines: Vec<&str> = s
            .lines()
            .filter(|l| l.contains("1.0") || l.contains("2.25"))
            .collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].len(), lines[1].len());
    }

    #[test]
    fn fnum_ranges() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(1.5), "1.5000");
        assert!(fnum(1e-9).contains('e'));
        assert!(fnum(1e9).contains('e'));
    }
}
