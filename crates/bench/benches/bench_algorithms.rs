//! E12 — runtime scaling of the paper's polynomial algorithms
//! (Algorithms 1–4) with platform size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rpwf_algo::bicriteria::{comm_homog, fully_homog};
use rpwf_core::prelude::*;
use rpwf_gen::{PipelineGen, PlatformGen};
use std::hint::black_box;

fn bench_polynomial_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("polynomial_algorithms");
    group.sample_size(20);
    for &m in &[8usize, 64, 256] {
        let mut rng = StdRng::seed_from_u64(1);
        let pipeline = PipelineGen::balanced(16).sample(&mut rng);

        let fh = PlatformGen::new(
            m,
            PlatformClass::FullyHomogeneous,
            FailureClass::Homogeneous,
        )
        .sample(&mut rng);
        // Mid-range thresholds so the algorithms neither trivially accept
        // nor instantly bail.
        let l_mid = {
            let k1 = fully_homog::min_fp_under_latency(&pipeline, &fh, f64::INFINITY).unwrap();
            k1.latency * 0.6
        };
        group.bench_with_input(BenchmarkId::new("alg1_fully_homog", m), &m, |b, _| {
            b.iter(|| black_box(fully_homog::min_fp_under_latency(&pipeline, &fh, l_mid)))
        });
        group.bench_with_input(BenchmarkId::new("alg2_fully_homog", m), &m, |b, _| {
            b.iter(|| black_box(fully_homog::min_latency_under_fp(&pipeline, &fh, 0.05)))
        });

        let ch = PlatformGen::new(m, PlatformClass::CommHomogeneous, FailureClass::Homogeneous)
            .sample(&mut rng);
        let l_mid_ch = {
            let all = comm_homog::min_fp_under_latency(&pipeline, &ch, f64::INFINITY).unwrap();
            all.latency * 0.6
        };
        group.bench_with_input(BenchmarkId::new("alg3_comm_homog", m), &m, |b, _| {
            b.iter(|| black_box(comm_homog::min_fp_under_latency(&pipeline, &ch, l_mid_ch)))
        });
        group.bench_with_input(BenchmarkId::new("alg4_comm_homog", m), &m, |b, _| {
            b.iter(|| black_box(comm_homog::min_latency_under_fp(&pipeline, &ch, 0.05)))
        });
    }
    group.finish();
}

fn bench_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics");
    group.sample_size(30);
    let mut rng = StdRng::seed_from_u64(2);
    for &(n, m) in &[(8usize, 16usize), (32, 64), (128, 256)] {
        let pipeline = PipelineGen::balanced(n).sample(&mut rng);
        let platform = PlatformGen::new(
            m,
            PlatformClass::FullyHeterogeneous,
            FailureClass::Heterogeneous,
        )
        .sample(&mut rng);
        let mapping = rpwf_algo::heuristics::neighborhood::random_mapping(n, m, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("latency_eq2", format!("n{n}m{m}")),
            &(n, m),
            |b, _| b.iter(|| black_box(latency(&mapping, &pipeline, &platform))),
        );
        group.bench_with_input(
            BenchmarkId::new("failure_probability", format!("n{n}m{m}")),
            &(n, m),
            |b, _| b.iter(|| black_box(failure_probability(&mapping, &platform))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_polynomial_algorithms, bench_metrics);
criterion_main!(benches);
