//! E12 — exact-solver scaling: the brute-force oracle vs the bitmask DP vs
//! the specialized latency DPs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rpwf_algo::exact::{
    min_latency_interval, min_latency_one_to_one, pareto_front_comm_homog, Exhaustive,
};
use rpwf_algo::mono::general_mapping_shortest_path;
use rpwf_core::prelude::*;
use rpwf_gen::{PipelineGen, PlatformGen};
use std::hint::black_box;

fn bench_oracle_vs_dp(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_solvers");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(3);
    for &(n, m) in &[(3usize, 4usize), (4, 5)] {
        let pipeline = PipelineGen::balanced(n).sample(&mut rng);
        let platform = PlatformGen::new(
            m,
            PlatformClass::CommHomogeneous,
            FailureClass::Heterogeneous,
        )
        .sample(&mut rng);
        group.bench_with_input(
            BenchmarkId::new("exhaustive_front", format!("n{n}m{m}")),
            &(n, m),
            |b, _| b.iter(|| black_box(Exhaustive::new(&pipeline, &platform).pareto_front())),
        );
        group.bench_with_input(
            BenchmarkId::new("bitmask_dp_front", format!("n{n}m{m}")),
            &(n, m),
            |b, _| b.iter(|| black_box(pareto_front_comm_homog(&pipeline, &platform))),
        );
    }
    // The DP keeps going where the oracle has long exploded.
    for &(n, m) in &[(6usize, 10usize), (8, 12)] {
        let pipeline = PipelineGen::balanced(n).sample(&mut rng);
        let platform = PlatformGen::new(
            m,
            PlatformClass::CommHomogeneous,
            FailureClass::Heterogeneous,
        )
        .sample(&mut rng);
        group.bench_with_input(
            BenchmarkId::new("bitmask_dp_front", format!("n{n}m{m}")),
            &(n, m),
            |b, _| b.iter(|| black_box(pareto_front_comm_homog(&pipeline, &platform))),
        );
    }
    group.finish();
}

fn bench_latency_dps(c: &mut Criterion) {
    let mut group = c.benchmark_group("latency_solvers");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(4);
    for &(n, m) in &[(6usize, 8usize), (8, 12), (10, 14)] {
        let pipeline = PipelineGen::balanced(n).sample(&mut rng);
        let platform = PlatformGen::new(
            m,
            PlatformClass::FullyHeterogeneous,
            FailureClass::Heterogeneous,
        )
        .sample(&mut rng);
        group.bench_with_input(
            BenchmarkId::new("thm4_shortest_path", format!("n{n}m{m}")),
            &(n, m),
            |b, _| b.iter(|| black_box(general_mapping_shortest_path(&pipeline, &platform))),
        );
        group.bench_with_input(
            BenchmarkId::new("interval_dp", format!("n{n}m{m}")),
            &(n, m),
            |b, _| b.iter(|| black_box(min_latency_interval(&pipeline, &platform))),
        );
        if n <= m {
            group.bench_with_input(
                BenchmarkId::new("held_karp_one_to_one", format!("n{n}m{m}")),
                &(n, m),
                |b, _| b.iter(|| black_box(min_latency_one_to_one(&pipeline, &platform))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_oracle_vs_dp, bench_latency_dps);
criterion_main!(benches);
