//! E12 — heuristic runtime on instances beyond exact reach.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rpwf_algo::heuristics::{
    annealing::Annealing, local_search::LocalSearch, random_search::RandomSearch,
    single_interval::best_single_interval, split_dp,
};
use rpwf_algo::Objective;
use rpwf_core::prelude::*;
use rpwf_gen::{PipelineGen, PlatformGen};
use std::hint::black_box;

fn bench_heuristics(c: &mut Criterion) {
    let mut group = c.benchmark_group("heuristics");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(5);
    for &(n, m) in &[(8usize, 16usize), (16, 32)] {
        let pipeline = PipelineGen::balanced(n).sample(&mut rng);
        let platform = PlatformGen::new(
            m,
            PlatformClass::CommHomogeneous,
            FailureClass::Heterogeneous,
        )
        .sample(&mut rng);
        // A loose-but-binding threshold: halfway between the latency floor
        // and the all-replica ceiling.
        let floor = rpwf_algo::mono::minimize_latency_comm_homog(&pipeline, &platform)
            .expect("comm-homog")
            .latency;
        let ceiling = rpwf_algo::mono::minimize_failure(&pipeline, &platform).latency;
        let objective = Objective::MinFpUnderLatency((floor + ceiling) / 2.0);

        group.bench_with_input(
            BenchmarkId::new("single_interval", format!("n{n}m{m}")),
            &(n, m),
            |b, _| b.iter(|| black_box(best_single_interval(&pipeline, &platform, objective))),
        );
        group.bench_with_input(
            BenchmarkId::new("split_dp", format!("n{n}m{m}")),
            &(n, m),
            |b, _| b.iter(|| black_box(split_dp::solve(&pipeline, &platform, objective))),
        );
        group.bench_with_input(
            BenchmarkId::new("random_search_2k", format!("n{n}m{m}")),
            &(n, m),
            |b, _| {
                let rs = RandomSearch {
                    samples: 2000,
                    seed: 1,
                };
                b.iter(|| black_box(rs.solve(&pipeline, &platform, objective)))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("local_search", format!("n{n}m{m}")),
            &(n, m),
            |b, _| {
                let ls = LocalSearch {
                    random_restarts: 2,
                    max_steps: 40,
                    seed: 1,
                    ..Default::default()
                };
                b.iter(|| black_box(ls.solve(&pipeline, &platform, objective)))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("annealing", format!("n{n}m{m}")),
            &(n, m),
            |b, _| {
                let sa = Annealing {
                    epochs: 20,
                    moves_per_epoch: 40,
                    seed: 1,
                    ..Default::default()
                };
                b.iter(|| black_box(sa.solve(&pipeline, &platform, objective)))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_heuristics);
criterion_main!(benches);
