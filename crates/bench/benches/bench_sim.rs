//! E12 — simulator throughput: events per second of the DES engine and
//! Monte Carlo trial rates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rpwf_core::prelude::*;
use rpwf_gen::{PipelineGen, PlatformGen};
use rpwf_sim::{simulate, FailureModel, FailureScenario, MonteCarlo, SimConfig};
use std::hint::black_box;

fn bench_des(c: &mut Criterion) {
    let mut group = c.benchmark_group("des");
    group.sample_size(15);
    let mut rng = StdRng::seed_from_u64(6);
    for &(n, m, datasets) in &[(4usize, 8usize, 10usize), (8, 16, 50), (8, 16, 200)] {
        let pipeline = PipelineGen::balanced(n).sample(&mut rng);
        let platform = PlatformGen::new(
            m,
            PlatformClass::CommHomogeneous,
            FailureClass::Heterogeneous,
        )
        .sample(&mut rng);
        let mapping = rpwf_algo::heuristics::neighborhood::random_mapping(n, m, &mut rng);
        let arrivals = vec![0.0; datasets];
        // Count events once to report true event throughput.
        let events = simulate(
            &pipeline,
            &platform,
            &mapping,
            &FailureScenario::all_alive(m),
            SimConfig::worst_case(),
            &arrivals,
        )
        .events;
        group.throughput(Throughput::Elements(events));
        group.bench_with_input(
            BenchmarkId::new("stream", format!("n{n}m{m}d{datasets}")),
            &datasets,
            |b, _| {
                b.iter(|| {
                    black_box(simulate(
                        &pipeline,
                        &platform,
                        &mapping,
                        &FailureScenario::all_alive(m),
                        SimConfig::worst_case(),
                        &arrivals,
                    ))
                })
            },
        );
    }
    group.finish();
}

fn bench_monte_carlo(c: &mut Criterion) {
    let mut group = c.benchmark_group("monte_carlo");
    group.sample_size(10);
    let pipeline = rpwf_gen::figure5_pipeline();
    let platform = rpwf_gen::figure5_platform();
    let mapping = IntervalMapping::new(
        vec![Interval::singleton(0), Interval::singleton(1)],
        vec![vec![ProcId(0)], (1..=10).map(ProcId).collect()],
        2,
        11,
    )
    .expect("valid");
    for &trials in &[1_000usize, 10_000] {
        group.throughput(Throughput::Elements(trials as u64));
        group.bench_with_input(
            BenchmarkId::new("figure5", trials),
            &trials,
            |b, &trials| {
                let mc = MonteCarlo {
                    trials,
                    model: FailureModel::BernoulliAtStart,
                    ..Default::default()
                };
                b.iter(|| black_box(mc.run(&pipeline, &platform, &mapping)))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_des, bench_monte_carlo);
criterion_main!(benches);
