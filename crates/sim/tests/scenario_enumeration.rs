//! Exact cross-validation of the failure-probability formula: enumerate
//! *every* failure scenario (2^m), weight it by its Bernoulli probability,
//! and compare the exact success mass — and the per-scenario simulator
//! verdicts — against the closed form.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rpwf_core::num::approx_eq;
use rpwf_core::prelude::*;
use rpwf_gen::{PipelineGen, PlatformGen};
use rpwf_sim::{simulate_one, FailureScenario, SimConfig};

/// All scenarios for `m` processors as bitmasks (bit set = dead).
fn scenario_from_mask(m: usize, mask: u32) -> FailureScenario {
    let dead: Vec<ProcId> = (0..m)
        .filter(|&u| mask & (1 << u) != 0)
        .map(ProcId::new)
        .collect();
    FailureScenario::with_dead(m, &dead)
}

fn scenario_probability(platform: &Platform, mask: u32) -> f64 {
    platform
        .procs()
        .map(|p| {
            let fp = platform.failure_prob(p);
            if mask & (1 << p.index()) != 0 {
                fp
            } else {
                1.0 - fp
            }
        })
        .product()
}

#[test]
fn enumerated_success_mass_equals_analytic_reliability() {
    let mut rng = StdRng::seed_from_u64(3100);
    for _ in 0..10 {
        // Draw the pipeline too so the RNG stream matches the other suites.
        let _pipe = PipelineGen::balanced(3).sample(&mut rng);
        let pf = PlatformGen::new(
            5,
            PlatformClass::CommHomogeneous,
            FailureClass::Heterogeneous,
        )
        .sample(&mut rng);
        let mapping = rpwf_algo::heuristics::neighborhood::random_mapping(3, 5, &mut rng);

        let mut success_mass = 0.0f64;
        let mut total_mass = 0.0f64;
        for mask in 0u32..(1 << 5) {
            let prob = scenario_probability(&pf, mask);
            total_mass += prob;
            let scenario = scenario_from_mask(5, mask);
            let alive_everywhere = (0..mapping.n_intervals())
                .all(|j| mapping.alloc(j).iter().any(|&p| scenario.alive(p)));
            if alive_everywhere {
                success_mass += prob;
            }
        }
        assert!(approx_eq(total_mass, 1.0, 1e-9));
        let analytic = reliability(&mapping, &pf);
        assert!(
            approx_eq(success_mass, analytic, 1e-9),
            "enumerated {success_mass} vs analytic {analytic}"
        );
    }
}

#[test]
fn simulator_verdict_matches_enumeration_on_every_scenario() {
    let mut rng = StdRng::seed_from_u64(3200);
    let pipe = PipelineGen::balanced(3).sample(&mut rng);
    let pf = PlatformGen::new(
        4,
        PlatformClass::FullyHeterogeneous,
        FailureClass::Heterogeneous,
    )
    .sample(&mut rng);
    let mapping = rpwf_algo::heuristics::neighborhood::random_mapping(3, 4, &mut rng);
    let bound = latency(&mapping, &pipe, &pf);

    for mask in 0u32..(1 << 4) {
        let scenario = scenario_from_mask(4, mask);
        let expected_success =
            (0..mapping.n_intervals()).all(|j| mapping.alloc(j).iter().any(|&p| scenario.alive(p)));
        let outcome = simulate_one(&pipe, &pf, &mapping, &scenario, SimConfig::worst_case());
        assert_eq!(outcome.is_success(), expected_success, "mask {mask:#b}");
        if let Some(lat) = outcome.latency() {
            assert!(lat <= bound + 1e-9, "mask {mask:#b}: {lat} > {bound}");
        }
    }
}

#[test]
fn adversarial_scenario_attains_the_bound_exactly() {
    // Kill every replica except the bottleneck one in each interval: the
    // simulated latency equals equation (2) even under real failures.
    let pipe = rpwf_gen::figure5_pipeline();
    let pf = rpwf_gen::figure5_platform();
    let mapping = IntervalMapping::new(
        vec![Interval::singleton(0), Interval::singleton(1)],
        vec![vec![ProcId(0)], (1..=10).map(ProcId).collect()],
        2,
        11,
    )
    .unwrap();
    let bound = latency(&mapping, &pipe, &pf);

    // All fast replicas are identical; keep only the highest-id one dead…
    // rather, kill P1..P9 so that P10 must be served — the serialized sends
    // to dead replicas still cost the sender, so the bound is attained.
    let dead: Vec<ProcId> = (1..=9).map(ProcId).collect();
    let scenario = FailureScenario::with_dead(11, &dead);
    let outcome = simulate_one(&pipe, &pf, &mapping, &scenario, SimConfig::worst_case());
    assert!(approx_eq(outcome.latency().unwrap(), bound, 1e-9));
}
