//! Monte Carlo estimation of reliability and latency distributions.
//!
//! Samples failure scenarios from a [`FailureModel`], runs the full
//! event-driven simulation per trial, and aggregates success rate (with a
//! Wilson 95% confidence interval) and latency statistics. The estimated
//! success rate converges to the analytic `1 − FP` of
//! [`rpwf_core::metrics::failure_probability`] — experiment E11 — and the
//! observed latency maximum never exceeds the equation-(2) bound.
//!
//! Trials are independent; they are sharded across crossbeam scoped threads
//! with per-shard derived seeds, so the aggregate is deterministic for a
//! given `(seed, trials, threads)` triple — and independent of `threads`
//! because each trial's RNG is seeded individually.

use crate::failure::FailureModel;
use crate::pipeline::{simulate_one, DatasetOutcome, SimConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rpwf_core::budget::Budget;
use rpwf_core::mapping::IntervalMapping;
use rpwf_core::platform::Platform;
use rpwf_core::stage::Pipeline;
use serde::{Deserialize, Serialize};

/// Monte Carlo driver configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MonteCarlo {
    /// Number of independent trials.
    pub trials: usize,
    /// Base seed; trial `i` uses `seed ⊕ splitmix(i)`.
    pub seed: u64,
    /// The failure model sampled per trial.
    pub model: FailureModel,
    /// Simulation configuration for each trial.
    pub config: SimConfig,
    /// Worker threads (0 = auto).
    pub threads: usize,
}

impl Default for MonteCarlo {
    fn default() -> Self {
        MonteCarlo {
            trials: 10_000,
            seed: 0xD15EA5E,
            model: FailureModel::BernoulliAtStart,
            config: SimConfig::worst_case(),
            threads: 0,
        }
    }
}

/// Aggregated Monte Carlo results.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct McReport {
    /// Trials run.
    pub trials: usize,
    /// Successful trials.
    pub successes: usize,
    /// `successes / trials`.
    pub success_rate: f64,
    /// Wilson 95% confidence interval on the success probability.
    pub wilson95: (f64, f64),
    /// Latency statistics over successful trials.
    pub latency: LatencyStats,
}

/// Streaming summary statistics.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Number of observations.
    pub count: usize,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl LatencyStats {
    fn empty() -> Self {
        LatencyStats {
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            mean: 0.0,
        }
    }

    fn push(&mut self, x: f64) {
        self.count += 1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        self.mean += (x - self.mean) / self.count as f64;
    }

    fn merge(mut self, other: LatencyStats) -> LatencyStats {
        if other.count == 0 {
            return self;
        }
        if self.count == 0 {
            return other;
        }
        let total = self.count + other.count;
        self.mean =
            (self.mean * self.count as f64 + other.mean * other.count as f64) / total as f64;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count = total;
        self
    }
}

/// Wilson score interval for a binomial proportion at z = 1.96.
#[must_use]
pub fn wilson95(successes: usize, trials: usize) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let z = 1.959_963_984_540_054f64;
    let n = trials as f64;
    let phat = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (phat + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * ((phat * (1.0 - phat) / n + z2 / (4.0 * n * n)).sqrt());
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// SplitMix64 — decorrelates per-trial seeds derived from a base seed.
#[must_use]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl MonteCarlo {
    /// Runs the estimation.
    #[must_use]
    pub fn run(
        &self,
        pipeline: &Pipeline,
        platform: &Platform,
        mapping: &IntervalMapping,
    ) -> McReport {
        self.run_with_budget(pipeline, platform, mapping, &Budget::unlimited())
            .0
    }

    /// Runs the estimation under a deadline/cancellation budget, polled
    /// every 64 trials per worker. Returns the report over the trials
    /// actually completed plus a completeness flag; a cut-off report is
    /// still a valid (smaller-sample) estimate because each trial is
    /// seeded independently.
    #[must_use]
    pub fn run_with_budget(
        &self,
        pipeline: &Pipeline,
        platform: &Platform,
        mapping: &IntervalMapping,
        budget: &Budget,
    ) -> (McReport, bool) {
        let threads = if self.threads == 0 {
            std::thread::available_parallelism()
                .map_or(1, std::num::NonZeroUsize::get)
                .min(self.trials.max(1))
        } else {
            self.threads
        };
        let chunk = self.trials.div_ceil(threads.max(1));
        let limited = budget.is_limited();

        let mut partials: Vec<Option<(usize, usize, LatencyStats)>> =
            (0..threads).map(|_| None).collect();
        crossbeam::thread::scope(|scope| {
            for (t, slot) in partials.iter_mut().enumerate() {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(self.trials);
                scope.spawn(move |_| {
                    let mut attempted = 0usize;
                    let mut successes = 0usize;
                    let mut stats = LatencyStats::empty();
                    for trial in lo..hi {
                        if limited && trial & 0x3F == 0 && budget.is_exhausted() {
                            break;
                        }
                        attempted += 1;
                        let mut rng = StdRng::seed_from_u64(self.seed ^ splitmix64(trial as u64));
                        let scenario = self.model.sample(platform, &mut rng);
                        match simulate_one(pipeline, platform, mapping, &scenario, self.config) {
                            DatasetOutcome::Success { latency, .. } => {
                                successes += 1;
                                stats.push(latency);
                            }
                            DatasetOutcome::Failed { .. } => {}
                        }
                    }
                    *slot = Some((attempted, successes, stats));
                });
            }
        })
        .expect("monte carlo workers do not panic");

        let mut attempted = 0usize;
        let mut successes = 0usize;
        let mut stats = LatencyStats::empty();
        for (a, s, st) in partials.into_iter().flatten() {
            attempted += a;
            successes += s;
            stats = stats.merge(st);
        }
        let report = McReport {
            trials: attempted,
            successes,
            success_rate: successes as f64 / attempted.max(1) as f64,
            wilson95: wilson95(successes, attempted),
            latency: stats,
        };
        (report, attempted == self.trials)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpwf_core::mapping::Interval;
    use rpwf_core::metrics::{failure_probability, latency};
    use rpwf_core::platform::ProcId;

    fn p(i: u32) -> ProcId {
        ProcId(i)
    }

    #[test]
    fn budgeted_run_complete_matches_plain_and_cutoff_shrinks_sample() {
        let pipe = Pipeline::uniform(2, 1.0, 1.0).unwrap();
        let pf = Platform::fully_homogeneous(2, 1.0, 1.0, 0.3).unwrap();
        let mapping = IntervalMapping::new(
            vec![Interval::new(0, 1).unwrap()],
            vec![vec![p(0), p(1)]],
            2,
            2,
        )
        .unwrap();
        let mc = MonteCarlo {
            trials: 2_000,
            ..Default::default()
        };
        let plain = mc.run(&pipe, &pf, &mapping);
        let (budgeted, complete) = mc.run_with_budget(&pipe, &pf, &mapping, &Budget::unlimited());
        assert!(complete);
        assert_eq!(budgeted, plain);
        assert_eq!(budgeted.trials, 2_000);

        let (cutoff, complete) = mc.run_with_budget(
            &pipe,
            &pf,
            &mapping,
            &Budget::with_deadline(std::time::Duration::ZERO),
        );
        assert!(!complete);
        assert!(
            cutoff.trials < 2_000,
            "expired budget must shrink the sample"
        );
        assert!(cutoff.success_rate >= 0.0 && cutoff.success_rate <= 1.0);
    }

    #[test]
    fn wilson_basic_properties() {
        let (lo, hi) = wilson95(50, 100);
        assert!(lo < 0.5 && 0.5 < hi);
        assert!(hi - lo < 0.25);
        let (lo, hi) = wilson95(0, 100);
        assert!(lo <= 1e-12);
        assert!(hi < 0.06);
        let (lo, hi) = wilson95(100, 100);
        assert!(lo > 0.94);
        assert_eq!(hi, 1.0);
        assert_eq!(wilson95(0, 0), (0.0, 1.0));
    }

    #[test]
    fn success_rate_converges_to_analytic_reliability() {
        let pipe = rpwf_gen::figure5_pipeline();
        let pf = rpwf_gen::figure5_platform();
        let mapping = IntervalMapping::new(
            vec![Interval::singleton(0), Interval::singleton(1)],
            vec![vec![p(0)], (1..=10).map(p).collect()],
            2,
            11,
        )
        .unwrap();
        let analytic = 1.0 - failure_probability(&mapping, &pf);
        let mc = MonteCarlo {
            trials: 20_000,
            ..Default::default()
        };
        let report = mc.run(&pipe, &pf, &mapping);
        // The analytic value must land inside the 95% Wilson band
        // (seeded run: deterministic, no flakiness).
        assert!(
            report.wilson95.0 <= analytic && analytic <= report.wilson95.1,
            "analytic {analytic} outside {:?}",
            report.wilson95
        );
    }

    #[test]
    fn observed_latencies_never_exceed_eq2() {
        let pipe = rpwf_gen::figure5_pipeline();
        let pf = rpwf_gen::figure5_platform();
        let mapping = IntervalMapping::new(
            vec![Interval::singleton(0), Interval::singleton(1)],
            vec![vec![p(0)], (1..=10).map(p).collect()],
            2,
            11,
        )
        .unwrap();
        let bound = latency(&mapping, &pipe, &pf);
        let report = MonteCarlo {
            trials: 5_000,
            ..Default::default()
        }
        .run(&pipe, &pf, &mapping);
        assert!(report.latency.max <= bound + 1e-9);
        assert!(report.latency.min > 0.0);
        assert!(report.latency.mean <= report.latency.max);
    }

    #[test]
    fn deterministic_and_thread_count_invariant() {
        let pipe = rpwf_gen::figure5_pipeline();
        let pf = rpwf_gen::figure5_platform();
        let mapping = IntervalMapping::single_interval(2, (1..=4).map(p).collect(), 11).unwrap();
        let base = MonteCarlo {
            trials: 2_000,
            seed: 42,
            ..Default::default()
        };
        let one = MonteCarlo { threads: 1, ..base }.run(&pipe, &pf, &mapping);
        let four = MonteCarlo { threads: 4, ..base }.run(&pipe, &pf, &mapping);
        assert_eq!(one.successes, four.successes);
        assert!((one.latency.mean - four.latency.mean).abs() < 1e-9);
    }

    #[test]
    fn zero_failure_platform_always_succeeds() {
        let pipe = rpwf_gen::figure3_pipeline();
        let pf = Platform::fully_homogeneous(3, 1.0, 1.0, 0.0).unwrap();
        let mapping = IntervalMapping::single_interval(2, vec![p(0), p(1)], 3).unwrap();
        let report = MonteCarlo {
            trials: 500,
            ..Default::default()
        }
        .run(&pipe, &pf, &mapping);
        assert_eq!(report.successes, 500);
        assert_eq!(report.success_rate, 1.0);
    }

    #[test]
    fn doomed_platform_always_fails() {
        let pipe = rpwf_gen::figure3_pipeline();
        let pf = Platform::fully_homogeneous(2, 1.0, 1.0, 1.0).unwrap();
        let mapping = IntervalMapping::single_interval(2, vec![p(0), p(1)], 2).unwrap();
        let report = MonteCarlo {
            trials: 200,
            ..Default::default()
        }
        .run(&pipe, &pf, &mapping);
        assert_eq!(report.successes, 0);
        assert_eq!(report.latency.count, 0);
    }
}
