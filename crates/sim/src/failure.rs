//! Failure injection.
//!
//! The paper's semantics (§2.1): each processor has a constant probability
//! `fp_u` of breaking down at some point during the (very long) execution of
//! the workflow; the latency guarantee is driven by the data sets processed
//! *after* the failures. The corresponding scenario model is
//! Bernoulli-at-start: a processor is either alive for the whole run or
//! failed from the beginning. An exponential-lifetime model is provided as
//! an extension for mid-run failure studies.

use rand::Rng;
use rpwf_core::platform::{Platform, ProcId};
use serde::{Deserialize, Serialize};

/// A concrete failure outcome for one simulation run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FailureScenario {
    /// Time at which each processor dies; `+∞` = survives the whole run.
    /// Paper semantics uses only `0.0` (dead from the start) or `+∞`.
    pub death_time: Vec<f64>,
}

impl FailureScenario {
    /// Everyone survives.
    #[must_use]
    pub fn all_alive(m: usize) -> Self {
        FailureScenario {
            death_time: vec![f64::INFINITY; m],
        }
    }

    /// Exactly the given processors are dead from the start.
    #[must_use]
    pub fn with_dead(m: usize, dead: &[ProcId]) -> Self {
        let mut death_time = vec![f64::INFINITY; m];
        for &p in dead {
            death_time[p.index()] = 0.0;
        }
        FailureScenario { death_time }
    }

    /// Is `p` alive at time `t`?
    #[inline]
    #[must_use]
    pub fn alive_at(&self, p: ProcId, t: f64) -> bool {
        t < self.death_time[p.index()]
    }

    /// Is `p` alive for the entire run (paper semantics query)?
    #[inline]
    #[must_use]
    pub fn alive(&self, p: ProcId) -> bool {
        self.death_time[p.index()] == f64::INFINITY
    }

    /// Ids of processors dead from the start.
    #[must_use]
    pub fn dead_procs(&self) -> Vec<ProcId> {
        self.death_time
            .iter()
            .enumerate()
            .filter(|&(_, &t)| t == 0.0)
            .map(|(i, _)| ProcId::new(i))
            .collect()
    }
}

/// Stochastic failure models that sample [`FailureScenario`]s.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum FailureModel {
    /// Paper semantics: processor `u` is dead-from-start with probability
    /// `fp_u`, alive forever otherwise.
    BernoulliAtStart,
    /// Extension: processor `u` dies at an `Exp(λ_u)` time where `λ_u` is
    /// calibrated so that `P(death ≤ horizon) = fp_u`, i.e.
    /// `λ_u = −ln(1 − fp_u)/horizon`.
    ExponentialLifetime {
        /// The workflow horizon used for calibration.
        horizon: f64,
    },
}

impl FailureModel {
    /// Samples one scenario for the platform.
    #[must_use]
    pub fn sample<R: Rng + ?Sized>(&self, platform: &Platform, rng: &mut R) -> FailureScenario {
        let death_time = platform
            .procs()
            .map(|p| {
                let fp = platform.failure_prob(p);
                match *self {
                    FailureModel::BernoulliAtStart => {
                        if rng.gen_bool(fp.clamp(0.0, 1.0)) {
                            0.0
                        } else {
                            f64::INFINITY
                        }
                    }
                    FailureModel::ExponentialLifetime { horizon } => {
                        if fp <= 0.0 {
                            f64::INFINITY
                        } else if fp >= 1.0 {
                            0.0
                        } else {
                            let lambda = -(1.0 - fp).ln() / horizon;
                            // Inverse-CDF sampling of Exp(λ).
                            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                            -u.ln() / lambda
                        }
                    }
                }
            })
            .collect();
        FailureScenario { death_time }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rpwf_core::platform::Platform;

    #[test]
    fn scenario_queries() {
        let sc = FailureScenario::with_dead(3, &[ProcId(1)]);
        assert!(sc.alive(ProcId(0)));
        assert!(!sc.alive(ProcId(1)));
        assert!(sc.alive_at(ProcId(0), 1e12));
        assert!(!sc.alive_at(ProcId(1), 0.0));
        assert_eq!(sc.dead_procs(), vec![ProcId(1)]);
        assert_eq!(FailureScenario::all_alive(2).dead_procs(), vec![]);
    }

    #[test]
    fn bernoulli_rate_matches_fp() {
        let pf = Platform::fully_homogeneous(1, 1.0, 1.0, 0.3).unwrap();
        let mut rng = StdRng::seed_from_u64(100);
        let trials = 20_000;
        let mut dead = 0usize;
        for _ in 0..trials {
            let sc = FailureModel::BernoulliAtStart.sample(&pf, &mut rng);
            if !sc.alive(ProcId(0)) {
                dead += 1;
            }
        }
        let rate = dead as f64 / trials as f64;
        assert!((rate - 0.3).abs() < 0.02, "rate = {rate}");
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        let sure = Platform::fully_homogeneous(2, 1.0, 1.0, 1.0).unwrap();
        let sc = FailureModel::BernoulliAtStart.sample(&sure, &mut rng);
        assert_eq!(sc.dead_procs().len(), 2);
        let never = Platform::fully_homogeneous(2, 1.0, 1.0, 0.0).unwrap();
        let sc = FailureModel::BernoulliAtStart.sample(&never, &mut rng);
        assert!(sc.dead_procs().is_empty());
    }

    #[test]
    fn exponential_calibration_matches_horizon() {
        // P(death ≤ horizon) should be ≈ fp.
        let pf = Platform::fully_homogeneous(1, 1.0, 1.0, 0.5).unwrap();
        let model = FailureModel::ExponentialLifetime { horizon: 10.0 };
        let mut rng = StdRng::seed_from_u64(7);
        let trials = 20_000;
        let mut died_in_horizon = 0usize;
        for _ in 0..trials {
            let sc = model.sample(&pf, &mut rng);
            if sc.death_time[0] <= 10.0 {
                died_in_horizon += 1;
            }
        }
        let rate = died_in_horizon as f64 / trials as f64;
        assert!((rate - 0.5).abs() < 0.02, "rate = {rate}");
    }

    #[test]
    fn sampling_is_reproducible() {
        let pf = Platform::fully_homogeneous(5, 1.0, 1.0, 0.4).unwrap();
        let a = FailureModel::BernoulliAtStart.sample(&pf, &mut StdRng::seed_from_u64(9));
        let b = FailureModel::BernoulliAtStart.sample(&pf, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
