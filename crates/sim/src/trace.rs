//! Busy-interval traces and the one-port invariant checker.
//!
//! When tracing is enabled, every resource reservation (send leg on each
//! port, compute slot) is recorded. The central structural check is
//! [`Trace::check_one_port`]: no resource may ever hold two overlapping
//! busy intervals — the defining constraint of the one-port model (§2.1).

use serde::{Deserialize, Serialize};

/// What a resource was doing during a busy interval.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Activity {
    /// Port busy pushing data: `(dataset, hop)`.
    Send(usize, usize),
    /// Port busy receiving data: `(dataset, hop)`.
    Recv(usize, usize),
    /// Processor busy computing: `(dataset, interval)`.
    Compute(usize, usize),
}

/// One reservation on one resource.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BusyInterval {
    /// Resource index: `0..m` are processors, `m` is `P_in`, `m+1` `P_out`.
    pub resource: usize,
    /// Reservation start.
    pub start: f64,
    /// Reservation end (`≥ start`).
    pub end: f64,
    /// What the resource was doing.
    pub activity: Activity,
}

/// An ordered log of reservations.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// All reservations, in recording order.
    pub entries: Vec<BusyInterval>,
}

impl Trace {
    /// Records one reservation.
    pub fn record(&mut self, resource: usize, start: f64, end: f64, activity: Activity) {
        debug_assert!(end >= start);
        self.entries.push(BusyInterval {
            resource,
            start,
            end,
            activity,
        });
    }

    /// Verifies that no resource has two overlapping (positive-length)
    /// busy intervals. Returns the offending pair on violation.
    ///
    /// # Errors
    /// A human-readable description of the first overlap found.
    pub fn check_one_port(&self) -> Result<(), String> {
        let mut by_resource: std::collections::BTreeMap<usize, Vec<(f64, f64, Activity)>> =
            std::collections::BTreeMap::new();
        for e in &self.entries {
            by_resource
                .entry(e.resource)
                .or_default()
                .push((e.start, e.end, e.activity));
        }
        for (res, mut spans) in by_resource {
            spans.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
            for w in spans.windows(2) {
                let (s0, e0, a0) = w[0];
                let (s1, e1, a1) = w[1];
                // Zero-length intervals (empty messages) never conflict.
                if e0 > s1 + 1e-12 && e1 > s1 && e0 > s0 {
                    return Err(format!(
                        "resource {res}: {a0:?} [{s0}, {e0}] overlaps {a1:?} [{s1}, {e1}]"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Total busy time of one resource.
    #[must_use]
    pub fn busy_time(&self, resource: usize) -> f64 {
        self.entries
            .iter()
            .filter(|e| e.resource == resource)
            .map(|e| e.end - e.start)
            .sum()
    }

    /// Utilization of a resource over `[0, horizon]`.
    #[must_use]
    pub fn utilization(&self, resource: usize, horizon: f64) -> f64 {
        if horizon <= 0.0 {
            return 0.0;
        }
        self.busy_time(resource) / horizon
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_overlapping_passes() {
        let mut t = Trace::default();
        t.record(0, 0.0, 1.0, Activity::Send(0, 0));
        t.record(0, 1.0, 2.0, Activity::Compute(0, 0));
        t.record(1, 0.5, 1.5, Activity::Recv(0, 0));
        assert!(t.check_one_port().is_ok());
    }

    #[test]
    fn overlap_is_detected() {
        let mut t = Trace::default();
        t.record(0, 0.0, 2.0, Activity::Send(0, 0));
        t.record(0, 1.0, 3.0, Activity::Recv(1, 0));
        let err = t.check_one_port().unwrap_err();
        assert!(err.contains("resource 0"));
    }

    #[test]
    fn zero_length_intervals_never_conflict() {
        let mut t = Trace::default();
        t.record(0, 0.0, 2.0, Activity::Send(0, 0));
        t.record(0, 1.0, 1.0, Activity::Recv(1, 0)); // empty message
        assert!(t.check_one_port().is_ok());
    }

    #[test]
    fn busy_time_and_utilization() {
        let mut t = Trace::default();
        t.record(3, 0.0, 2.0, Activity::Compute(0, 0));
        t.record(3, 5.0, 6.0, Activity::Send(0, 1));
        assert!((t.busy_time(3) - 3.0).abs() < 1e-12);
        assert!((t.utilization(3, 10.0) - 0.3).abs() < 1e-12);
        assert_eq!(t.utilization(3, 0.0), 0.0);
    }
}
