//! Event-driven execution of a mapped pipeline under the one-port model.
//!
//! The simulated protocol follows §2.2 of the paper:
//!
//! 1. `P_in` serializes one copy of the input to **every** replica of the
//!    first interval (the sender cannot know which replicas are dead);
//! 2. every alive replica of interval `j` computes every data set; the
//!    consensus survivor ([`crate::consensus`]) — and only it — forwards
//!    the interval output, again serialized to every replica of interval
//!    `j+1`;
//! 3. the survivor of the last interval sends the result to `P_out`.
//!
//! Each processor (and each of `P_in`/`P_out`) is a single exclusive
//! resource: receiving, computing and sending never overlap on it — the
//! no-overlap one-port reading behind the paper's formulas. Scheduling is
//! **causal**: an activity starts only when every port it needs is free at
//! the current instant; otherwise it re-arms at the ports' earliest free
//! time. Contending activities at the same instant are granted in
//! deterministic event order, so runs are reproducible and, unlike a
//! reserve-ahead scheme, back-pressure propagates correctly when many data
//! sets stream through the pipeline.
//!
//! With the adversarial configuration — [`SurvivorPolicy::WorstCost`] +
//! [`ServiceOrder::SurvivorLast`] — the simulated latency of a lone data
//! set **equals equation (2) exactly** (integration-tested); any other
//! configuration can only be faster, making the formula a certified upper
//! bound.

use crate::consensus::{elect_survivor, service_order, ServiceOrder, SurvivorPolicy};
use crate::des::{Engine, Model, Scheduler};
use crate::failure::FailureScenario;
use crate::trace::{Activity, Trace};
use rpwf_core::mapping::IntervalMapping;
use rpwf_core::platform::{Platform, ProcId, Vertex};
use rpwf_core::stage::Pipeline;
use serde::{Deserialize, Serialize};

/// Simulation configuration.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Who forwards interval outputs.
    pub survivor_policy: SurvivorPolicy,
    /// How a sender orders its serialized transfers.
    pub service_order: ServiceOrder,
    /// Record per-resource busy intervals.
    pub record_trace: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            survivor_policy: SurvivorPolicy::FirstAlive,
            service_order: ServiceOrder::ById,
            record_trace: false,
        }
    }
}

impl SimConfig {
    /// The adversarial configuration that attains the worst-case formulas.
    #[must_use]
    pub fn worst_case() -> Self {
        SimConfig {
            survivor_policy: SurvivorPolicy::WorstCost,
            service_order: ServiceOrder::SurvivorLast,
            record_trace: false,
        }
    }

    /// The friendliest configuration (lower bound).
    #[must_use]
    pub fn best_case() -> Self {
        SimConfig {
            survivor_policy: SurvivorPolicy::BestCost,
            service_order: ServiceOrder::SurvivorFirst,
            record_trace: false,
        }
    }

    /// Enables trace recording.
    #[must_use]
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }
}

/// Result for one data set.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum DatasetOutcome {
    /// The data set traversed the whole pipeline.
    Success {
        /// Response time (completion − injection).
        latency: f64,
        /// Absolute completion time.
        completed_at: f64,
    },
    /// Every replica of some interval was dead.
    Failed {
        /// The first fully-dead interval.
        at_interval: usize,
    },
}

impl DatasetOutcome {
    /// Latency when successful.
    #[must_use]
    pub fn latency(&self) -> Option<f64> {
        match *self {
            DatasetOutcome::Success { latency, .. } => Some(latency),
            DatasetOutcome::Failed { .. } => None,
        }
    }

    /// `true` on success.
    #[must_use]
    pub fn is_success(&self) -> bool {
        matches!(self, DatasetOutcome::Success { .. })
    }
}

/// Full report of one simulation run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Per data set, in injection order.
    pub outcomes: Vec<DatasetOutcome>,
    /// Events processed by the engine.
    pub events: u64,
    /// Busy-interval trace when requested.
    pub trace: Option<Trace>,
}

impl SimReport {
    /// Fraction of successful data sets.
    #[must_use]
    pub fn success_rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes.iter().filter(|o| o.is_success()).count() as f64 / self.outcomes.len() as f64
    }

    /// Maximum latency over successful data sets.
    #[must_use]
    pub fn max_latency(&self) -> Option<f64> {
        self.outcomes
            .iter()
            .filter_map(DatasetOutcome::latency)
            .max_by(f64::total_cmp)
    }

    /// Completion times of successful data sets, in injection order.
    #[must_use]
    pub fn completion_times(&self) -> Vec<f64> {
        self.outcomes
            .iter()
            .filter_map(|o| match *o {
                DatasetOutcome::Success { completed_at, .. } => Some(completed_at),
                DatasetOutcome::Failed { .. } => None,
            })
            .collect()
    }
}

#[derive(Clone, Copy, Debug)]
enum Event {
    /// Data set `d` enters the system.
    Inject(usize),
    /// Begin hop `h` of data set `d` (serialized sends toward interval `h`,
    /// or toward `P_out` when `h == p`).
    StartHop { d: usize, h: usize },
    /// Attempt the `idx`-th serialized transfer of hop `(d, h)`.
    TrySend { d: usize, h: usize, idx: usize },
    /// Attempt the compute of replica `r` for `(d, interval h)`.
    TryCompute { d: usize, h: usize, r: ProcId },
    /// The survivor finished computing interval `j` of data set `d`.
    Computed { d: usize, j: usize },
    /// `P_out` received the result of data set `d`.
    Delivered(usize),
}

struct PipelineModel<'a> {
    pipeline: &'a Pipeline,
    platform: &'a Platform,
    mapping: &'a IntervalMapping,
    scenario: &'a FailureScenario,
    /// Elected survivor per interval (`None` = interval fully dead).
    survivors: Vec<Option<ProcId>>,
    /// Ordered receivers per hop `0..p` (hop `p` goes to `P_out`).
    hop_receivers: Vec<Vec<ProcId>>,
    /// Resource availability: `0..m` processors, `m` = `P_in`, `m+1` = `P_out`.
    free_at: Vec<f64>,
    inject_time: Vec<f64>,
    outcomes: Vec<Option<DatasetOutcome>>,
    trace: Option<Trace>,
}

impl<'a> PipelineModel<'a> {
    fn res_of(&self, v: Vertex) -> usize {
        let m = self.platform.n_procs();
        match v {
            Vertex::Proc(p) => p.index(),
            Vertex::In => m,
            Vertex::Out => m + 1,
        }
    }

    fn record(&mut self, res: usize, start: f64, end: f64, act: Activity) {
        if let Some(trace) = &mut self.trace {
            trace.record(res, start, end, act);
        }
    }

    fn hop_sender(&self, h: usize) -> Vertex {
        if h == 0 {
            Vertex::In
        } else {
            Vertex::Proc(self.survivors[h - 1].expect("chain alive before hop h"))
        }
    }

    fn hop_size(&self, h: usize) -> f64 {
        let p = self.mapping.n_intervals();
        if h == p {
            self.pipeline.output_size()
        } else {
            self.pipeline.interval_input(self.mapping.interval(h))
        }
    }
}

/// Grant priority: data sets first-come-first-served, then hop order —
/// the service discipline assumed by the steady-state period analysis.
fn prio(d: usize, h: usize) -> u64 {
    ((d as u64) << 16) | (h as u64 + 1)
}

impl Model for PipelineModel<'_> {
    type Event = Event;

    fn handle(&mut self, now: f64, event: Event, s: &mut Scheduler<Event>) {
        let p = self.mapping.n_intervals();
        match event {
            Event::Inject(d) => {
                self.inject_time[d] = now;
                s.schedule(now, Event::StartHop { d, h: 0 });
            }
            Event::StartHop { d, h } => {
                if h < p && self.survivors[h].is_none() {
                    // Every replica of interval h is dead: the workflow
                    // fails for this data set. The futile serialized sends
                    // still consume the sender (it cannot know).
                    self.outcomes[d] = Some(DatasetOutcome::Failed { at_interval: h });
                }
                s.schedule_prio(now, prio(d, h), Event::TrySend { d, h, idx: 0 });
            }
            Event::TrySend { d, h, idx } => {
                // Resolve this leg's receiver (None = P_out).
                let receiver: Option<ProcId> = if h == p {
                    None
                } else {
                    match self.hop_receivers[h].get(idx) {
                        Some(&r) => Some(r),
                        // Hop fully serialized; nothing left to do here.
                        None => return,
                    }
                };
                let sender = self.hop_sender(h);
                let s_res = self.res_of(sender);
                let size = self.hop_size(h);
                let (r_vertex, alive) = match receiver {
                    None => (Vertex::Out, true),
                    Some(r) => (Vertex::Proc(r), self.scenario.alive(r)),
                };
                let dur = self.platform.comm_time(sender, r_vertex, size);
                let r_res = self.res_of(r_vertex);

                // Causal port acquisition: wait for every needed port.
                let need_receiver_port = alive;
                let ready = self.free_at[s_res] <= now
                    && (!need_receiver_port || self.free_at[r_res] <= now);
                if !ready {
                    let at = if need_receiver_port {
                        self.free_at[s_res].max(self.free_at[r_res])
                    } else {
                        self.free_at[s_res]
                    };
                    s.schedule_prio(at, prio(d, h), Event::TrySend { d, h, idx });
                    return;
                }

                let end = now + dur;
                self.free_at[s_res] = end;
                self.record(s_res, now, end, Activity::Send(d, h));
                if alive {
                    self.free_at[r_res] = end;
                    self.record(r_res, now, end, Activity::Recv(d, h));
                }
                match receiver {
                    None => s.schedule(end, Event::Delivered(d)),
                    Some(r) => {
                        if alive {
                            s.schedule_prio(end, prio(d, h), Event::TryCompute { d, h, r });
                        }
                        s.schedule_prio(end, prio(d, h), Event::TrySend { d, h, idx: idx + 1 });
                    }
                }
            }
            Event::TryCompute { d, h, r } => {
                let r_res = r.index();
                if self.free_at[r_res] > now {
                    s.schedule_prio(
                        self.free_at[r_res],
                        prio(d, h),
                        Event::TryCompute { d, h, r },
                    );
                    return;
                }
                let dur =
                    self.pipeline.interval_work(self.mapping.interval(h)) / self.platform.speed(r);
                let end = now + dur;
                self.free_at[r_res] = end;
                self.record(r_res, now, end, Activity::Compute(d, h));
                if self.survivors[h] == Some(r) {
                    s.schedule(end, Event::Computed { d, j: h });
                }
            }
            Event::Computed { d, j } => {
                s.schedule(now, Event::StartHop { d, h: j + 1 });
            }
            Event::Delivered(d) => {
                self.outcomes[d] = Some(DatasetOutcome::Success {
                    latency: now - self.inject_time[d],
                    completed_at: now,
                });
            }
        }
    }
}

/// Simulates the mapped pipeline over the given data-set arrival times.
#[must_use]
pub fn simulate(
    pipeline: &Pipeline,
    platform: &Platform,
    mapping: &IntervalMapping,
    scenario: &FailureScenario,
    config: SimConfig,
    arrivals: &[f64],
) -> SimReport {
    let p = mapping.n_intervals();
    let survivors: Vec<Option<ProcId>> = (0..p)
        .map(|j| {
            elect_survivor(
                config.survivor_policy,
                mapping,
                pipeline,
                platform,
                scenario,
                j,
            )
        })
        .collect();
    let hop_receivers: Vec<Vec<ProcId>> = (0..p)
        .map(|h| service_order(config.service_order, mapping.alloc(h), survivors[h]))
        .collect();
    let model = PipelineModel {
        pipeline,
        platform,
        mapping,
        scenario,
        survivors,
        hop_receivers,
        free_at: vec![0.0; platform.n_procs() + 2],
        inject_time: vec![0.0; arrivals.len()],
        outcomes: vec![None; arrivals.len()],
        trace: config.record_trace.then(Trace::default),
    };
    let mut engine = Engine::new(model);
    for (d, &t) in arrivals.iter().enumerate() {
        engine.schedule(t, Event::Inject(d));
    }
    let events = engine.run_to_completion();
    let model = engine.into_model();
    SimReport {
        outcomes: model
            .outcomes
            .into_iter()
            .map(|o| o.expect("every data set terminates in success or failure"))
            .collect(),
        events,
        trace: model.trace,
    }
}

/// Simulates a single data set injected at time 0.
#[must_use]
pub fn simulate_one(
    pipeline: &Pipeline,
    platform: &Platform,
    mapping: &IntervalMapping,
    scenario: &FailureScenario,
    config: SimConfig,
) -> DatasetOutcome {
    simulate(pipeline, platform, mapping, scenario, config, &[0.0]).outcomes[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpwf_core::assert_approx_eq;
    use rpwf_core::mapping::Interval;
    use rpwf_core::metrics::latency;

    fn p(i: u32) -> ProcId {
        ProcId(i)
    }

    fn fig5_mapping() -> (Pipeline, Platform, IntervalMapping) {
        let pipe = rpwf_gen::figure5_pipeline();
        let pf = rpwf_gen::figure5_platform();
        let mapping = IntervalMapping::new(
            vec![Interval::singleton(0), Interval::singleton(1)],
            vec![vec![p(0)], (1..=10).map(p).collect()],
            2,
            11,
        )
        .unwrap();
        (pipe, pf, mapping)
    }

    #[test]
    fn worst_case_sim_equals_eq2_on_figure5() {
        let (pipe, pf, mapping) = fig5_mapping();
        let scenario = FailureScenario::all_alive(11);
        let outcome = simulate_one(&pipe, &pf, &mapping, &scenario, SimConfig::worst_case());
        assert_approx_eq!(outcome.latency().unwrap(), 22.0);
        assert_approx_eq!(outcome.latency().unwrap(), latency(&mapping, &pipe, &pf));
    }

    #[test]
    fn worst_case_sim_equals_eq2_on_figure34_split() {
        let pipe = rpwf_gen::figure3_pipeline();
        let pf = rpwf_gen::figure4_platform();
        let mapping = IntervalMapping::new(
            vec![Interval::singleton(0), Interval::singleton(1)],
            vec![vec![p(0)], vec![p(1)]],
            2,
            2,
        )
        .unwrap();
        let outcome = simulate_one(
            &pipe,
            &pf,
            &mapping,
            &FailureScenario::all_alive(2),
            SimConfig::worst_case(),
        );
        assert_approx_eq!(outcome.latency().unwrap(), 7.0);
    }

    #[test]
    fn best_case_is_no_slower_than_worst_case() {
        let (pipe, pf, mapping) = fig5_mapping();
        let scenario = FailureScenario::all_alive(11);
        let worst = simulate_one(&pipe, &pf, &mapping, &scenario, SimConfig::worst_case());
        let best = simulate_one(&pipe, &pf, &mapping, &scenario, SimConfig::best_case());
        assert!(best.latency().unwrap() <= worst.latency().unwrap() + 1e-12);
    }

    #[test]
    fn failures_never_increase_latency_beyond_formula() {
        // Killing replicas only removes work from the schedule; eq. 2 stays
        // an upper bound for every scenario that still succeeds.
        let (pipe, pf, mapping) = fig5_mapping();
        let bound = latency(&mapping, &pipe, &pf);
        for dead_count in 0..9usize {
            let dead: Vec<ProcId> = (1..=dead_count as u32).map(p).collect();
            let scenario = FailureScenario::with_dead(11, &dead);
            let outcome = simulate_one(&pipe, &pf, &mapping, &scenario, SimConfig::worst_case());
            let lat = outcome.latency().expect("interval 2 still has replicas");
            assert!(lat <= bound + 1e-9, "dead={dead_count}: {lat} > {bound}");
        }
    }

    #[test]
    fn dead_interval_fails_the_dataset() {
        let (pipe, pf, mapping) = fig5_mapping();
        let all_fast_dead: Vec<ProcId> = (1..=10).map(p).collect();
        let scenario = FailureScenario::with_dead(11, &all_fast_dead);
        let outcome = simulate_one(&pipe, &pf, &mapping, &scenario, SimConfig::default());
        assert_eq!(outcome, DatasetOutcome::Failed { at_interval: 1 });
        assert!(!outcome.is_success());
        assert_eq!(outcome.latency(), None);
    }

    #[test]
    fn trace_respects_one_port() {
        let (pipe, pf, mapping) = fig5_mapping();
        let scenario = FailureScenario::with_dead(11, &[p(4), p(7)]);
        let report = simulate(
            &pipe,
            &pf,
            &mapping,
            &scenario,
            SimConfig::worst_case().with_trace(),
            &[0.0, 1.0, 2.0, 30.0],
        );
        let trace = report.trace.expect("requested");
        trace.check_one_port().expect("one-port invariant");
        assert_eq!(report.outcomes.len(), 4);
        assert!(report.outcomes.iter().all(DatasetOutcome::is_success));
    }

    #[test]
    fn steady_state_interdeparture_matches_period_metric() {
        // Comm-homogeneous mapping, all alive, adversarial survivor: the
        // asymptotic inter-departure time equals core::throughput::period.
        let pipe = Pipeline::new(vec![2.0, 8.0], vec![4.0, 2.0, 1.0]).unwrap();
        let pf = Platform::comm_homogeneous(vec![2.0, 1.0, 4.0], 2.0, vec![0.0; 3]).unwrap();
        let mapping = IntervalMapping::new(
            vec![Interval::singleton(0), Interval::singleton(1)],
            vec![vec![p(0)], vec![p(1), p(2)]],
            2,
            3,
        )
        .unwrap();
        let expected = rpwf_core::throughput::period(&mapping, &pipe, &pf).unwrap();

        let d = 60usize;
        let arrivals = vec![0.0; d];
        let report = simulate(
            &pipe,
            &pf,
            &mapping,
            &FailureScenario::all_alive(3),
            SimConfig::worst_case(),
            &arrivals,
        );
        let times = report.completion_times();
        assert_eq!(times.len(), d);
        // Discard warmup; the tail inter-departure gaps must equal the period.
        for w in times[d / 2..].windows(2) {
            assert_approx_eq!(w[1] - w[0], expected, 1e-6);
        }
    }

    #[test]
    fn saturated_pipeline_stays_one_port_consistent() {
        let pipe = Pipeline::new(vec![2.0, 8.0], vec![4.0, 2.0, 1.0]).unwrap();
        let pf = Platform::comm_homogeneous(vec![2.0, 1.0, 4.0], 2.0, vec![0.0; 3]).unwrap();
        let mapping = IntervalMapping::new(
            vec![Interval::singleton(0), Interval::singleton(1)],
            vec![vec![p(0)], vec![p(1), p(2)]],
            2,
            3,
        )
        .unwrap();
        let report = simulate(
            &pipe,
            &pf,
            &mapping,
            &FailureScenario::all_alive(3),
            SimConfig::worst_case().with_trace(),
            &[0.0; 25],
        );
        report
            .trace
            .expect("requested")
            .check_one_port()
            .expect("one-port invariant");
    }

    #[test]
    fn success_outcome_records_completion_time() {
        let (pipe, pf, mapping) = fig5_mapping();
        let report = simulate(
            &pipe,
            &pf,
            &mapping,
            &FailureScenario::all_alive(11),
            SimConfig::worst_case(),
            &[5.0],
        );
        match report.outcomes[0] {
            DatasetOutcome::Success {
                latency,
                completed_at,
            } => {
                assert_approx_eq!(completed_at, 5.0 + latency);
            }
            DatasetOutcome::Failed { .. } => panic!("must succeed"),
        }
        assert!(report.events > 0);
        assert_approx_eq!(report.success_rate(), 1.0);
        assert!(report.max_latency().is_some());
    }
}
