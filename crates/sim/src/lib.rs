//! # rpwf-sim — discrete-event validation of the analytic model
//!
//! The paper's latency (equations (1)/(2)) and failure probability are
//! worst-case closed forms. This crate executes a mapped pipeline as an
//! event-driven simulation under the one-port model and certifies both:
//!
//! * with the adversarial configuration ([`SimConfig::worst_case`]:
//!   worst-cost survivor, survivor-served-last), the simulated single-data-
//!   set latency **equals** equation (2); every other configuration is no
//!   slower than the bound;
//! * Monte Carlo over Bernoulli failure scenarios converges to the analytic
//!   success probability `1 − FP` (Wilson-interval tested);
//! * traces satisfy the one-port invariant (no overlapping reservations),
//!   and steady-state inter-departure times match the period metric of
//!   `rpwf_core::throughput`.
//!
//! ## Layout
//! * [`des`] — generic deterministic event engine,
//! * [`failure`] — Bernoulli-at-start (paper) and exponential-lifetime
//!   (extension) failure injection,
//! * [`consensus`] — survivor election and service-order policies,
//! * [`pipeline`] — the simulated execution model,
//! * [`monte_carlo`] — sharded trial driver with confidence intervals,
//! * [`trace`] — busy-interval recording and invariant checking.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod consensus;
pub mod des;
pub mod failure;
pub mod monte_carlo;
pub mod pipeline;
pub mod trace;

pub use consensus::{ServiceOrder, SurvivorPolicy};
pub use failure::{FailureModel, FailureScenario};
pub use monte_carlo::{wilson95, LatencyStats, McReport, MonteCarlo};
pub use pipeline::{simulate, simulate_one, DatasetOutcome, SimConfig, SimReport};
pub use trace::{Activity, BusyInterval, Trace};
