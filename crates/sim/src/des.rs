//! A small generic discrete-event simulation engine.
//!
//! Deterministic by construction: the event queue orders by `(time, seq)`
//! where `seq` is a monotone insertion counter, so simultaneous events fire
//! in scheduling order and repeated runs produce identical traces. Models
//! implement [`Model`] and receive a [`Scheduler`] handle to enqueue
//! follow-up events.

use rpwf_core::num::TotalF64;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A simulation model: holds state and reacts to events.
pub trait Model {
    /// The event alphabet of the model.
    type Event;

    /// Handles one event at simulation time `now`, scheduling follow-ups
    /// through `scheduler`.
    fn handle(&mut self, now: f64, event: Self::Event, scheduler: &mut Scheduler<Self::Event>);
}

/// Write-handle for scheduling events from inside [`Model::handle`].
pub struct Scheduler<E> {
    pending: Vec<(f64, u64, E)>,
    now: f64,
}

impl<E> Scheduler<E> {
    /// Schedules `event` at absolute time `at` (clamped to `now`: the past
    /// is not writable) with default priority.
    pub fn schedule(&mut self, at: f64, event: E) {
        self.schedule_prio(at, 0, event);
    }

    /// Schedules `event` with an explicit priority: among events at the
    /// same instant, **lower** priority values fire first (ties broken by
    /// insertion order). Resource-contention models use this to grant freed
    /// resources in a deterministic discipline rather than retry order.
    pub fn schedule_prio(&mut self, at: f64, prio: u64, event: E) {
        self.pending.push((at.max(self.now), prio, event));
    }

    /// Schedules `event` after a delay relative to the current time.
    pub fn schedule_in(&mut self, delay: f64, event: E) {
        self.schedule(self.now + delay.max(0.0), event);
    }

    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> f64 {
        self.now
    }
}

#[derive(Debug)]
struct Scheduled<E> {
    time: TotalF64,
    prio: u64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .cmp(&other.time)
            .then(self.prio.cmp(&other.prio))
            .then(self.seq.cmp(&other.seq))
    }
}

/// The event loop: a priority queue of timestamped events plus the model.
pub struct Engine<M: Model> {
    model: M,
    queue: BinaryHeap<Reverse<Scheduled<M::Event>>>,
    now: f64,
    seq: u64,
    processed: u64,
}

impl<M: Model> Engine<M> {
    /// Wraps a model with an empty queue at time 0.
    #[must_use]
    pub fn new(model: M) -> Self {
        Engine {
            model,
            queue: BinaryHeap::new(),
            now: 0.0,
            seq: 0,
            processed: 0,
        }
    }

    /// Schedules an initial event from outside the model.
    pub fn schedule(&mut self, at: f64, event: M::Event) {
        self.schedule_prio(at, 0, event);
    }

    /// Schedules an initial event with an explicit priority (see
    /// [`Scheduler::schedule_prio`]).
    pub fn schedule_prio(&mut self, at: f64, prio: u64, event: M::Event) {
        debug_assert!(at >= self.now, "cannot schedule into the past");
        self.queue.push(Reverse(Scheduled {
            time: TotalF64(at.max(self.now)),
            prio,
            seq: self.seq,
            event,
        }));
        self.seq += 1;
    }

    /// Runs until the queue drains. Returns the number of events processed.
    pub fn run_to_completion(&mut self) -> u64 {
        while self.step() {}
        self.processed
    }

    /// Processes one event; `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(Reverse(item)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(item.time.0 >= self.now, "time must be monotone");
        self.now = item.time.0;
        let mut scheduler = Scheduler {
            pending: Vec::new(),
            now: self.now,
        };
        self.model.handle(self.now, item.event, &mut scheduler);
        for (at, prio, ev) in scheduler.pending {
            self.queue.push(Reverse(Scheduled {
                time: TotalF64(at),
                prio,
                seq: self.seq,
                event: ev,
            }));
            self.seq += 1;
        }
        self.processed += 1;
        true
    }

    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of events processed so far.
    #[must_use]
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Read access to the model.
    #[must_use]
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Consumes the engine, returning the model.
    #[must_use]
    pub fn into_model(self) -> M {
        self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy model: a counter chain — each event spawns the next until a cap.
    struct Chain {
        fired: Vec<(f64, u32)>,
        cap: u32,
    }

    impl Model for Chain {
        type Event = u32;
        fn handle(&mut self, now: f64, ev: u32, s: &mut Scheduler<u32>) {
            self.fired.push((now, ev));
            if ev < self.cap {
                s.schedule_in(1.5, ev + 1);
            }
        }
    }

    #[test]
    fn chain_fires_in_order_with_correct_times() {
        let mut engine = Engine::new(Chain {
            fired: Vec::new(),
            cap: 4,
        });
        engine.schedule(2.0, 0);
        let processed = engine.run_to_completion();
        assert_eq!(processed, 5);
        let model = engine.into_model();
        assert_eq!(model.fired.len(), 5);
        for (k, &(t, ev)) in model.fired.iter().enumerate() {
            assert_eq!(ev, k as u32);
            assert!((t - (2.0 + 1.5 * k as f64)).abs() < 1e-12);
        }
    }

    /// Simultaneous events fire in scheduling (seq) order.
    struct Recorder {
        order: Vec<u32>,
    }
    impl Model for Recorder {
        type Event = u32;
        fn handle(&mut self, _now: f64, ev: u32, _s: &mut Scheduler<u32>) {
            self.order.push(ev);
        }
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut engine = Engine::new(Recorder { order: Vec::new() });
        for i in 0..10 {
            engine.schedule(5.0, i);
        }
        engine.schedule(1.0, 99);
        engine.run_to_completion();
        let model = engine.into_model();
        assert_eq!(model.order[0], 99);
        assert_eq!(&model.order[1..], &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn determinism_across_runs() {
        let run = || {
            let mut engine = Engine::new(Chain {
                fired: Vec::new(),
                cap: 100,
            });
            engine.schedule(0.0, 0);
            engine.run_to_completion();
            engine.into_model().fired
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn scheduler_clamps_past() {
        struct PastScheduler {
            times: Vec<f64>,
        }
        impl Model for PastScheduler {
            type Event = bool;
            fn handle(&mut self, now: f64, first: bool, s: &mut Scheduler<bool>) {
                self.times.push(now);
                if first {
                    s.schedule(now - 100.0, false); // clamped to now
                }
            }
        }
        let mut engine = Engine::new(PastScheduler { times: Vec::new() });
        engine.schedule(10.0, true);
        engine.run_to_completion();
        let m = engine.into_model();
        assert_eq!(m.times, vec![10.0, 10.0]);
    }
}
