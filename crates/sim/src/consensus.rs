//! Survivor election among the replicas of an interval.
//!
//! The paper notes that achieving the stated latency "needs a standard
//! consensus protocol to determine which of the surviving processors
//! performs the outgoing communications" (§2.2, citing Tel). This module
//! models the *outcome* of that protocol as a deterministic policy over the
//! alive replicas; the protocol's own message cost is assumed negligible
//! relative to data transfers (the same abstraction the paper makes).

use crate::failure::FailureScenario;
use rpwf_core::mapping::IntervalMapping;
use rpwf_core::platform::{Platform, ProcId, Vertex};
use rpwf_core::stage::Pipeline;
use serde::{Deserialize, Serialize};

/// Which alive replica forwards the interval output.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SurvivorPolicy {
    /// Lowest processor id among the alive replicas (what a deterministic
    /// leader election would produce).
    FirstAlive,
    /// The alive replica with the **highest** hop cost
    /// `W_j/s_u + Σ_v δ/b(u,v)` — the adversarial choice that attains the
    /// worst-case latency formula.
    WorstCost,
    /// The alive replica with the **lowest** hop cost (best case).
    BestCost,
}

/// Hop cost of replica `u` of interval `j`: compute plus serialized sends
/// to the next interval's replicas (or to `P_out` for the last interval).
#[must_use]
pub fn hop_cost(
    mapping: &IntervalMapping,
    pipeline: &Pipeline,
    platform: &Platform,
    j: usize,
    u: ProcId,
) -> f64 {
    let iv = mapping.interval(j);
    let mut cost = pipeline.interval_work(iv) / platform.speed(u);
    let out_size = pipeline.interval_output(iv);
    if j + 1 < mapping.n_intervals() {
        for &v in mapping.alloc(j + 1) {
            cost += platform.comm_time(Vertex::Proc(u), Vertex::Proc(v), out_size);
        }
    } else {
        cost += platform.comm_time(Vertex::Proc(u), Vertex::Out, out_size);
    }
    cost
}

/// Elects the survivor of interval `j` under the policy; `None` when every
/// replica is dead (the workflow fails).
#[must_use]
pub fn elect_survivor(
    policy: SurvivorPolicy,
    mapping: &IntervalMapping,
    pipeline: &Pipeline,
    platform: &Platform,
    scenario: &FailureScenario,
    j: usize,
) -> Option<ProcId> {
    let alive: Vec<ProcId> = mapping
        .alloc(j)
        .iter()
        .copied()
        .filter(|&p| scenario.alive(p))
        .collect();
    if alive.is_empty() {
        return None;
    }
    let pick = match policy {
        SurvivorPolicy::FirstAlive => alive[0],
        SurvivorPolicy::WorstCost => alive
            .iter()
            .copied()
            .max_by(|&a, &b| {
                hop_cost(mapping, pipeline, platform, j, a)
                    .total_cmp(&hop_cost(mapping, pipeline, platform, j, b))
                    .then(b.0.cmp(&a.0)) // deterministic tie-break: lowest id
            })
            .expect("non-empty"),
        SurvivorPolicy::BestCost => alive
            .iter()
            .copied()
            .min_by(|&a, &b| {
                hop_cost(mapping, pipeline, platform, j, a)
                    .total_cmp(&hop_cost(mapping, pipeline, platform, j, b))
                    .then(a.0.cmp(&b.0))
            })
            .expect("non-empty"),
    };
    Some(pick)
}

/// Order in which a sender serializes its transfers to a replica set.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServiceOrder {
    /// Ascending processor id (a neutral deterministic order).
    ById,
    /// The designated survivor is served **last** — the adversarial order
    /// assumed by the worst-case latency formulas.
    SurvivorLast,
    /// The designated survivor is served first (best case).
    SurvivorFirst,
}

/// Produces the ordered receiver list for a hop toward replica set `set`,
/// given the already-elected survivor of that set.
#[must_use]
pub fn service_order(order: ServiceOrder, set: &[ProcId], survivor: Option<ProcId>) -> Vec<ProcId> {
    let mut receivers: Vec<ProcId> = set.to_vec();
    receivers.sort_unstable();
    match (order, survivor) {
        (ServiceOrder::ById, _) | (_, None) => receivers,
        (ServiceOrder::SurvivorLast, Some(s)) => {
            receivers.retain(|&p| p != s);
            receivers.push(s);
            receivers
        }
        (ServiceOrder::SurvivorFirst, Some(s)) => {
            receivers.retain(|&p| p != s);
            receivers.insert(0, s);
            receivers
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpwf_core::assert_approx_eq;

    fn p(i: u32) -> ProcId {
        ProcId(i)
    }

    fn fig5() -> (Pipeline, Platform, IntervalMapping) {
        let pipe = rpwf_gen::figure5_pipeline();
        let pf = rpwf_gen::figure5_platform();
        let fast: Vec<ProcId> = (1..=10).map(p).collect();
        let mapping = IntervalMapping::new(
            vec![
                rpwf_core::mapping::Interval::singleton(0),
                rpwf_core::mapping::Interval::singleton(1),
            ],
            vec![vec![p(0)], fast],
            2,
            11,
        )
        .unwrap();
        (pipe, pf, mapping)
    }

    #[test]
    fn hop_cost_matches_formula() {
        let (pipe, pf, mapping) = fig5();
        // Interval 0 on P0: w=1/s=1 + 10 sends of δ1=1 at b=1 → 1 + 10.
        assert_approx_eq!(hop_cost(&mapping, &pipe, &pf, 0, p(0)), 11.0);
        // Interval 1 on a fast proc: 100/100 + 0 (δ2 = 0).
        assert_approx_eq!(hop_cost(&mapping, &pipe, &pf, 1, p(3)), 1.0);
    }

    #[test]
    fn election_policies() {
        let (pipe, pf, mapping) = fig5();
        let scenario = FailureScenario::with_dead(11, &[p(1), p(2)]);
        assert_eq!(
            elect_survivor(
                SurvivorPolicy::FirstAlive,
                &mapping,
                &pipe,
                &pf,
                &scenario,
                1
            ),
            Some(p(3))
        );
        // All fast replicas have equal cost; WorstCost tie-breaks to lowest id.
        assert_eq!(
            elect_survivor(
                SurvivorPolicy::WorstCost,
                &mapping,
                &pipe,
                &pf,
                &scenario,
                1
            ),
            Some(p(3))
        );
        // Kill everything in interval 1 → None.
        let all_dead = FailureScenario::with_dead(11, &(1..=10).map(p).collect::<Vec<_>>());
        assert_eq!(
            elect_survivor(
                SurvivorPolicy::FirstAlive,
                &mapping,
                &pipe,
                &pf,
                &all_dead,
                1
            ),
            None
        );
    }

    #[test]
    fn worst_cost_picks_slowest_on_speed_heterogeneous_sets() {
        let pipe = Pipeline::new(vec![10.0], vec![0.0, 0.0]).unwrap();
        let pf = Platform::comm_homogeneous(vec![1.0, 5.0], 1.0, vec![0.5, 0.5]).unwrap();
        let mapping = IntervalMapping::single_interval(1, vec![p(0), p(1)], 2).unwrap();
        let scenario = FailureScenario::all_alive(2);
        assert_eq!(
            elect_survivor(
                SurvivorPolicy::WorstCost,
                &mapping,
                &pipe,
                &pf,
                &scenario,
                0
            ),
            Some(p(0)) // slow one
        );
        assert_eq!(
            elect_survivor(SurvivorPolicy::BestCost, &mapping, &pipe, &pf, &scenario, 0),
            Some(p(1))
        );
    }

    #[test]
    fn service_orders() {
        let set = vec![p(5), p(2), p(9)];
        assert_eq!(
            service_order(ServiceOrder::ById, &set, Some(p(5))),
            vec![p(2), p(5), p(9)]
        );
        assert_eq!(
            service_order(ServiceOrder::SurvivorLast, &set, Some(p(5))),
            vec![p(2), p(9), p(5)]
        );
        assert_eq!(
            service_order(ServiceOrder::SurvivorFirst, &set, Some(p(5))),
            vec![p(5), p(2), p(9)]
        );
        assert_eq!(
            service_order(ServiceOrder::SurvivorLast, &set, None),
            vec![p(2), p(5), p(9)]
        );
    }
}
