//! Mappings of pipeline stages onto processors.
//!
//! The paper's central object is the **interval mapping with replication**
//! ([`IntervalMapping`]): the stage range `[1..n]` is partitioned into
//! `p ≤ m` intervals of consecutive stages, and each interval `I_j` is
//! *replicated* onto a non-empty set `alloc(j)` of processors; the sets are
//! pairwise disjoint. Every replica executes every data set, so the interval
//! survives as long as one replica does.
//!
//! Two restricted/relaxed variants appear in the complexity proofs:
//! * [`OneToOneMapping`] — every stage on its own distinct processor
//!   (Theorem 3's NP-hard latency problem),
//! * [`GeneralMapping`] — stage-to-processor function with reuse and
//!   non-consecutive assignment allowed (Theorem 4's polynomial relaxation).

use crate::error::{CoreError, Result};
use crate::platform::ProcId;
use serde::{Deserialize, Serialize};

/// A non-empty range of consecutive stages, **0-based and inclusive** on
/// both ends. Paper notation `[d_j, e_j]` (1-based) corresponds to
/// `Interval::new(d_j − 1, e_j − 1)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Interval {
    start: usize,
    end: usize,
}

impl Interval {
    /// Builds `[start, end]`, requiring `start ≤ end`.
    ///
    /// # Errors
    /// [`CoreError::InvalidInterval`] when `start > end`.
    pub fn new(start: usize, end: usize) -> Result<Self> {
        if start > end {
            return Err(CoreError::InvalidInterval {
                start,
                end,
                n_stages: 0,
            });
        }
        Ok(Interval { start, end })
    }

    /// A single-stage interval.
    #[inline]
    #[must_use]
    pub fn singleton(stage: usize) -> Self {
        Interval {
            start: stage,
            end: stage,
        }
    }

    /// First stage (inclusive).
    #[inline]
    #[must_use]
    pub fn start(self) -> usize {
        self.start
    }

    /// Last stage (inclusive).
    #[inline]
    #[must_use]
    pub fn end(self) -> usize {
        self.end
    }

    /// Number of stages.
    #[inline]
    #[must_use]
    pub fn len(self) -> usize {
        self.end - self.start + 1
    }

    /// Intervals are never empty; provided for clippy symmetry.
    #[inline]
    #[must_use]
    pub fn is_empty(self) -> bool {
        false
    }

    /// Iterator over the contained stage indices.
    pub fn stages(self) -> impl Iterator<Item = usize> + Clone {
        self.start..=self.end
    }

    /// Whether `stage` lies inside.
    #[inline]
    #[must_use]
    pub fn contains(self, stage: usize) -> bool {
        (self.start..=self.end).contains(&stage)
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Display in the paper's 1-based stage notation.
        write!(f, "S{}..S{}", self.start + 1, self.end + 1)
    }
}

/// An interval mapping with replication: the partition and, per interval,
/// the (sorted, disjoint) replica set.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct IntervalMapping {
    intervals: Vec<Interval>,
    alloc: Vec<Vec<ProcId>>,
}

impl IntervalMapping {
    /// Validates and builds a mapping for a pipeline of `n_stages` stages on
    /// a platform of `n_procs` processors.
    ///
    /// Replica lists are sorted and deduplicated; validation enforces the
    /// paper's constraints: contiguous cover of `[0, n)`, non-empty
    /// allocations, pairwise-disjoint allocations, ids in range.
    ///
    /// # Errors
    /// See [`CoreError`] variants for each violated constraint.
    pub fn new(
        intervals: Vec<Interval>,
        alloc: Vec<Vec<ProcId>>,
        n_stages: usize,
        n_procs: usize,
    ) -> Result<Self> {
        if intervals.is_empty() {
            return Err(CoreError::EmptyPipeline);
        }
        if intervals.len() != alloc.len() {
            return Err(CoreError::DimensionMismatch {
                what: "interval allocations",
                expected: intervals.len(),
                actual: alloc.len(),
            });
        }
        let mut expected_start = 0usize;
        for (j, iv) in intervals.iter().enumerate() {
            if iv.start != expected_start {
                return Err(CoreError::NonContiguousIntervals { at: j });
            }
            if iv.end >= n_stages {
                return Err(CoreError::InvalidInterval {
                    start: iv.start,
                    end: iv.end,
                    n_stages,
                });
            }
            expected_start = iv.end + 1;
        }
        if expected_start != n_stages {
            return Err(CoreError::NonContiguousIntervals {
                at: intervals.len() - 1,
            });
        }
        let mut seen = vec![false; n_procs];
        let mut alloc_sorted = Vec::with_capacity(alloc.len());
        for (j, procs) in alloc.into_iter().enumerate() {
            if procs.is_empty() {
                return Err(CoreError::EmptyAllocation { interval: j });
            }
            let mut procs = procs;
            procs.sort_unstable();
            procs.dedup();
            for &p in &procs {
                if p.index() >= n_procs {
                    return Err(CoreError::ProcOutOfRange {
                        proc: p.index(),
                        n_procs,
                    });
                }
                if seen[p.index()] {
                    return Err(CoreError::OverlappingAllocation { proc: p.index() });
                }
                seen[p.index()] = true;
            }
            alloc_sorted.push(procs);
        }
        Ok(IntervalMapping {
            intervals,
            alloc: alloc_sorted,
        })
    }

    /// The whole pipeline as one interval replicated on `procs`.
    ///
    /// # Errors
    /// Propagates [`IntervalMapping::new`] validation.
    pub fn single_interval(n_stages: usize, procs: Vec<ProcId>, n_procs: usize) -> Result<Self> {
        let iv = Interval::new(0, n_stages.saturating_sub(1))?;
        IntervalMapping::new(vec![iv], vec![procs], n_stages, n_procs)
    }

    /// Number of intervals `p`.
    #[inline]
    #[must_use]
    pub fn n_intervals(&self) -> usize {
        self.intervals.len()
    }

    /// The `j`-th interval.
    #[inline]
    #[must_use]
    pub fn interval(&self, j: usize) -> Interval {
        self.intervals[j]
    }

    /// Replica set of the `j`-th interval (sorted by id).
    #[inline]
    #[must_use]
    pub fn alloc(&self, j: usize) -> &[ProcId] {
        &self.alloc[j]
    }

    /// Replication factor `k_j = |alloc(j)|`.
    #[inline]
    #[must_use]
    pub fn replication(&self, j: usize) -> usize {
        self.alloc[j].len()
    }

    /// All intervals.
    #[inline]
    #[must_use]
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// Iterator over `(interval, replica set)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Interval, &[ProcId])> {
        self.intervals
            .iter()
            .copied()
            .zip(self.alloc.iter().map(Vec::as_slice))
    }

    /// Every processor used by the mapping, sorted.
    #[must_use]
    pub fn used_processors(&self) -> Vec<ProcId> {
        let mut all: Vec<ProcId> = self.alloc.iter().flatten().copied().collect();
        all.sort_unstable();
        all
    }

    /// Total number of replicas `Σ k_j` (equals used processor count since
    /// allocations are disjoint).
    #[must_use]
    pub fn total_replicas(&self) -> usize {
        self.alloc.iter().map(Vec::len).sum()
    }

    /// Index of the interval containing `stage`.
    #[must_use]
    pub fn interval_of_stage(&self, stage: usize) -> Option<usize> {
        self.intervals.iter().position(|iv| iv.contains(stage))
    }

    /// Number of stages covered (`n`).
    #[must_use]
    pub fn n_stages(&self) -> usize {
        self.intervals.last().map_or(0, |iv| iv.end + 1)
    }
}

impl std::fmt::Display for IntervalMapping {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (j, (iv, procs)) in self.iter().enumerate() {
            if j > 0 {
                write!(f, " | ")?;
            }
            write!(f, "{iv} -> {{")?;
            for (i, p) in procs.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{p}")?;
            }
            write!(f, "}}")?;
        }
        Ok(())
    }
}

/// A one-to-one mapping: stage `k` on processor `procs[k]`, all distinct.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OneToOneMapping {
    procs: Vec<ProcId>,
}

impl OneToOneMapping {
    /// Validates distinctness and range.
    ///
    /// # Errors
    /// * [`CoreError::EmptyPipeline`] when `procs` is empty,
    /// * [`CoreError::ProcOutOfRange`] / [`CoreError::OverlappingAllocation`]
    ///   on bad ids,
    /// * [`CoreError::TooFewProcessors`] when `n_stages > n_procs`.
    pub fn new(procs: Vec<ProcId>, n_procs: usize) -> Result<Self> {
        if procs.is_empty() {
            return Err(CoreError::EmptyPipeline);
        }
        if procs.len() > n_procs {
            return Err(CoreError::TooFewProcessors {
                needed: procs.len(),
                available: n_procs,
            });
        }
        let mut seen = vec![false; n_procs];
        for &p in &procs {
            if p.index() >= n_procs {
                return Err(CoreError::ProcOutOfRange {
                    proc: p.index(),
                    n_procs,
                });
            }
            if seen[p.index()] {
                return Err(CoreError::OverlappingAllocation { proc: p.index() });
            }
            seen[p.index()] = true;
        }
        Ok(OneToOneMapping { procs })
    }

    /// Processor of 0-based stage `k`.
    #[inline]
    #[must_use]
    pub fn proc(&self, stage: usize) -> ProcId {
        self.procs[stage]
    }

    /// The assignment vector.
    #[inline]
    #[must_use]
    pub fn procs(&self) -> &[ProcId] {
        &self.procs
    }

    /// Number of stages.
    #[inline]
    #[must_use]
    pub fn n_stages(&self) -> usize {
        self.procs.len()
    }

    /// View as an [`IntervalMapping`] of singleton intervals with
    /// replication 1 (always valid: ids are distinct).
    #[must_use]
    pub fn to_interval_mapping(&self, n_procs: usize) -> IntervalMapping {
        let intervals = (0..self.procs.len()).map(Interval::singleton).collect();
        let alloc = self.procs.iter().map(|&p| vec![p]).collect();
        IntervalMapping::new(intervals, alloc, self.procs.len(), n_procs)
            .expect("a valid OneToOneMapping always converts")
    }
}

/// A general mapping: stage `k` on processor `procs[k]`, repeats and
/// non-consecutive reuse allowed (Theorem 4).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GeneralMapping {
    procs: Vec<ProcId>,
}

impl GeneralMapping {
    /// Validates ids only (reuse is the point of this variant).
    ///
    /// # Errors
    /// [`CoreError::EmptyPipeline`] / [`CoreError::ProcOutOfRange`].
    pub fn new(procs: Vec<ProcId>, n_procs: usize) -> Result<Self> {
        if procs.is_empty() {
            return Err(CoreError::EmptyPipeline);
        }
        for &p in &procs {
            if p.index() >= n_procs {
                return Err(CoreError::ProcOutOfRange {
                    proc: p.index(),
                    n_procs,
                });
            }
        }
        Ok(GeneralMapping { procs })
    }

    /// Processor of 0-based stage `k`.
    #[inline]
    #[must_use]
    pub fn proc(&self, stage: usize) -> ProcId {
        self.procs[stage]
    }

    /// The assignment vector.
    #[inline]
    #[must_use]
    pub fn procs(&self) -> &[ProcId] {
        &self.procs
    }

    /// Number of stages.
    #[inline]
    #[must_use]
    pub fn n_stages(&self) -> usize {
        self.procs.len()
    }

    /// Maximal runs of consecutive stages on the same processor, as
    /// `(Interval, ProcId)` pairs — the "blocks" whose boundaries pay
    /// communication.
    #[must_use]
    pub fn runs(&self) -> Vec<(Interval, ProcId)> {
        let mut out = Vec::new();
        let mut start = 0usize;
        for k in 1..self.procs.len() {
            if self.procs[k] != self.procs[k - 1] {
                out.push((Interval { start, end: k - 1 }, self.procs[k - 1]));
                start = k;
            }
        }
        out.push((
            Interval {
                start,
                end: self.procs.len() - 1,
            },
            self.procs[self.procs.len() - 1],
        ));
        out
    }

    /// `true` when no processor appears in two different runs — i.e. the
    /// mapping is actually interval-based and convertible.
    #[must_use]
    pub fn is_interval_based(&self, n_procs: usize) -> bool {
        let runs = self.runs();
        let mut seen = vec![false; n_procs];
        for &(_, p) in &runs {
            if seen[p.index()] {
                return false;
            }
            seen[p.index()] = true;
        }
        true
    }

    /// Converts to an [`IntervalMapping`] (replication 1) when
    /// [`is_interval_based`](Self::is_interval_based).
    ///
    /// # Errors
    /// [`CoreError::OverlappingAllocation`] when some processor serves two
    /// non-adjacent runs.
    pub fn to_interval_mapping(&self, n_procs: usize) -> Result<IntervalMapping> {
        let runs = self.runs();
        let intervals: Vec<Interval> = runs.iter().map(|&(iv, _)| iv).collect();
        let alloc: Vec<Vec<ProcId>> = runs.iter().map(|&(_, p)| vec![p]).collect();
        IntervalMapping::new(intervals, alloc, self.procs.len(), n_procs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> ProcId {
        ProcId(i)
    }

    #[test]
    fn interval_basics() {
        let iv = Interval::new(1, 3).unwrap();
        assert_eq!(iv.len(), 3);
        assert!(iv.contains(2));
        assert!(!iv.contains(4));
        assert_eq!(iv.stages().collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(iv.to_string(), "S2..S4");
        assert!(Interval::new(3, 1).is_err());
        assert!(!Interval::singleton(0).is_empty());
    }

    #[test]
    fn valid_mapping_roundtrip() {
        let m = IntervalMapping::new(
            vec![Interval::new(0, 1).unwrap(), Interval::new(2, 4).unwrap()],
            vec![vec![p(2), p(0)], vec![p(1)]],
            5,
            3,
        )
        .unwrap();
        assert_eq!(m.n_intervals(), 2);
        assert_eq!(m.alloc(0), &[p(0), p(2)]); // sorted
        assert_eq!(m.replication(0), 2);
        assert_eq!(m.used_processors(), vec![p(0), p(1), p(2)]);
        assert_eq!(m.total_replicas(), 3);
        assert_eq!(m.interval_of_stage(3), Some(1));
        assert_eq!(m.interval_of_stage(9), None);
        assert_eq!(m.n_stages(), 5);
        assert_eq!(m.to_string(), "S1..S2 -> {P0,P2} | S3..S5 -> {P1}");
    }

    #[test]
    fn duplicate_within_allocation_is_deduped() {
        let m = IntervalMapping::single_interval(2, vec![p(1), p(1), p(0)], 2).unwrap();
        assert_eq!(m.alloc(0), &[p(0), p(1)]);
    }

    #[test]
    fn rejects_gap_between_intervals() {
        let err = IntervalMapping::new(
            vec![Interval::new(0, 0).unwrap(), Interval::new(2, 2).unwrap()],
            vec![vec![p(0)], vec![p(1)]],
            3,
            2,
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::NonContiguousIntervals { at: 1 }));
    }

    #[test]
    fn rejects_incomplete_cover() {
        let err = IntervalMapping::new(vec![Interval::new(0, 1).unwrap()], vec![vec![p(0)]], 3, 2)
            .unwrap_err();
        assert!(matches!(err, CoreError::NonContiguousIntervals { .. }));
    }

    #[test]
    fn rejects_out_of_range_stage() {
        let err = IntervalMapping::new(vec![Interval::new(0, 3).unwrap()], vec![vec![p(0)]], 3, 2)
            .unwrap_err();
        assert!(matches!(err, CoreError::InvalidInterval { .. }));
    }

    #[test]
    fn rejects_empty_allocation() {
        let err = IntervalMapping::new(vec![Interval::new(0, 0).unwrap()], vec![vec![]], 1, 2)
            .unwrap_err();
        assert!(matches!(err, CoreError::EmptyAllocation { interval: 0 }));
    }

    #[test]
    fn rejects_overlapping_allocations() {
        let err = IntervalMapping::new(
            vec![Interval::new(0, 0).unwrap(), Interval::new(1, 1).unwrap()],
            vec![vec![p(0)], vec![p(0)]],
            2,
            2,
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::OverlappingAllocation { proc: 0 }));
    }

    #[test]
    fn rejects_out_of_range_proc() {
        let err = IntervalMapping::single_interval(1, vec![p(5)], 2).unwrap_err();
        assert!(matches!(
            err,
            CoreError::ProcOutOfRange {
                proc: 5,
                n_procs: 2
            }
        ));
    }

    #[test]
    fn one_to_one_validation() {
        assert!(OneToOneMapping::new(vec![p(0), p(1)], 2).is_ok());
        assert!(matches!(
            OneToOneMapping::new(vec![p(0), p(0)], 2).unwrap_err(),
            CoreError::OverlappingAllocation { .. }
        ));
        assert!(matches!(
            OneToOneMapping::new(vec![p(0), p(1), p(2)], 2).unwrap_err(),
            CoreError::TooFewProcessors {
                needed: 3,
                available: 2
            }
        ));
    }

    #[test]
    fn one_to_one_to_interval() {
        let o = OneToOneMapping::new(vec![p(1), p(0)], 3).unwrap();
        let m = o.to_interval_mapping(3);
        assert_eq!(m.n_intervals(), 2);
        assert_eq!(m.alloc(0), &[p(1)]);
        assert_eq!(m.alloc(1), &[p(0)]);
    }

    #[test]
    fn general_mapping_runs() {
        let g = GeneralMapping::new(vec![p(0), p(0), p(1), p(0)], 2).unwrap();
        let runs = g.runs();
        assert_eq!(runs.len(), 3);
        assert_eq!(runs[0], (Interval::new(0, 1).unwrap(), p(0)));
        assert_eq!(runs[1], (Interval::new(2, 2).unwrap(), p(1)));
        assert_eq!(runs[2], (Interval::new(3, 3).unwrap(), p(0)));
        assert!(!g.is_interval_based(2));
        assert!(g.to_interval_mapping(2).is_err());
    }

    #[test]
    fn general_mapping_interval_based_converts() {
        let g = GeneralMapping::new(vec![p(0), p(0), p(1)], 2).unwrap();
        assert!(g.is_interval_based(2));
        let m = g.to_interval_mapping(2).unwrap();
        assert_eq!(m.n_intervals(), 2);
        assert_eq!(m.interval(0), Interval::new(0, 1).unwrap());
    }

    #[test]
    fn single_interval_constructor() {
        let m = IntervalMapping::single_interval(4, vec![p(0), p(2)], 3).unwrap();
        assert_eq!(m.n_intervals(), 1);
        assert_eq!(m.interval(0), Interval::new(0, 3).unwrap());
    }
}
