//! Seeded jittered exponential backoff.
//!
//! The retry delay schedule used by fault-handling layers (the fleet's
//! per-peer circuit breaker, most prominently): attempt `k` draws a
//! uniformly random delay from `[base, min(cap, base·2^k)]` — "full
//! jitter" over an exponentially growing ceiling. The exponential growth
//! bounds how hard a dead peer is hammered; the jitter decorrelates
//! retries across nodes so a fleet does not probe a recovering peer in
//! lockstep; the cap keeps the worst-case reaction time to a recovery
//! bounded.
//!
//! The generator is seeded, so a given `(seed, attempt sequence)` always
//! produces the same delays — deterministic tests can assert exact
//! schedules, and every delay is **guaranteed** to lie within
//! `[base, cap]` (property-tested in this module).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Exponent ceiling: beyond `base·2^32` the cap has long since taken
/// over for any sane configuration, and saturating here keeps the shift
/// well-defined.
const MAX_EXPONENT: u32 = 32;

/// A seeded jittered exponential backoff schedule.
///
/// ```
/// use rpwf_core::backoff::JitteredBackoff;
/// use std::time::Duration;
///
/// let base = Duration::from_millis(100);
/// let cap = Duration::from_secs(5);
/// let mut backoff = JitteredBackoff::new(base, cap, 0xFEED);
/// for _ in 0..10 {
///     let delay = backoff.next_delay();
///     assert!(delay >= base && delay <= cap);
/// }
/// backoff.reset(); // a success restarts the schedule
/// assert_eq!(backoff.attempt(), 0);
/// ```
#[derive(Clone, Debug)]
pub struct JitteredBackoff {
    base: Duration,
    cap: Duration,
    attempt: u32,
    rng: StdRng,
}

impl JitteredBackoff {
    /// A schedule starting at `base` and never exceeding `cap` (a cap
    /// below the base is clamped up to it), seeded for determinism.
    #[must_use]
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Self {
        JitteredBackoff {
            base,
            cap: cap.max(base),
            attempt: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The minimum delay this schedule can produce.
    #[must_use]
    pub fn base(&self) -> Duration {
        self.base
    }

    /// The maximum delay this schedule can produce.
    #[must_use]
    pub fn cap(&self) -> Duration {
        self.cap
    }

    /// Attempts drawn since construction or the last [`reset`](Self::reset).
    #[must_use]
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// Draws the next delay: uniform in `[base, min(cap, base·2^attempt)]`,
    /// then advances the attempt counter.
    pub fn next_delay(&mut self) -> Duration {
        let exponent = self.attempt.min(MAX_EXPONENT);
        let ceiling = if exponent >= 31 {
            // `Duration::saturating_mul` takes a u32 factor; beyond 2^31
            // the cap rules anyway.
            self.cap
        } else {
            self.base.saturating_mul(1u32 << exponent).min(self.cap)
        };
        let ceiling = ceiling.max(self.base);
        self.attempt = self.attempt.saturating_add(1);
        let lo = u64::try_from(self.base.as_nanos()).unwrap_or(u64::MAX);
        let hi = u64::try_from(ceiling.as_nanos()).unwrap_or(u64::MAX);
        Duration::from_nanos(self.rng.gen_range(lo..=hi))
    }

    /// Restarts the schedule (after a success): the next delay is drawn
    /// from `[base, base]` again. The RNG stream keeps advancing — reset
    /// affects the window, not the randomness.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn same_seed_same_schedule() {
        let base = Duration::from_millis(50);
        let cap = Duration::from_secs(10);
        let mut a = JitteredBackoff::new(base, cap, 42);
        let mut b = JitteredBackoff::new(base, cap, 42);
        for _ in 0..32 {
            assert_eq!(a.next_delay(), b.next_delay());
        }
    }

    #[test]
    fn first_delay_is_exactly_the_base() {
        let base = Duration::from_millis(250);
        let mut backoff = JitteredBackoff::new(base, Duration::from_secs(30), 7);
        // Attempt 0: the window is [base, base·2^0] = [base, base].
        assert_eq!(backoff.next_delay(), base);
    }

    #[test]
    fn reset_restarts_the_window() {
        let base = Duration::from_millis(100);
        let mut backoff = JitteredBackoff::new(base, Duration::from_secs(60), 1);
        for _ in 0..8 {
            let _ = backoff.next_delay();
        }
        assert_eq!(backoff.attempt(), 8);
        backoff.reset();
        assert_eq!(backoff.attempt(), 0);
        assert_eq!(backoff.next_delay(), base);
    }

    #[test]
    fn cap_below_base_is_clamped() {
        let base = Duration::from_secs(2);
        let mut backoff = JitteredBackoff::new(base, Duration::from_millis(1), 3);
        assert_eq!(backoff.cap(), base);
        assert_eq!(backoff.next_delay(), base);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// The load-bearing contract: **every** delay of **every** seeded
        /// schedule lies within `[base, cap]`, regardless of attempt
        /// count, zero bases, or cap/base inversions.
        #[test]
        fn every_delay_is_within_base_and_cap(
            seed in 0u64..u64::MAX,
            base_us in 0u64..5_000_000,
            cap_us in 0u64..5_000_000,
            draws in 1usize..64,
            resets in proptest::collection::vec(0u8..2, 0..64),
        ) {
            let base = Duration::from_micros(base_us);
            let cap = Duration::from_micros(cap_us);
            let mut backoff = JitteredBackoff::new(base, cap, seed);
            let effective_cap = cap.max(base);
            for i in 0..draws {
                if resets.get(i).copied().unwrap_or(0) == 1 {
                    backoff.reset();
                }
                let delay = backoff.next_delay();
                prop_assert!(delay >= base, "delay {delay:?} under base {base:?}");
                prop_assert!(
                    delay <= effective_cap,
                    "delay {delay:?} over cap {effective_cap:?}"
                );
            }
        }

        /// The exponential ceiling is monotone until the cap: an earlier
        /// window never allows a delay the later window forbids.
        #[test]
        fn windows_grow_monotonically(seed in 0u64..u64::MAX, base_ms in 1u64..50) {
            let base = Duration::from_millis(base_ms);
            let cap = Duration::from_secs(120);
            let mut backoff = JitteredBackoff::new(base, cap, seed);
            let mut prev_ceiling = Duration::ZERO;
            for attempt in 0..16u32 {
                let delay = backoff.next_delay();
                let ceiling = base.saturating_mul(1u32 << attempt).min(cap);
                prop_assert!(delay <= ceiling);
                prop_assert!(ceiling >= prev_ceiling);
                prev_ceiling = ceiling;
            }
        }
    }
}
