//! Numeric helpers shared across the workspace.
//!
//! All model quantities (work, data sizes, speeds, bandwidths, probabilities,
//! latencies) are `f64`. This module centralizes the floating-point
//! conventions used everywhere else:
//!
//! * [`approx_eq`] / [`assert_approx_eq!`](crate::assert_approx_eq) for
//!   tolerant comparisons in tests and cross-validation code,
//! * [`TotalF64`] as a total-order key for heaps and sorts,
//! * [`LogProb`] for products of many probabilities without underflow,
//! * [`kahan_sum`] for compensated summation of long series.

use serde::{Deserialize, Serialize};

/// Default relative tolerance used by [`approx_eq`].
pub const DEFAULT_REL_TOL: f64 = 1e-9;

/// Absolute floor below which two numbers are considered equal regardless of
/// relative error (guards comparisons around zero).
pub const DEFAULT_ABS_TOL: f64 = 1e-12;

/// Relative/absolute tolerance comparison.
///
/// Returns `true` when `a` and `b` are within `rel_tol` relative error of the
/// larger magnitude, or within [`DEFAULT_ABS_TOL`] absolutely. Infinities
/// compare equal to themselves.
#[inline]
#[must_use]
pub fn approx_eq(a: f64, b: f64, rel_tol: f64) -> bool {
    if a == b {
        return true; // covers equal infinities and exact hits
    }
    if !a.is_finite() || !b.is_finite() {
        return false;
    }
    let diff = (a - b).abs();
    diff <= DEFAULT_ABS_TOL || diff <= rel_tol * a.abs().max(b.abs())
}

/// [`approx_eq`] with the workspace default tolerance.
#[inline]
#[must_use]
pub fn approx_eq_default(a: f64, b: f64) -> bool {
    approx_eq(a, b, DEFAULT_REL_TOL)
}

/// Asserts two floats are approximately equal (default tolerance, or an
/// explicit third argument).
#[macro_export]
macro_rules! assert_approx_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = ($a, $b);
        assert!(
            $crate::num::approx_eq(a, b, $crate::num::DEFAULT_REL_TOL),
            "assert_approx_eq failed: {a} vs {b}"
        );
    }};
    ($a:expr, $b:expr, $tol:expr) => {{
        let (a, b, tol) = ($a, $b, $tol);
        assert!(
            $crate::num::approx_eq(a, b, tol),
            "assert_approx_eq failed: {a} vs {b} (tol {tol})"
        );
    }};
}

/// An `f64` with the IEEE-754 `totalOrder` predicate, usable as a key in
/// `BinaryHeap`/`BTreeMap` or for `sort`.
///
/// NaN sorts after `+inf`; `-0.0 < +0.0`. Model code never produces NaN, but
/// the wrapper keeps sorting well-defined regardless.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TotalF64(pub f64);

impl Eq for TotalF64 {}

impl PartialOrd for TotalF64 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TotalF64 {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl From<f64> for TotalF64 {
    #[inline]
    fn from(v: f64) -> Self {
        TotalF64(v)
    }
}

impl std::fmt::Display for TotalF64 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// A probability stored as its natural logarithm.
///
/// Reliability computations multiply long chains of per-processor failure
/// probabilities (`Π fp_u`) and per-interval survival terms
/// (`Π (1 − Π fp_u)`); with hundreds of processors the linear-space product
/// underflows. `LogProb` keeps full precision: multiplication is addition of
/// logs, and [`LogProb::one_minus`] evaluates `1 − p` stably via
/// `ln(1 − e^l)` with the `expm1`/`ln_1p` split recommended for log-space
/// complements.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LogProb {
    ln: f64,
}

impl LogProb {
    /// Probability 1 (log 0).
    pub const ONE: LogProb = LogProb { ln: 0.0 };
    /// Probability 0 (log −∞).
    pub const ZERO: LogProb = LogProb {
        ln: f64::NEG_INFINITY,
    };

    /// Wraps a linear-space probability. Values are clamped to `[0, 1]`.
    #[inline]
    #[must_use]
    pub fn from_prob(p: f64) -> Self {
        let p = p.clamp(0.0, 1.0);
        LogProb { ln: p.ln() }
    }

    /// Wraps a log-space value directly (must be ≤ 0 for a probability).
    #[inline]
    #[must_use]
    pub fn from_ln(ln: f64) -> Self {
        LogProb { ln }
    }

    /// The stored natural logarithm.
    #[inline]
    #[must_use]
    pub fn ln(self) -> f64 {
        self.ln
    }

    /// Back to linear space (may underflow to 0.0, by design).
    #[inline]
    #[must_use]
    pub fn to_prob(self) -> f64 {
        self.ln.exp()
    }

    /// Stable `1 − p` in log space.
    ///
    /// For `l = ln p`: `ln(1 − e^l) = ln(−expm1(l))`, computed with `ln_1p`
    /// when `e^l` is small to avoid cancellation.
    #[inline]
    #[must_use]
    pub fn one_minus(self) -> Self {
        if self.ln == f64::NEG_INFINITY {
            return LogProb::ONE;
        }
        if self.ln >= 0.0 {
            return LogProb::ZERO;
        }
        // For l close to 0 (p close to 1), use ln(-expm1(l)) directly;
        // for very negative l (tiny p), ln_1p(-e^l) is the stable form.
        let ln = if self.ln > -0.693 {
            (-self.ln.exp_m1()).ln()
        } else {
            (-self.ln.exp()).ln_1p()
        };
        LogProb { ln }
    }

    /// `true` when the stored probability is exactly zero.
    #[inline]
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.ln == f64::NEG_INFINITY
    }
}

impl std::ops::Mul for LogProb {
    type Output = LogProb;

    /// Log-space product `self · other` (addition of logs).
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // log-space: mul IS add
    fn mul(self, other: LogProb) -> LogProb {
        LogProb {
            ln: self.ln + other.ln,
        }
    }
}

impl Eq for LogProb {}

impl PartialOrd for LogProb {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for LogProb {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.ln.total_cmp(&other.ln)
    }
}

/// Compensated (Kahan–Babuška) summation.
///
/// Latency formulas sum long per-interval series; compensated summation keeps
/// the cross-validation between analytic formulas, DP solvers and the
/// simulator bit-tight enough for the default tolerance.
#[must_use]
pub fn kahan_sum<I: IntoIterator<Item = f64>>(values: I) -> f64 {
    let mut sum = 0.0f64;
    let mut c = 0.0f64;
    for v in values {
        let t = sum + v;
        if sum.abs() >= v.abs() {
            c += (sum - t) + v;
        } else {
            c += (v - t) + sum;
        }
        sum = t;
    }
    sum + c
}

/// Minimum of an f64 iterator under total order; `None` when empty.
#[must_use]
pub fn min_f64<I: IntoIterator<Item = f64>>(values: I) -> Option<f64> {
    values.into_iter().min_by(|a, b| a.total_cmp(b))
}

/// Maximum of an f64 iterator under total order; `None` when empty.
#[must_use]
pub fn max_f64<I: IntoIterator<Item = f64>>(values: I) -> Option<f64> {
    values.into_iter().max_by(|a, b| a.total_cmp(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_basics() {
        assert!(approx_eq_default(1.0, 1.0));
        assert!(approx_eq_default(1.0, 1.0 + 1e-12));
        assert!(!approx_eq_default(1.0, 1.001));
        assert!(approx_eq_default(0.0, 1e-13));
        assert!(approx_eq_default(f64::INFINITY, f64::INFINITY));
        assert!(!approx_eq_default(f64::INFINITY, 1.0));
        assert!(!approx_eq_default(f64::NAN, f64::NAN));
    }

    #[test]
    fn approx_eq_relative_scales() {
        assert!(approx_eq(1e12, 1e12 + 1.0, 1e-9));
        assert!(!approx_eq(1e12, 1e12 + 1e5, 1e-9));
    }

    #[test]
    fn total_f64_ordering() {
        let mut v = [
            TotalF64(3.0),
            TotalF64(f64::NAN),
            TotalF64(-1.0),
            TotalF64(0.0),
        ];
        v.sort();
        assert_eq!(v[0].0, -1.0);
        assert_eq!(v[1].0, 0.0);
        assert_eq!(v[2].0, 3.0);
        assert!(v[3].0.is_nan());
    }

    #[test]
    fn log_prob_roundtrip() {
        for &p in &[0.0, 1e-300, 0.1, 0.5, 0.9, 1.0] {
            let lp = LogProb::from_prob(p);
            assert!(approx_eq(lp.to_prob(), p, 1e-12), "p={p}");
        }
    }

    #[test]
    fn log_prob_product_matches_linear() {
        let probs = [0.8, 0.5, 0.9, 0.99];
        let linear: f64 = probs.iter().product();
        let logp = probs
            .iter()
            .fold(LogProb::ONE, |acc, &p| acc * LogProb::from_prob(p));
        assert!(approx_eq_default(logp.to_prob(), linear));
    }

    #[test]
    fn log_prob_no_underflow() {
        // 0.5^2000 underflows linearly but stays exact in log space.
        let mut lp = LogProb::ONE;
        for _ in 0..2000 {
            lp = lp * LogProb::from_prob(0.5);
        }
        assert!(approx_eq(lp.ln(), 2000.0 * 0.5f64.ln(), 1e-12));
        assert_eq!(lp.to_prob(), 0.0); // linear space underflows, as expected
    }

    #[test]
    fn log_prob_one_minus() {
        for &p in &[0.0, 1e-12, 0.3, 0.9999999, 1.0] {
            let got = LogProb::from_prob(p).one_minus().to_prob();
            assert!(approx_eq(got, 1.0 - p, 1e-9), "p={p}: {got}");
        }
    }

    #[test]
    fn log_prob_one_minus_extremes() {
        assert_eq!(LogProb::ZERO.one_minus(), LogProb::ONE);
        assert_eq!(LogProb::ONE.one_minus(), LogProb::ZERO);
    }

    #[test]
    fn kahan_sum_is_accurate() {
        // 1 + 1e-16 * 1e5 naively loses the small terms.
        let mut values = vec![1.0f64];
        values.extend(std::iter::repeat_n(1e-16, 100_000));
        let k = kahan_sum(values.iter().copied());
        assert!(approx_eq(k, 1.0 + 1e-11, 1e-12), "{k}");
    }

    #[test]
    fn min_max_helpers() {
        assert_eq!(min_f64([3.0, 1.0, 2.0]), Some(1.0));
        assert_eq!(max_f64([3.0, 1.0, 2.0]), Some(3.0));
        assert_eq!(min_f64(std::iter::empty()), None);
    }
}
