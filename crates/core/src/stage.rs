//! The application side of the model: linear pipelines of stages.
//!
//! A pipeline of `n` stages `S_1 … S_n` (Figure 1 of the paper) is fully
//! described by two vectors:
//!
//! * `works[k]` — the computation volume `w_{k+1}` of stage `k` (0-based),
//! * `deltas[i]` — the data size `δ_i` flowing *between* stage `i` and stage
//!   `i+1`, with `deltas[0] = δ_0` the input read from `P_in` and
//!   `deltas[n] = δ_n` the result sent to `P_out`.
//!
//! [`Pipeline`] is immutable after construction and precomputes a prefix-sum
//! of works so that the `Σ w_i` term of every latency formula is O(1) per
//! interval.

use crate::error::{CoreError, Result};
use crate::mapping::Interval;
use serde::{Deserialize, Serialize};

/// A single pipeline stage: its compute volume and output data size.
///
/// Used by [`PipelineBuilder`]; the packed [`Pipeline`] representation is
/// what the solvers consume.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Stage {
    /// Computation volume `w_k` (floating point operations).
    pub work: f64,
    /// Size `δ_k` of the data this stage sends onward.
    pub output_size: f64,
}

/// An immutable `n`-stage linear pipeline.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Pipeline {
    /// `δ_0 … δ_n` (length `n + 1`).
    deltas: Vec<f64>,
    /// `w_1 … w_n` (length `n`).
    works: Vec<f64>,
    /// `work_prefix[i] = Σ_{k < i} works[k]` (length `n + 1`).
    #[serde(skip)]
    work_prefix: Vec<f64>,
}

impl Pipeline {
    /// Builds a pipeline from its work vector (`n` entries) and data-size
    /// vector (`n + 1` entries, `δ_0 … δ_n`).
    ///
    /// # Errors
    /// * [`CoreError::EmptyPipeline`] when `works` is empty,
    /// * [`CoreError::DimensionMismatch`] when `deltas.len() != works.len()+1`,
    /// * [`CoreError::InvalidValue`] when any entry is negative or non-finite
    ///   (zero is legal: a stage may be pure compute or pure forwarding).
    pub fn new(works: Vec<f64>, deltas: Vec<f64>) -> Result<Self> {
        if works.is_empty() {
            return Err(CoreError::EmptyPipeline);
        }
        if deltas.len() != works.len() + 1 {
            return Err(CoreError::DimensionMismatch {
                what: "pipeline deltas",
                expected: works.len() + 1,
                actual: deltas.len(),
            });
        }
        for &w in &works {
            if !w.is_finite() || w < 0.0 {
                return Err(CoreError::InvalidValue {
                    what: "stage work",
                    value: w,
                });
            }
        }
        for &d in &deltas {
            if !d.is_finite() || d < 0.0 {
                return Err(CoreError::InvalidValue {
                    what: "data size",
                    value: d,
                });
            }
        }
        let work_prefix = prefix_sums(&works);
        Ok(Pipeline {
            deltas,
            works,
            work_prefix,
        })
    }

    /// A pipeline whose `n` stages all have work `w` and whose `n + 1` data
    /// sizes all equal `delta`.
    pub fn uniform(n: usize, w: f64, delta: f64) -> Result<Self> {
        Pipeline::new(vec![w; n], vec![delta; n + 1])
    }

    /// Number of stages `n`.
    #[inline]
    #[must_use]
    pub fn n_stages(&self) -> usize {
        self.works.len()
    }

    /// Work `w_{k+1}` of 0-based stage `k`.
    #[inline]
    #[must_use]
    pub fn work(&self, stage: usize) -> f64 {
        self.works[stage]
    }

    /// Data size `δ_i`, `0 ≤ i ≤ n`. `delta(0)` is the pipeline input size,
    /// `delta(n)` the output size.
    #[inline]
    #[must_use]
    pub fn delta(&self, i: usize) -> f64 {
        self.deltas[i]
    }

    /// Input size `δ_0` read from `P_in`.
    #[inline]
    #[must_use]
    pub fn input_size(&self) -> f64 {
        self.deltas[0]
    }

    /// Output size `δ_n` sent to `P_out`.
    #[inline]
    #[must_use]
    pub fn output_size(&self) -> f64 {
        self.deltas[self.works.len()]
    }

    /// All works, `w_1 … w_n`.
    #[inline]
    #[must_use]
    pub fn works(&self) -> &[f64] {
        &self.works
    }

    /// All data sizes, `δ_0 … δ_n`.
    #[inline]
    #[must_use]
    pub fn deltas(&self) -> &[f64] {
        &self.deltas
    }

    /// `Σ_{k ∈ [start, end]} w_k` for 0-based inclusive stage bounds, O(1).
    #[inline]
    #[must_use]
    pub fn work_sum(&self, start: usize, end: usize) -> f64 {
        debug_assert!(start <= end && end < self.works.len());
        self.work_prefix[end + 1] - self.work_prefix[start]
    }

    /// Total work of an [`Interval`], O(1).
    #[inline]
    #[must_use]
    pub fn interval_work(&self, iv: Interval) -> f64 {
        self.work_sum(iv.start(), iv.end())
    }

    /// Data size entering an interval: `δ_{d_j − 1}` in paper indexing, i.e.
    /// `deltas[iv.start()]` in 0-based indexing.
    #[inline]
    #[must_use]
    pub fn interval_input(&self, iv: Interval) -> f64 {
        self.deltas[iv.start()]
    }

    /// Data size leaving an interval: `δ_{e_j}` in paper indexing, i.e.
    /// `deltas[iv.end() + 1]`.
    #[inline]
    #[must_use]
    pub fn interval_output(&self, iv: Interval) -> f64 {
        self.deltas[iv.end() + 1]
    }

    /// `Σ w_k` over the whole pipeline.
    #[inline]
    #[must_use]
    pub fn total_work(&self) -> f64 {
        self.work_prefix[self.works.len()]
    }

    /// Rebuilds the prefix-sum cache (needed after deserialization, where the
    /// cache is skipped).
    #[must_use]
    pub fn with_rebuilt_cache(mut self) -> Self {
        self.work_prefix = prefix_sums(&self.works);
        self
    }
}

fn prefix_sums(works: &[f64]) -> Vec<f64> {
    let mut prefix = Vec::with_capacity(works.len() + 1);
    let mut acc = 0.0;
    prefix.push(0.0);
    for &w in works {
        acc += w;
        prefix.push(acc);
    }
    prefix
}

/// Incremental pipeline construction, stage by stage.
///
/// ```
/// use rpwf_core::stage::PipelineBuilder;
/// let pipe = PipelineBuilder::with_input_size(100.0)
///     .stage(2.0, 100.0)
///     .stage(2.0, 100.0)
///     .build()
///     .unwrap();
/// assert_eq!(pipe.n_stages(), 2);
/// assert_eq!(pipe.input_size(), 100.0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct PipelineBuilder {
    input_size: f64,
    stages: Vec<Stage>,
}

impl PipelineBuilder {
    /// Starts a pipeline whose first stage will read `δ_0 = input_size`.
    #[must_use]
    pub fn with_input_size(input_size: f64) -> Self {
        PipelineBuilder {
            input_size,
            stages: Vec::new(),
        }
    }

    /// Appends a stage computing `work` and emitting `output_size` bytes.
    #[must_use]
    pub fn stage(mut self, work: f64, output_size: f64) -> Self {
        self.stages.push(Stage { work, output_size });
        self
    }

    /// Appends a prebuilt [`Stage`].
    #[must_use]
    pub fn push(mut self, stage: Stage) -> Self {
        self.stages.push(stage);
        self
    }

    /// Number of stages added so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// `true` when no stage has been added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Finalizes into a validated [`Pipeline`].
    ///
    /// # Errors
    /// Same conditions as [`Pipeline::new`].
    pub fn build(self) -> Result<Pipeline> {
        let works: Vec<f64> = self.stages.iter().map(|s| s.work).collect();
        let mut deltas = Vec::with_capacity(self.stages.len() + 1);
        deltas.push(self.input_size);
        deltas.extend(self.stages.iter().map(|s| s.output_size));
        Pipeline::new(works, deltas)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_approx_eq;

    fn sample() -> Pipeline {
        Pipeline::new(vec![1.0, 2.0, 3.0], vec![10.0, 20.0, 30.0, 40.0]).unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let p = sample();
        assert_eq!(p.n_stages(), 3);
        assert_eq!(p.work(1), 2.0);
        assert_eq!(p.delta(0), 10.0);
        assert_eq!(p.input_size(), 10.0);
        assert_eq!(p.output_size(), 40.0);
        assert_eq!(p.total_work(), 6.0);
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(
            Pipeline::new(vec![], vec![1.0]),
            Err(CoreError::EmptyPipeline)
        );
    }

    #[test]
    fn rejects_dimension_mismatch() {
        let err = Pipeline::new(vec![1.0], vec![1.0]).unwrap_err();
        assert!(matches!(err, CoreError::DimensionMismatch { .. }));
    }

    #[test]
    fn rejects_negative_and_nonfinite() {
        assert!(matches!(
            Pipeline::new(vec![-1.0], vec![0.0, 0.0]).unwrap_err(),
            CoreError::InvalidValue {
                what: "stage work",
                ..
            }
        ));
        assert!(matches!(
            Pipeline::new(vec![1.0], vec![f64::NAN, 0.0]).unwrap_err(),
            CoreError::InvalidValue {
                what: "data size",
                ..
            }
        ));
        assert!(matches!(
            Pipeline::new(vec![f64::INFINITY], vec![0.0, 0.0]).unwrap_err(),
            CoreError::InvalidValue { .. }
        ));
    }

    #[test]
    fn zero_work_and_zero_delta_are_legal() {
        let p = Pipeline::new(vec![0.0, 5.0], vec![0.0, 0.0, 0.0]).unwrap();
        assert_eq!(p.total_work(), 5.0);
    }

    #[test]
    fn work_sums_match_naive() {
        let p = sample();
        for s in 0..3 {
            for e in s..3 {
                let naive: f64 = (s..=e).map(|k| p.work(k)).sum();
                assert_approx_eq!(p.work_sum(s, e), naive);
            }
        }
    }

    #[test]
    fn interval_io_sizes() {
        let p = sample();
        let iv = Interval::new(1, 2).unwrap();
        assert_eq!(p.interval_input(iv), 20.0);
        assert_eq!(p.interval_output(iv), 40.0);
        assert_eq!(p.interval_work(iv), 5.0);
    }

    #[test]
    fn uniform_pipeline() {
        let p = Pipeline::uniform(4, 2.5, 7.0).unwrap();
        assert_eq!(p.n_stages(), 4);
        assert!(p.works().iter().all(|&w| w == 2.5));
        assert!(p.deltas().iter().all(|&d| d == 7.0));
    }

    #[test]
    fn builder_matches_direct_construction() {
        let built = PipelineBuilder::with_input_size(10.0)
            .stage(1.0, 20.0)
            .stage(2.0, 30.0)
            .stage(3.0, 40.0)
            .build()
            .unwrap();
        assert_eq!(built, sample());
    }

    #[test]
    fn builder_push_and_len() {
        let b = PipelineBuilder::with_input_size(1.0).push(Stage {
            work: 1.0,
            output_size: 2.0,
        });
        assert_eq!(b.len(), 1);
        assert!(!b.is_empty());
        assert!(b.build().is_ok());
    }

    #[test]
    fn builder_empty_fails() {
        assert_eq!(
            PipelineBuilder::with_input_size(1.0).build().unwrap_err(),
            CoreError::EmptyPipeline
        );
    }

    #[test]
    fn figure3_pipeline_of_the_paper() {
        // §3, Figure 3: two stages, w = 2 each, δ = 100 everywhere.
        let p = Pipeline::new(vec![2.0, 2.0], vec![100.0, 100.0, 100.0]).unwrap();
        assert_eq!(p.total_work(), 4.0);
        assert_eq!(p.input_size(), 100.0);
        assert_eq!(p.output_size(), 100.0);
    }

    #[test]
    fn rebuilt_cache_preserves_sums() {
        let p = sample().with_rebuilt_cache();
        assert_approx_eq!(p.work_sum(0, 2), 6.0);
    }
}
