//! The two objectives: failure probability and latency.
//!
//! * **Failure probability** (§2.2):
//!   `FP = 1 − Π_j (1 − Π_{u∈alloc(j)} fp_u)` — the application fails iff
//!   *all* replicas of *some* interval fail. Computed in log space
//!   ([`crate::num::LogProb`]) so that mappings with hundreds of replicas
//!   keep full precision.
//!
//! * **Latency**: worst-case response time of one data set.
//!   - Equation (1) for Fully Homogeneous / Communication Homogeneous
//!     platforms ([`latency_eq1`]); the input to interval `j` is paid
//!     `k_j` times because one-port sends to the replicas are serialized and
//!     in the worst case the surviving replica is served last.
//!   - Equation (2) for Fully Heterogeneous platforms ([`latency_eq2`]):
//!     serialized input from `P_in` to every replica of the first interval,
//!     then per interval the worst replica's compute time plus its serialized
//!     sends to every replica of the next interval.
//!
//!   On a communication-homogeneous platform the two formulas coincide
//!   (property-tested in this module and in `tests/`), so [`latency`] simply
//!   evaluates equation (2), which is total.

use crate::error::{CoreError, Result};
use crate::mapping::{GeneralMapping, IntervalMapping, OneToOneMapping};
use crate::num::{kahan_sum, LogProb};
use crate::platform::{Platform, ProcId, Vertex};
use crate::stage::Pipeline;
use serde::{Deserialize, Serialize};

/// Natural log of the success probability `Π_j (1 − Π_{u∈alloc(j)} fp_u)`.
///
/// `-∞` when some interval is mapped only on processors with `fp = 1`.
#[must_use]
pub fn log_success_probability(mapping: &IntervalMapping, platform: &Platform) -> f64 {
    let mut ln_success = 0.0f64;
    for (_, procs) in mapping.iter() {
        let all_fail = procs.iter().fold(LogProb::ONE, |acc, &u| {
            acc * LogProb::from_prob(platform.failure_prob(u))
        });
        ln_success += all_fail.one_minus().ln();
    }
    ln_success
}

/// Global failure probability `FP` of a mapping (linear space).
#[must_use]
pub fn failure_probability(mapping: &IntervalMapping, platform: &Platform) -> f64 {
    let ln_success = log_success_probability(mapping, platform);
    // 1 − e^ln_success, stably.
    -(ln_success.exp_m1())
}

/// Success probability `1 − FP`.
#[must_use]
pub fn reliability(mapping: &IntervalMapping, platform: &Platform) -> f64 {
    log_success_probability(mapping, platform).exp()
}

/// Worst-case latency by equation (1). Requires a uniform bandwidth `b`.
///
/// `T = Σ_j [ k_j · δ_{d_j−1}/b + (Σ_{i∈I_j} w_i) / min_{u∈alloc(j)} s_u ] + δ_n/b`
///
/// # Errors
/// [`CoreError::NotCommHomogeneous`] when links differ.
pub fn latency_eq1(
    mapping: &IntervalMapping,
    pipeline: &Pipeline,
    platform: &Platform,
) -> Result<f64> {
    let b = platform
        .uniform_bandwidth()
        .ok_or(CoreError::NotCommHomogeneous)?;
    let terms = mapping.iter().map(|(iv, procs)| {
        let k = procs.len() as f64;
        let input = pipeline.interval_input(iv);
        let min_speed = procs
            .iter()
            .map(|&u| platform.speed(u))
            .min_by(f64::total_cmp)
            .expect("allocations are non-empty");
        k * input / b + pipeline.interval_work(iv) / min_speed
    });
    Ok(kahan_sum(terms) + pipeline.output_size() / b)
}

/// Worst-case latency by equation (2); total over all platform classes.
///
/// `T = Σ_{u∈alloc(1)} δ_0/b_{in,u}
///    + Σ_j max_{u∈alloc(j)} [ (Σ_{i∈I_j} w_i)/s_u + Σ_{v∈next(j)} δ_{e_j}/b_{u,v} ]`
/// with `next(j) = alloc(j+1)` and `next(p) = {P_out}`.
#[must_use]
pub fn latency_eq2(mapping: &IntervalMapping, pipeline: &Pipeline, platform: &Platform) -> f64 {
    latency_eq2_breakdown(mapping, pipeline, platform).total
}

/// Worst-case latency: dispatches to the paper's formula for the platform
/// (equation (2), which equals equation (1) on homogeneous links).
#[must_use]
pub fn latency(mapping: &IntervalMapping, pipeline: &Pipeline, platform: &Platform) -> f64 {
    latency_eq2(mapping, pipeline, platform)
}

/// Per-interval cost decomposition of the equation-(2) latency.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LatencyBreakdown {
    /// Serialized input from `P_in` to every replica of interval 1.
    pub input_comm: f64,
    /// Per interval `j`: the bottleneck replica's cost
    /// `max_u [W_j/s_u + Σ_v δ_{e_j}/b_{u,v}]` and which replica attains it.
    pub interval_costs: Vec<IntervalCost>,
    /// Total latency (sum of the above).
    pub total: f64,
}

/// Cost attributed to one interval by the worst-case path.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct IntervalCost {
    /// The replica attaining the max.
    pub bottleneck: ProcId,
    /// Compute part `W_j / s_u` of the bottleneck replica.
    pub compute: f64,
    /// Serialized outgoing communication of the bottleneck replica.
    pub out_comm: f64,
}

/// Serialized input cost from `P_in` to every replica in `alloc0` (the
/// first interval's allocation): `Σ_{u∈alloc0} δ_0 / b_{in,u}`.
///
/// Shared by [`latency_eq2_breakdown`] and the incremental evaluator
/// ([`crate::eval::DeltaEval`]), which must agree bit-for-bit.
#[must_use]
pub fn input_comm_cost(alloc0: &[ProcId], input_size: f64, platform: &Platform) -> f64 {
    kahan_sum(
        alloc0
            .iter()
            .map(|&u| platform.comm_time(Vertex::In, Vertex::Proc(u), input_size)),
    )
}

/// The bottleneck-replica cost of one interval under equation (2):
/// `max_{u∈alloc} [ work/s_u + Σ_{v∈next} out_size/b_{u,v} ]`, with
/// `next = None` meaning the interval is last and sends to `P_out`.
///
/// This is the only place the per-interval term is computed; the full
/// breakdown and the incremental evaluator both call it, so their values
/// are bit-identical by construction.
#[must_use]
pub fn interval_cost(
    work: f64,
    out_size: f64,
    alloc: &[ProcId],
    next: Option<&[ProcId]>,
    platform: &Platform,
) -> IntervalCost {
    let mut best: Option<IntervalCost> = None;
    for &u in alloc {
        let compute = work / platform.speed(u);
        let out_comm = match next {
            Some(next) => kahan_sum(
                next.iter()
                    .map(|&v| platform.comm_time(Vertex::Proc(u), Vertex::Proc(v), out_size)),
            ),
            None => platform.comm_time(Vertex::Proc(u), Vertex::Out, out_size),
        };
        let cost = IntervalCost {
            bottleneck: u,
            compute,
            out_comm,
        };
        let replace = match &best {
            None => true,
            Some(b) => (compute + out_comm) > (b.compute + b.out_comm),
        };
        if replace {
            best = Some(cost);
        }
    }
    best.expect("allocations are non-empty")
}

/// Computes [`LatencyBreakdown`] for equation (2).
#[must_use]
pub fn latency_eq2_breakdown(
    mapping: &IntervalMapping,
    pipeline: &Pipeline,
    platform: &Platform,
) -> LatencyBreakdown {
    let p = mapping.n_intervals();
    let input_comm = input_comm_cost(mapping.alloc(0), pipeline.input_size(), platform);

    let mut interval_costs = Vec::with_capacity(p);
    for j in 0..p {
        let iv = mapping.interval(j);
        let next = if j + 1 < p {
            Some(mapping.alloc(j + 1))
        } else {
            None
        };
        interval_costs.push(interval_cost(
            pipeline.interval_work(iv),
            pipeline.interval_output(iv),
            mapping.alloc(j),
            next,
            platform,
        ));
    }

    let total = input_comm + kahan_sum(interval_costs.iter().map(|c| c.compute + c.out_comm));
    LatencyBreakdown {
        input_comm,
        interval_costs,
        total,
    }
}

/// Latency of a [`OneToOneMapping`] (equation (2) with singleton replicas):
/// `δ_0/b_{in,π(1)} + Σ_k w_k/s_{π(k)} + Σ_k δ_k/b_{π(k),π(k+1)} + δ_n/b_{π(n),out}`.
#[must_use]
pub fn one_to_one_latency(
    mapping: &OneToOneMapping,
    pipeline: &Pipeline,
    platform: &Platform,
) -> f64 {
    let m = mapping.to_interval_mapping(platform.n_procs());
    latency_eq2(&m, pipeline, platform)
}

/// Latency of a [`GeneralMapping`] (Theorem 4's relaxation):
/// communication is paid only where consecutive stages sit on different
/// processors; processor reuse across non-consecutive runs is free.
#[must_use]
pub fn general_latency(mapping: &GeneralMapping, pipeline: &Pipeline, platform: &Platform) -> f64 {
    let n = mapping.n_stages();
    let first = Vertex::Proc(mapping.proc(0));
    let last = Vertex::Proc(mapping.proc(n - 1));
    let mut terms = Vec::with_capacity(2 * n + 2);
    terms.push(platform.comm_time(Vertex::In, first, pipeline.input_size()));
    for k in 0..n {
        terms.push(pipeline.work(k) / platform.speed(mapping.proc(k)));
        if k + 1 < n {
            terms.push(platform.comm_time(
                Vertex::Proc(mapping.proc(k)),
                Vertex::Proc(mapping.proc(k + 1)),
                pipeline.delta(k + 1),
            ));
        }
    }
    terms.push(platform.comm_time(last, Vertex::Out, pipeline.output_size()));
    kahan_sum(terms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_approx_eq;
    use crate::mapping::Interval;
    use crate::platform::PlatformBuilder;

    fn p(i: u32) -> ProcId {
        ProcId(i)
    }

    /// §3 Figure 3 pipeline: 2 stages, w = 2, δ = 100 everywhere.
    fn fig3_pipeline() -> Pipeline {
        Pipeline::new(vec![2.0, 2.0], vec![100.0, 100.0, 100.0]).unwrap()
    }

    /// §3 Figure 4 platform.
    fn fig4_platform() -> Platform {
        PlatformBuilder::new(2)
            .input_bandwidth(p(0), 100.0)
            .input_bandwidth(p(1), 1.0)
            .bandwidth(Vertex::Proc(p(0)), Vertex::Proc(p(1)), 100.0)
            .output_bandwidth(p(0), 1.0)
            .output_bandwidth(p(1), 100.0)
            .build()
            .unwrap()
    }

    #[test]
    fn figure34_single_processor_latency_is_105() {
        let pipe = fig3_pipeline();
        let pf = fig4_platform();
        let on_p1 = IntervalMapping::single_interval(2, vec![p(0)], 2).unwrap();
        let on_p2 = IntervalMapping::single_interval(2, vec![p(1)], 2).unwrap();
        assert_approx_eq!(latency(&on_p1, &pipe, &pf), 105.0);
        assert_approx_eq!(latency(&on_p2, &pipe, &pf), 105.0);
    }

    #[test]
    fn figure34_split_latency_is_7() {
        let pipe = fig3_pipeline();
        let pf = fig4_platform();
        let split = IntervalMapping::new(
            vec![Interval::singleton(0), Interval::singleton(1)],
            vec![vec![p(0)], vec![p(1)]],
            2,
            2,
        )
        .unwrap();
        assert_approx_eq!(latency(&split, &pipe, &pf), 7.0);
    }

    /// §3 Figure 5: S1 (w=1), S2 (w=100); δ0 = 10, δ1 = 1, δ2 = 0.
    fn fig5_pipeline() -> Pipeline {
        Pipeline::new(vec![1.0, 100.0], vec![10.0, 1.0, 0.0]).unwrap()
    }

    /// Figure 5 platform: P0 slow (s=1) reliable (fp=.1); P1..P10 fast
    /// (s=100) unreliable (fp=.8); uniform bandwidth 1.
    fn fig5_platform() -> Platform {
        let mut speeds = vec![100.0; 11];
        speeds[0] = 1.0;
        let mut fps = vec![0.8; 11];
        fps[0] = 0.1;
        Platform::comm_homogeneous(speeds, 1.0, fps).unwrap()
    }

    #[test]
    fn figure5_two_fast_single_interval() {
        let pipe = fig5_pipeline();
        let pf = fig5_platform();
        let one = IntervalMapping::single_interval(2, vec![p(1), p(2)], 11).unwrap();
        assert_approx_eq!(latency(&one, &pipe, &pf), 2.0 * 10.0 + 101.0 / 100.0);
        assert_approx_eq!(failure_probability(&one, &pf), 0.8 * 0.8);
    }

    #[test]
    fn figure5_three_fast_exceeds_threshold() {
        let pipe = fig5_pipeline();
        let pf = fig5_platform();
        let three = IntervalMapping::single_interval(2, vec![p(1), p(2), p(3)], 11).unwrap();
        assert!(latency(&three, &pipe, &pf) > 22.0);
    }

    #[test]
    fn figure5_split_mapping_latency_22_and_low_fp() {
        let pipe = fig5_pipeline();
        let pf = fig5_platform();
        let fast: Vec<ProcId> = (1..=10).map(p).collect();
        let split = IntervalMapping::new(
            vec![Interval::singleton(0), Interval::singleton(1)],
            vec![vec![p(0)], fast],
            2,
            11,
        )
        .unwrap();
        // 10 (input) + 1 (compute S1) + 10·1 (serialized sends) + 1 (compute
        // S2 on speed 100) + 0 (output) = 22.
        assert_approx_eq!(latency(&split, &pipe, &pf), 22.0);
        let fp = failure_probability(&split, &pf);
        let expected = 1.0 - (1.0 - 0.1) * (1.0 - 0.8f64.powi(10));
        assert_approx_eq!(fp, expected);
        assert!(fp < 0.2, "paper claims FP < 0.2, got {fp}");
    }

    #[test]
    fn eq1_matches_eq2_on_comm_homogeneous() {
        let pipe = Pipeline::new(vec![3.0, 1.0, 4.0, 1.0], vec![5.0, 9.0, 2.0, 6.0, 5.0]).unwrap();
        let pf =
            Platform::comm_homogeneous(vec![2.0, 1.0, 3.0, 1.5, 2.5], 4.0, vec![0.1; 5]).unwrap();
        let m = IntervalMapping::new(
            vec![Interval::new(0, 1).unwrap(), Interval::new(2, 3).unwrap()],
            vec![vec![p(0), p(3)], vec![p(1), p(2), p(4)]],
            4,
            5,
        )
        .unwrap();
        let e1 = latency_eq1(&m, &pipe, &pf).unwrap();
        let e2 = latency_eq2(&m, &pipe, &pf);
        assert_approx_eq!(e1, e2);
    }

    #[test]
    fn eq1_requires_comm_homogeneous() {
        let pipe = fig3_pipeline();
        let pf = fig4_platform();
        let m = IntervalMapping::single_interval(2, vec![p(0)], 2).unwrap();
        assert_eq!(
            latency_eq1(&m, &pipe, &pf).unwrap_err(),
            CoreError::NotCommHomogeneous
        );
    }

    #[test]
    fn replication_multiplies_input_comm() {
        // eq. 1 with k replicas: k·δ0/b term.
        let pipe = Pipeline::new(vec![10.0], vec![4.0, 0.0]).unwrap();
        let pf = Platform::fully_homogeneous(3, 2.0, 2.0, 0.5).unwrap();
        for k in 1..=3usize {
            let procs: Vec<ProcId> = (0..k as u32).map(p).collect();
            let m = IntervalMapping::single_interval(1, procs, 3).unwrap();
            let expected = k as f64 * 4.0 / 2.0 + 10.0 / 2.0;
            assert_approx_eq!(latency(&m, &pipe, &pf), expected);
        }
    }

    #[test]
    fn slowest_replica_bounds_compute() {
        let pipe = Pipeline::new(vec![12.0], vec![0.0, 0.0]).unwrap();
        let pf = Platform::comm_homogeneous(vec![1.0, 4.0], 1.0, vec![0.0, 0.0]).unwrap();
        let m = IntervalMapping::single_interval(1, vec![p(0), p(1)], 2).unwrap();
        assert_approx_eq!(latency(&m, &pipe, &pf), 12.0); // bound by s = 1
    }

    #[test]
    fn breakdown_totals_match() {
        let pipe = fig5_pipeline();
        let pf = fig5_platform();
        let fast: Vec<ProcId> = (1..=10).map(p).collect();
        let split = IntervalMapping::new(
            vec![Interval::singleton(0), Interval::singleton(1)],
            vec![vec![p(0)], fast],
            2,
            11,
        )
        .unwrap();
        let bd = latency_eq2_breakdown(&split, &pipe, &pf);
        assert_approx_eq!(bd.total, latency(&split, &pipe, &pf));
        assert_approx_eq!(bd.input_comm, 10.0);
        assert_eq!(bd.interval_costs.len(), 2);
        assert_approx_eq!(bd.interval_costs[0].compute, 1.0);
        assert_approx_eq!(bd.interval_costs[0].out_comm, 10.0);
    }

    #[test]
    fn failure_probability_formula() {
        let pf = Platform::comm_homogeneous(vec![1.0; 4], 1.0, vec![0.5, 0.5, 0.2, 0.3]).unwrap();
        let m = IntervalMapping::new(
            vec![Interval::singleton(0), Interval::singleton(1)],
            vec![vec![p(0), p(1)], vec![p(2), p(3)]],
            2,
            4,
        )
        .unwrap();
        let expected = 1.0 - (1.0 - 0.25) * (1.0 - 0.06);
        assert_approx_eq!(failure_probability(&m, &pf), expected);
        assert_approx_eq!(reliability(&m, &pf), 1.0 - expected);
    }

    #[test]
    fn failure_probability_extremes() {
        let pf = Platform::comm_homogeneous(vec![1.0, 1.0], 1.0, vec![0.0, 1.0]).unwrap();
        let perfect = IntervalMapping::single_interval(1, vec![p(0)], 2).unwrap();
        assert_eq!(failure_probability(&perfect, &pf), 0.0);
        let doomed = IntervalMapping::single_interval(1, vec![p(1)], 2).unwrap();
        assert_eq!(failure_probability(&doomed, &pf), 1.0);
        // Replicating the doomed processor with a perfect one saves the day.
        let both = IntervalMapping::single_interval(1, vec![p(0), p(1)], 2).unwrap();
        assert_eq!(failure_probability(&both, &pf), 0.0);
    }

    #[test]
    fn more_replicas_never_hurt_reliability() {
        let pf = Platform::fully_homogeneous(6, 1.0, 1.0, 0.4).unwrap();
        let mut last = 1.0;
        for k in 1..=6usize {
            let procs: Vec<ProcId> = (0..k as u32).map(p).collect();
            let m = IntervalMapping::single_interval(3, procs, 6).unwrap();
            let pipe = Pipeline::uniform(3, 1.0, 1.0).unwrap();
            let _ = &pipe;
            let fp = failure_probability(&m, &pf);
            assert!(fp < last, "k={k}: {fp} !< {last}");
            last = fp;
        }
    }

    #[test]
    fn one_to_one_latency_closed_form() {
        let pipe = fig3_pipeline();
        let pf = fig4_platform();
        let o = OneToOneMapping::new(vec![p(0), p(1)], 2).unwrap();
        assert_approx_eq!(one_to_one_latency(&o, &pipe, &pf), 7.0);
    }

    #[test]
    fn general_latency_free_reuse() {
        // Stage pattern P0 P1 P0: reuse of P0 pays both boundary comms but
        // no penalty for the revisit itself.
        let pipe = Pipeline::new(vec![1.0, 1.0, 1.0], vec![2.0, 2.0, 2.0, 2.0]).unwrap();
        let pf = Platform::fully_homogeneous(2, 1.0, 2.0, 0.0).unwrap();
        let g = GeneralMapping::new(vec![p(0), p(1), p(0)], 2).unwrap();
        // in: 2/2 =1; w:3; two crossings: 1 + 1; out: 1 => 7
        assert_approx_eq!(general_latency(&g, &pipe, &pf), 7.0);
    }

    #[test]
    fn general_latency_single_proc_has_no_internal_comm() {
        let pipe = Pipeline::new(vec![1.0, 1.0], vec![3.0, 100.0, 3.0]).unwrap();
        let pf = Platform::fully_homogeneous(1, 1.0, 3.0, 0.0).unwrap();
        let g = GeneralMapping::new(vec![p(0), p(0)], 1).unwrap();
        assert_approx_eq!(general_latency(&g, &pipe, &pf), 1.0 + 2.0 + 1.0);
    }

    #[test]
    fn general_latency_matches_interval_latency_when_interval_based() {
        let pipe = Pipeline::new(vec![1.0, 2.0, 3.0], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let pf = PlatformBuilder::new(3)
            .speeds(vec![1.0, 2.0, 3.0])
            .unwrap()
            .bandwidth(Vertex::Proc(p(0)), Vertex::Proc(p(1)), 2.0)
            .bandwidth(Vertex::Proc(p(1)), Vertex::Proc(p(2)), 0.5)
            .input_bandwidth(p(0), 4.0)
            .output_bandwidth(p(1), 8.0)
            .build()
            .unwrap();
        let g = GeneralMapping::new(vec![p(0), p(1), p(1)], 3).unwrap();
        let im = g.to_interval_mapping(3).unwrap();
        assert_approx_eq!(general_latency(&g, &pipe, &pf), latency(&im, &pipe, &pf));
    }
}
