//! Error type shared by the model crates.

use serde::{Deserialize, Serialize};

/// Workspace result alias.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Errors raised while constructing or evaluating model objects.
///
/// Implemented by hand (no external error-derive dependency per the
/// dependency policy in DESIGN.md §5).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum CoreError {
    /// A pipeline must have at least one stage.
    EmptyPipeline,
    /// A platform must have at least one processor.
    EmptyPlatform,
    /// Two containers that must agree in length do not.
    DimensionMismatch {
        /// What was being constructed.
        what: &'static str,
        /// Expected length.
        expected: usize,
        /// Observed length.
        actual: usize,
    },
    /// A scalar parameter is out of its legal domain.
    InvalidValue {
        /// Parameter name.
        what: &'static str,
        /// Offending value.
        value: f64,
    },
    /// An interval has `start > end` or exceeds the stage range.
    InvalidInterval {
        /// Interval start (0-based stage index, inclusive).
        start: usize,
        /// Interval end (0-based stage index, inclusive).
        end: usize,
        /// Number of stages in the pipeline.
        n_stages: usize,
    },
    /// Interval list does not partition `[0, n)` contiguously.
    NonContiguousIntervals {
        /// Index of the interval at which the gap/overlap was detected.
        at: usize,
    },
    /// Every interval needs at least one processor.
    EmptyAllocation {
        /// Index of the offending interval.
        interval: usize,
    },
    /// A processor appears in the allocation of two intervals.
    OverlappingAllocation {
        /// The processor allocated twice.
        proc: usize,
    },
    /// A processor id is not on the platform.
    ProcOutOfRange {
        /// Offending id.
        proc: usize,
        /// Number of processors on the platform.
        n_procs: usize,
    },
    /// An operation required identical link bandwidths.
    NotCommHomogeneous,
    /// An operation required identical failure probabilities.
    NotFailureHomogeneous,
    /// A mapping problem has no solution under the given thresholds.
    Infeasible {
        /// Human-readable reason.
        reason: String,
    },
    /// A one-to-one mapping needs at least as many processors as stages.
    TooFewProcessors {
        /// Processors required.
        needed: usize,
        /// Processors available.
        available: usize,
    },
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::EmptyPipeline => write!(f, "pipeline must contain at least one stage"),
            CoreError::EmptyPlatform => write!(f, "platform must contain at least one processor"),
            CoreError::DimensionMismatch {
                what,
                expected,
                actual,
            } => {
                write!(f, "{what}: expected length {expected}, got {actual}")
            }
            CoreError::InvalidValue { what, value } => {
                write!(f, "invalid value for {what}: {value}")
            }
            CoreError::InvalidInterval {
                start,
                end,
                n_stages,
            } => {
                write!(f, "invalid interval [{start}, {end}] for {n_stages} stages")
            }
            CoreError::NonContiguousIntervals { at } => {
                write!(
                    f,
                    "interval list is not a contiguous partition (at interval {at})"
                )
            }
            CoreError::EmptyAllocation { interval } => {
                write!(f, "interval {interval} has an empty processor allocation")
            }
            CoreError::OverlappingAllocation { proc } => {
                write!(f, "processor {proc} is allocated to more than one interval")
            }
            CoreError::ProcOutOfRange { proc, n_procs } => {
                write!(
                    f,
                    "processor id {proc} out of range (platform has {n_procs})"
                )
            }
            CoreError::NotCommHomogeneous => {
                write!(f, "operation requires a communication-homogeneous platform")
            }
            CoreError::NotFailureHomogeneous => {
                write!(f, "operation requires failure-homogeneous processors")
            }
            CoreError::Infeasible { reason } => write!(f, "infeasible: {reason}"),
            CoreError::TooFewProcessors { needed, available } => {
                write!(f, "need {needed} processors, platform has {available}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CoreError::DimensionMismatch {
            what: "works",
            expected: 3,
            actual: 2,
        };
        assert_eq!(e.to_string(), "works: expected length 3, got 2");
        let e = CoreError::Infeasible {
            reason: "latency threshold too small".into(),
        };
        assert!(e.to_string().contains("latency threshold"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&CoreError::EmptyPipeline);
    }

    #[test]
    fn serde_roundtrip() {
        let e = CoreError::OverlappingAllocation { proc: 7 };
        let json = serde_json_like(&e);
        assert!(json.contains("OverlappingAllocation"));
    }

    // Minimal check that serde derives exist without pulling serde_json here.
    fn serde_json_like(e: &CoreError) -> String {
        format!("{e:?}")
    }
}
