//! # rpwf-core — the model of *Optimizing Latency and Reliability of Pipeline Workflow Applications*
//!
//! This crate implements the application/platform/mapping model of Benoit,
//! Rehn-Sonigo and Robert (INRIA RR-6345, IPDPS 2008): linear pipeline
//! workflows mapped onto heterogeneous clique platforms whose processors may
//! fail, with **replicated interval mappings** trading latency against
//! reliability.
//!
//! ## Layout
//!
//! * [`stage`] — pipelines `S_1 … S_n` with per-stage work `w_k` and
//!   inter-stage data sizes `δ_i`,
//! * [`platform`] — processors, speeds, failure probabilities, the symmetric
//!   bandwidth matrix with `P_in`/`P_out`, and the platform taxonomy,
//! * [`mapping`] — interval mappings with replication, one-to-one and
//!   general mappings,
//! * [`metrics`] — failure probability and the worst-case latency formulas
//!   (equations (1) and (2) of the paper),
//! * [`eval`] — incremental (delta) evaluation of neighborhood moves with
//!   bit-exact agreement to the full formulas,
//! * [`throughput`] — steady-state period (extension, paper §5),
//! * [`intervals`] — enumeration of interval partitions,
//! * [`pareto`] — bi-objective Pareto fronts,
//! * [`ring`] — the consistent-hash ring fleets use to partition the
//!   instance keyspace, with replicated (successor-list) ownership,
//! * [`backoff`] — seeded jittered exponential backoff (fleet circuit
//!   breakers),
//! * [`trace`] — structured per-request tracing (spans, attributes, and
//!   the mergeable span tree fleet hops return),
//! * [`num`] — numeric conventions (tolerances, log-space probabilities),
//! * [`error`] — the shared error type.
//!
//! ## Quick example
//!
//! Figure 5 of the paper — a slow reliable processor plus ten fast
//! unreliable ones:
//!
//! ```
//! use rpwf_core::prelude::*;
//!
//! let pipeline = Pipeline::new(vec![1.0, 100.0], vec![10.0, 1.0, 0.0])?;
//! let mut speeds = vec![100.0; 11];
//! speeds[0] = 1.0;
//! let mut fps = vec![0.8; 11];
//! fps[0] = 0.1;
//! let platform = Platform::comm_homogeneous(speeds, 1.0, fps)?;
//!
//! // Slow stage on the reliable processor, fast stage replicated ×10.
//! let mapping = IntervalMapping::new(
//!     vec![Interval::singleton(0), Interval::singleton(1)],
//!     vec![vec![ProcId(0)], (1..=10).map(ProcId).collect()],
//!     2,
//!     11,
//! )?;
//! assert!((latency(&mapping, &pipeline, &platform) - 22.0).abs() < 1e-9);
//! assert!(failure_probability(&mapping, &platform) < 0.2);
//! # Ok::<(), rpwf_core::CoreError>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod backoff;
pub mod budget;
pub mod error;
pub mod eval;
pub mod hash;
pub mod intervals;
pub mod mapping;
pub mod metrics;
pub mod num;
pub mod pareto;
pub mod platform;
pub mod ring;
pub mod stage;
pub mod throughput;
pub mod trace;

pub use backoff::JitteredBackoff;
pub use budget::{Budget, BudgetPoller, CancelHandle};
pub use error::{CoreError, Result};
pub use eval::{DeltaEval, EvalContext, Move, MoveEffect, Scores, SlotChange};
pub use hash::{CanonicalDigest, CanonicalHasher};
pub use mapping::{GeneralMapping, Interval, IntervalMapping, OneToOneMapping};
pub use metrics::{
    failure_probability, general_latency, latency, latency_eq1, latency_eq2, latency_eq2_breakdown,
    log_success_probability, one_to_one_latency, reliability, LatencyBreakdown,
};
pub use platform::{FailureClass, Platform, PlatformBuilder, PlatformClass, ProcId, Vertex};
pub use ring::HashRing;
pub use stage::{Pipeline, PipelineBuilder, Stage};
pub use trace::{Span, SpanTree, Trace, TraceId, TraceScope};

/// One-stop imports for downstream crates and examples.
pub mod prelude {
    pub use crate::backoff::JitteredBackoff;
    pub use crate::budget::{Budget, BudgetPoller, CancelHandle};
    pub use crate::error::{CoreError, Result};
    pub use crate::eval::{DeltaEval, EvalContext, Move, MoveEffect, Scores, SlotChange};
    pub use crate::hash::{CanonicalDigest, CanonicalHasher};
    pub use crate::intervals::{count_partitions, IntervalPartitions, PartitionsWithParts};
    pub use crate::mapping::{GeneralMapping, Interval, IntervalMapping, OneToOneMapping};
    pub use crate::metrics::{
        failure_probability, general_latency, latency, latency_eq1, latency_eq2,
        latency_eq2_breakdown, log_success_probability, one_to_one_latency, reliability,
    };
    pub use crate::pareto::{ParetoFront, ParetoPoint};
    pub use crate::platform::{
        FailureClass, Platform, PlatformBuilder, PlatformClass, ProcId, Vertex,
    };
    pub use crate::ring::HashRing;
    pub use crate::stage::{Pipeline, PipelineBuilder, Stage};
    pub use crate::throughput::{period, throughput};
    pub use crate::trace::{Span, SpanTree, Trace, TraceId, TraceScope};
}
