//! Structured per-request tracing: [`TraceId`], [`Span`], and the
//! lock-cheap [`Trace`] collector threaded through the serving stack.
//!
//! A trace is a flat list of [`Span`]s linked by parent indices — span `0`
//! is always the root. Layers open spans around the operations they own
//! (decode, route, peer forward, engine planning, solver execution, cache
//! access) and attach `key=value` attributes recording *why* a decision was
//! made, not just how long it took. The finished tree ([`SpanTree`]) is a
//! plain serde value, so it rides on the wire unchanged: a hopped fleet
//! request grafts the owner's subtree under the entry node's `forward`
//! span ([`SpanTree::graft`]) and returns one merged trace.
//!
//! The collector is deliberately simple: one short `Mutex<Vec<Span>>`
//! critical section per span event, zero allocation when tracing is off
//! (callers hold an `Option<&Trace>` and skip everything on `None`).
//!
//! ```
//! use rpwf_core::trace::{Trace, TraceId};
//! use std::time::Instant;
//!
//! let trace = Trace::new(TraceId::next(), Instant::now());
//! let root = trace.begin_root("request");
//! let child = trace.begin("plan", Some(0));
//! trace.attr(child.index(), "solver", "bitmask-dp");
//! trace.end(&child);
//! trace.end(&root);
//! let tree = trace.finish();
//! assert_eq!(tree.spans.len(), 2);
//! assert_eq!(tree.spans[1].parent, Some(0));
//! ```

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Process-unique identifier of one request trace.
///
/// Ids are drawn from a splitmix64 sequence over a process-global counter
/// seeded with per-process entropy (wall clock + pid): unique within a
/// process, well-mixed so fleet nodes don't collide on their locally
/// initiated traces, and cheap after the first draw (one relaxed atomic
/// increment). Serialized as a bare integer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TraceId(pub u64);

static NEXT_TRACE: AtomicU64 = AtomicU64::new(0);

/// Per-process sequence origin: without it every process would emit the
/// identical id sequence and two fleet nodes would collide on their n-th
/// locally initiated traces.
fn process_seed() -> u64 {
    use std::sync::OnceLock;
    static SEED: OnceLock<u64> = OnceLock::new();
    *SEED.get_or_init(|| {
        let clock = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_nanos() as u64);
        clock ^ (u64::from(std::process::id()) << 32)
    })
}

impl TraceId {
    /// Draws the next process-unique id.
    #[must_use]
    pub fn next() -> Self {
        // splitmix64 finalizer over a seeded global counter: unique +
        // well mixed.
        let counter = NEXT_TRACE.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
        let mut z = counter.wrapping_add(process_seed());
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Self(z ^ (z >> 31))
    }

    /// Hexadecimal rendering used by logs and the CLI.
    #[must_use]
    pub fn as_hex(&self) -> String {
        format!("{:016x}", self.0)
    }
}

/// One timed operation inside a trace.
///
/// `start_us` is the offset from the trace origin (the instant the request
/// line was read off the socket), so spans from different machines can be
/// merged without clock agreement: a grafted subtree is re-based onto the
/// receiving span's window ([`SpanTree::graft`]).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// Operation name, dot-namespaced by layer (`cache.lookup`,
    /// `engine.plan`, `solver.bitmask-dp`, `peer.connect`, ...).
    pub name: String,
    /// Offset of the span start from the trace origin, in microseconds.
    pub start_us: u64,
    /// Wall-clock duration of the operation, in microseconds.
    pub elapsed_us: u64,
    /// Index of the parent span in [`SpanTree::spans`]; `None` for roots.
    pub parent: Option<u32>,
    /// Ordered `key=value` attributes (decision context, not timings).
    pub attrs: Vec<(String, String)>,
}

/// A completed trace in wire form: flat spans linked by parent indices.
///
/// The flat encoding (rather than nested objects) keeps merge and
/// round-trip trivial: grafting a remote subtree is an index shift, and
/// serialization order is exactly insertion order, so a tree re-serializes
/// byte-identically.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpanTree {
    /// The trace this tree belongs to (shared across fleet hops).
    pub id: TraceId,
    /// All spans, in the order they were opened; index 0 is the root.
    pub spans: Vec<Span>,
}

impl SpanTree {
    /// The root span, when the tree is non-empty.
    #[must_use]
    pub fn root(&self) -> Option<&Span> {
        self.spans.first()
    }

    /// Grafts `other`'s spans under `self.spans[parent]`.
    ///
    /// Indices in `other` are shifted past the existing spans, `other`'s
    /// roots are re-parented onto `parent`, and every start offset is
    /// re-based onto the parent span's window (a hopped subtree measured
    /// its offsets from the *owner's* origin; its wall time lives inside
    /// the entry node's forward span).
    pub fn graft(&mut self, other: SpanTree, parent: u32) {
        let offset = self.spans.len() as u32;
        let base_us = self
            .spans
            .get(parent as usize)
            .map_or(0, |span| span.start_us);
        for mut span in other.spans {
            span.parent = match span.parent {
                Some(p) => Some(p + offset),
                None => Some(parent),
            };
            span.start_us += base_us;
            self.spans.push(span);
        }
    }

    /// Sum of `elapsed_us` over every span (used by trace counters).
    #[must_use]
    pub fn total_span_us(&self) -> u64 {
        self.spans.iter().map(|s| s.elapsed_us).sum()
    }

    /// Renders an indented text tree (CLI / log form).
    pub fn render(&self, out: &mut String) {
        fn walk(tree: &SpanTree, idx: usize, depth: usize, out: &mut String) {
            let span = &tree.spans[idx];
            out.push_str(&"  ".repeat(depth));
            out.push_str(&format!(
                "{} {}us +{}us",
                span.name, span.elapsed_us, span.start_us
            ));
            for (k, v) in &span.attrs {
                out.push_str(&format!(" {k}={v}"));
            }
            out.push('\n');
            for (child, span) in tree.spans.iter().enumerate() {
                if span.parent == Some(idx as u32) {
                    walk(tree, child, depth + 1, out);
                }
            }
        }
        for (idx, span) in self.spans.iter().enumerate() {
            if span.parent.is_none() {
                walk(self, idx, 0, out);
            }
        }
    }
}

/// Handle returned by [`Trace::begin`]; close it with [`Trace::end`].
#[derive(Debug)]
pub struct SpanHandle {
    index: u32,
    started: Instant,
}

impl SpanHandle {
    /// Index of the span this handle refers to (usable as a parent).
    #[must_use]
    pub fn index(&self) -> u32 {
        self.index
    }
}

/// Lock-cheap per-request span collector.
///
/// One `Trace` lives for the duration of a request; every layer that sees
/// the request appends spans through a shared reference. Each operation is
/// a single short critical section on the span vector, and the whole
/// structure is skipped when the request did not opt into tracing.
#[derive(Debug)]
pub struct Trace {
    id: TraceId,
    origin: Instant,
    spans: Mutex<Vec<Span>>,
}

impl Trace {
    /// Creates an empty collector. `origin` is the instant all span start
    /// offsets are measured from (normally: when the request line was read).
    #[must_use]
    pub fn new(id: TraceId, origin: Instant) -> Self {
        Self {
            id,
            origin,
            spans: Mutex::new(Vec::new()),
        }
    }

    /// The trace id.
    #[must_use]
    pub fn id(&self) -> TraceId {
        self.id
    }

    /// Microseconds elapsed since the trace origin.
    #[must_use]
    pub fn elapsed_us(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Opens the root span: start offset 0, no parent.
    pub fn begin_root(&self, name: &str) -> SpanHandle {
        let index = self.push(Span {
            name: name.to_owned(),
            start_us: 0,
            elapsed_us: 0,
            parent: None,
            attrs: Vec::new(),
        });
        SpanHandle {
            index,
            started: self.origin,
        }
    }

    /// Opens a child span starting now.
    pub fn begin(&self, name: &str, parent: Option<u32>) -> SpanHandle {
        let started = Instant::now();
        let index = self.push(Span {
            name: name.to_owned(),
            start_us: self.elapsed_us(),
            elapsed_us: 0,
            parent,
            attrs: Vec::new(),
        });
        SpanHandle { index, started }
    }

    /// Closes a span, recording its wall-clock duration.
    pub fn end(&self, handle: &SpanHandle) {
        let elapsed = u64::try_from(handle.started.elapsed().as_micros()).unwrap_or(u64::MAX);
        let mut spans = self.spans.lock().expect("trace lock");
        if let Some(span) = spans.get_mut(handle.index as usize) {
            span.elapsed_us = elapsed;
        }
    }

    /// Appends a fully-formed span (used to synthesize spans from
    /// measurements taken elsewhere, e.g. per-solver stats).
    pub fn add(
        &self,
        name: &str,
        parent: Option<u32>,
        start_us: u64,
        elapsed_us: u64,
        attrs: Vec<(String, String)>,
    ) -> u32 {
        self.push(Span {
            name: name.to_owned(),
            start_us,
            elapsed_us,
            parent,
            attrs,
        })
    }

    /// Attaches a `key=value` attribute to an open or closed span.
    pub fn attr(&self, index: u32, key: &str, value: impl Into<String>) {
        let mut spans = self.spans.lock().expect("trace lock");
        if let Some(span) = spans.get_mut(index as usize) {
            span.attrs.push((key.to_owned(), value.into()));
        }
    }

    /// Snapshots the collected spans into a wire-form tree.
    #[must_use]
    pub fn finish(&self) -> SpanTree {
        SpanTree {
            id: self.id,
            spans: self.spans.lock().expect("trace lock").clone(),
        }
    }

    fn push(&self, span: Span) -> u32 {
        let mut spans = self.spans.lock().expect("trace lock");
        spans.push(span);
        (spans.len() - 1) as u32
    }
}

/// A borrowed position inside someone else's trace: the collector plus the
/// span index new children should hang from. Layers that *may* be traced
/// take an `Option<TraceScope>` and do nothing on `None`.
#[derive(Clone, Copy, Debug)]
pub struct TraceScope<'a> {
    /// The collector for the current request.
    pub trace: &'a Trace,
    /// Index of the span new children attach to.
    pub parent: u32,
}

impl<'a> TraceScope<'a> {
    /// Scope rooted at `parent` in `trace`.
    #[must_use]
    pub fn new(trace: &'a Trace, parent: u32) -> Self {
        Self { trace, parent }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_hex_renders() {
        let a = TraceId::next();
        let b = TraceId::next();
        assert_ne!(a, b);
        assert_eq!(a.as_hex().len(), 16);
    }

    #[test]
    fn spans_nest_and_record_elapsed() {
        let trace = Trace::new(TraceId::next(), Instant::now());
        let root = trace.begin_root("request");
        let child = trace.begin("work", Some(root.index()));
        std::thread::sleep(std::time::Duration::from_millis(2));
        trace.end(&child);
        trace.end(&root);
        let tree = trace.finish();
        assert_eq!(tree.spans.len(), 2);
        assert_eq!(tree.root().unwrap().name, "request");
        assert_eq!(tree.spans[1].parent, Some(0));
        assert!(tree.spans[1].elapsed_us >= 2_000);
        assert!(tree.root().unwrap().elapsed_us >= tree.spans[1].elapsed_us);
    }

    #[test]
    fn graft_rebases_indices_and_offsets() {
        let entry = Trace::new(TraceId::next(), Instant::now());
        let root = entry.begin_root("request");
        let fwd = entry.begin("forward", Some(root.index()));
        entry.end(&fwd);
        entry.end(&root);
        let mut tree = entry.finish();
        let fwd_start = tree.spans[1].start_us;

        let owner = Trace::new(tree.id, Instant::now());
        let oroot = owner.begin_root("request");
        let oplan = owner.begin("engine.plan", Some(oroot.index()));
        owner.end(&oplan);
        owner.end(&oroot);

        tree.graft(owner.finish(), 1);
        assert_eq!(tree.spans.len(), 4);
        // Owner root hangs under the forward span; its child is re-indexed.
        assert_eq!(tree.spans[2].parent, Some(1));
        assert_eq!(tree.spans[3].parent, Some(2));
        // Offsets re-based onto the forward span's window.
        assert_eq!(tree.spans[2].start_us, fwd_start);
        assert!(tree.spans[3].start_us >= fwd_start);
    }

    #[test]
    fn synthesized_spans_and_attrs() {
        let trace = Trace::new(TraceId::next(), Instant::now());
        let root = trace.begin_root("request");
        let idx = trace.add(
            "solver.bitmask-dp",
            Some(root.index()),
            10,
            250,
            vec![("complete".into(), "true".into())],
        );
        trace.attr(idx, "produced", "true");
        trace.end(&root);
        let tree = trace.finish();
        assert_eq!(tree.spans[1].elapsed_us, 250);
        assert_eq!(
            tree.spans[1].attrs,
            vec![
                ("complete".to_owned(), "true".to_owned()),
                ("produced".to_owned(), "true".to_owned()),
            ]
        );
    }

    #[test]
    fn render_indents_children() {
        let trace = Trace::new(TraceId::next(), Instant::now());
        let root = trace.begin_root("request");
        let child = trace.begin("cache.lookup", Some(root.index()));
        trace.attr(child.index(), "hit", "false");
        trace.end(&child);
        trace.end(&root);
        let mut out = String::new();
        trace.finish().render(&mut out);
        assert!(out.starts_with("request "));
        assert!(out.contains("\n  cache.lookup "));
        assert!(out.contains("hit=false"));
    }
}
