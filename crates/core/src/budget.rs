//! Cooperative compute budgets: deadlines and cancellation tokens threaded
//! through the exponential solvers.
//!
//! A [`Budget`] is cheap to clone and share across threads. Long-running
//! solvers poll [`Budget::is_exhausted`] every few hundred node expansions
//! (the poll itself reads one atomic and, when a deadline is set, the
//! monotonic clock) and unwind with their best partial result when it
//! returns `true`. The serving layer builds one budget per request from
//! the client's `deadline_ms`; [`CancelHandle`] additionally supports
//! caller-driven aborts — the TCP transport keeps one handle per
//! connection, [`Budget::linked`] into every request budget, so a dropped
//! client connection cancels all of its in-flight solves.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A deadline and/or cancellation token for one unit of solver work.
///
/// The default budget is unlimited: no deadline, never cancelled. A
/// budget can carry several cancellation flags (its own from
/// [`Budget::cancellable`] plus any linked via [`Budget::linked`], e.g.
/// a per-connection handle); any one of them firing exhausts it.
#[derive(Clone, Debug, Default)]
pub struct Budget {
    deadline: Option<Instant>,
    cancel: Vec<Arc<AtomicBool>>,
}

/// Cancels the [`Budget`] it was created from (and that budget's clones).
#[derive(Clone, Debug)]
pub struct CancelHandle {
    flag: Arc<AtomicBool>,
}

impl Default for CancelHandle {
    fn default() -> Self {
        CancelHandle::new()
    }
}

impl CancelHandle {
    /// A fresh, not-yet-cancelled handle. Link it to any number of
    /// budgets with [`Budget::linked`] — e.g. one handle per client
    /// connection, linked into every in-flight request budget, so a
    /// dropped connection cancels all of its work at once.
    #[must_use]
    pub fn new() -> Self {
        CancelHandle {
            flag: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Signals cancellation; idempotent.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation was already signalled.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

impl Budget {
    /// A budget with no deadline and no cancellation token.
    #[must_use]
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// A budget expiring `timeout` from now.
    #[must_use]
    pub fn with_deadline(timeout: Duration) -> Self {
        Budget {
            deadline: Some(Instant::now() + timeout),
            cancel: Vec::new(),
        }
    }

    /// A budget expiring at an absolute instant (e.g. request receipt time
    /// plus the client's `deadline_ms`).
    #[must_use]
    pub fn with_deadline_at(deadline: Instant) -> Self {
        Budget {
            deadline: Some(deadline),
            cancel: Vec::new(),
        }
    }

    /// Attaches a fresh cancellation token (keeping any already-linked
    /// handles live), returning the budget and the new handle.
    #[must_use]
    pub fn cancellable(mut self) -> (Self, CancelHandle) {
        let flag = Arc::new(AtomicBool::new(false));
        self.cancel.push(Arc::clone(&flag));
        (self, CancelHandle { flag })
    }

    /// Links this budget to an existing [`CancelHandle`] (e.g. a
    /// per-connection handle shared by many request budgets): the budget
    /// exhausts when its own deadline passes *or* any linked handle
    /// fires. Previously attached handles stay live.
    #[must_use]
    pub fn linked(mut self, handle: &CancelHandle) -> Self {
        self.cancel.push(Arc::clone(&handle.flag));
        self
    }

    /// `true` once the deadline has passed or cancellation was signalled.
    ///
    /// Solvers should poll this at a coarse stride (hundreds of iterations)
    /// rather than per node: the check reads the monotonic clock when a
    /// deadline is set.
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        if self.cancel.iter().any(|c| c.load(Ordering::Relaxed)) {
            return true;
        }
        match self.deadline {
            Some(deadline) => Instant::now() >= deadline,
            None => false,
        }
    }

    /// Whether this budget can ever expire on its own or be cancelled.
    /// Solvers skip the polling overhead entirely for unlimited budgets.
    #[must_use]
    pub fn is_limited(&self) -> bool {
        self.deadline.is_some() || !self.cancel.is_empty()
    }

    /// Time left before the deadline; `None` when no deadline is set.
    /// Already-expired budgets report `Some(0)`.
    #[must_use]
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_exhausts() {
        let b = Budget::unlimited();
        assert!(!b.is_exhausted());
        assert!(!b.is_limited());
        assert_eq!(b.remaining(), None);
    }

    #[test]
    fn deadline_expires() {
        let b = Budget::with_deadline(Duration::from_millis(0));
        assert!(b.is_limited());
        assert!(b.is_exhausted());
        assert_eq!(b.remaining(), Some(Duration::ZERO));

        let b = Budget::with_deadline(Duration::from_secs(3600));
        assert!(!b.is_exhausted());
        assert!(b.remaining().expect("deadline set") > Duration::from_secs(3000));
    }

    #[test]
    fn cancellation_reaches_clones() {
        let (b, handle) = Budget::unlimited().cancellable();
        let clone = b.clone();
        assert!(!clone.is_exhausted());
        assert!(!handle.is_cancelled());
        handle.cancel();
        assert!(handle.is_cancelled());
        assert!(b.is_exhausted());
        assert!(clone.is_exhausted());
    }

    #[test]
    fn deadline_at_instant() {
        let b = Budget::with_deadline_at(Instant::now());
        assert!(b.is_exhausted());
    }

    #[test]
    fn linked_handle_cancels_many_budgets() {
        let handle = CancelHandle::new();
        let a = Budget::unlimited().linked(&handle);
        let b = Budget::with_deadline(Duration::from_secs(3600)).linked(&handle);
        assert!(!a.is_exhausted());
        assert!(!b.is_exhausted());
        assert!(a.is_limited(), "a linked budget is limited");
        handle.cancel();
        assert!(a.is_exhausted());
        assert!(b.is_exhausted());
    }

    #[test]
    fn linking_keeps_earlier_handles_live() {
        let (budget, own) = Budget::unlimited().cancellable();
        let conn = CancelHandle::new();
        let budget = budget.linked(&conn);
        assert!(!budget.is_exhausted());
        // The original handle still cancels after linking another one…
        own.cancel();
        assert!(budget.is_exhausted());
        // …and the linked handle works independently.
        let (budget, _own2) = Budget::unlimited().cancellable();
        let budget = budget.linked(&conn);
        assert!(!budget.is_exhausted());
        conn.cancel();
        assert!(budget.is_exhausted());
    }
}
