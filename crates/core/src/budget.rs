//! Cooperative compute budgets: deadlines and cancellation tokens threaded
//! through the exponential solvers.
//!
//! A [`Budget`] is cheap to clone and share across threads. Long-running
//! solvers poll [`Budget::is_exhausted`] every few hundred node expansions
//! (the poll itself reads one atomic and, when a deadline is set, the
//! monotonic clock) and unwind with their best partial result when it
//! returns `true`. The serving layer builds one budget per request from
//! the client's `deadline_ms`; [`CancelHandle`] additionally supports
//! caller-driven aborts — the TCP transport keeps one handle per
//! connection, [`Budget::linked`] into every request budget, so a dropped
//! client connection cancels all of its in-flight solves.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A deadline and/or cancellation token for one unit of solver work.
///
/// The default budget is unlimited: no deadline, never cancelled. A
/// budget can carry several cancellation flags (its own from
/// [`Budget::cancellable`] plus any linked via [`Budget::linked`], e.g.
/// a per-connection handle); any one of them firing exhausts it.
#[derive(Clone, Debug, Default)]
pub struct Budget {
    deadline: Option<Instant>,
    cancel: Vec<Arc<AtomicBool>>,
}

/// Cancels the [`Budget`] it was created from (and that budget's clones).
#[derive(Clone, Debug)]
pub struct CancelHandle {
    flag: Arc<AtomicBool>,
}

impl Default for CancelHandle {
    fn default() -> Self {
        CancelHandle::new()
    }
}

impl CancelHandle {
    /// A fresh, not-yet-cancelled handle. Link it to any number of
    /// budgets with [`Budget::linked`] — e.g. one handle per client
    /// connection, linked into every in-flight request budget, so a
    /// dropped connection cancels all of its work at once.
    #[must_use]
    pub fn new() -> Self {
        CancelHandle {
            flag: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Signals cancellation; idempotent.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation was already signalled.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

impl Budget {
    /// A budget with no deadline and no cancellation token.
    #[must_use]
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// A budget expiring `timeout` from now.
    #[must_use]
    pub fn with_deadline(timeout: Duration) -> Self {
        Budget {
            deadline: Some(Instant::now() + timeout),
            cancel: Vec::new(),
        }
    }

    /// A budget expiring at an absolute instant (e.g. request receipt time
    /// plus the client's `deadline_ms`).
    #[must_use]
    pub fn with_deadline_at(deadline: Instant) -> Self {
        Budget {
            deadline: Some(deadline),
            cancel: Vec::new(),
        }
    }

    /// Attaches a fresh cancellation token (keeping any already-linked
    /// handles live), returning the budget and the new handle.
    #[must_use]
    pub fn cancellable(mut self) -> (Self, CancelHandle) {
        let flag = Arc::new(AtomicBool::new(false));
        self.cancel.push(Arc::clone(&flag));
        (self, CancelHandle { flag })
    }

    /// Links this budget to an existing [`CancelHandle`] (e.g. a
    /// per-connection handle shared by many request budgets): the budget
    /// exhausts when its own deadline passes *or* any linked handle
    /// fires. Previously attached handles stay live.
    #[must_use]
    pub fn linked(mut self, handle: &CancelHandle) -> Self {
        self.cancel.push(Arc::clone(&handle.flag));
        self
    }

    /// `true` once the deadline has passed or cancellation was signalled.
    ///
    /// Solvers should poll this at a coarse stride (hundreds of iterations)
    /// rather than per node: the check reads the monotonic clock when a
    /// deadline is set.
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        if self.cancel.iter().any(|c| c.load(Ordering::Relaxed)) {
            return true;
        }
        match self.deadline {
            Some(deadline) => Instant::now() >= deadline,
            None => false,
        }
    }

    /// Whether this budget can ever expire on its own or be cancelled.
    /// Solvers skip the polling overhead entirely for unlimited budgets.
    #[must_use]
    pub fn is_limited(&self) -> bool {
        self.deadline.is_some() || !self.cancel.is_empty()
    }

    /// Time left before the deadline; `None` when no deadline is set.
    /// Already-expired budgets report `Some(0)`.
    #[must_use]
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }
}

/// A strided, fan-out-capable view of a [`Budget`] for hot search loops.
///
/// [`Budget::is_exhausted`] reads the monotonic clock when a deadline is
/// set — too expensive per node expansion. A poller amortizes it: every
/// [`BudgetPoller::check`] reads one shared atomic stop flag, and only
/// every [`BudgetPoller::STRIDE`]-th call pays the full budget check.
/// When the budget turns out exhausted the poller latches the shared
/// flag, so **every clone** (one per search worker) observes the cutoff
/// on its very next `check` — cancellation fans out across a worker pool
/// within one polling stride of the first detection, without any other
/// worker touching the clock.
#[derive(Clone, Debug)]
pub struct BudgetPoller {
    budget: Budget,
    /// Latched once the budget is first seen exhausted; shared by clones.
    stop: Arc<AtomicBool>,
    /// Whether the underlying budget can expire at all; unlimited budgets
    /// skip even the stride check.
    limited: bool,
}

impl BudgetPoller {
    /// Full budget checks happen every this many `check` calls (counts
    /// divisible by the stride, including 0, pay the clock read).
    pub const STRIDE: u64 = 1024;

    /// Wraps a budget for strided polling. Clones share the stop flag.
    #[must_use]
    pub fn new(budget: Budget) -> Self {
        let limited = budget.is_limited();
        BudgetPoller {
            budget,
            stop: Arc::new(AtomicBool::new(false)),
            limited,
        }
    }

    /// Cheap per-iteration poll: `true` once the budget is exhausted.
    ///
    /// `count` is the caller's iteration counter; the full budget check
    /// runs only when `count` is a multiple of [`Self::STRIDE`] (so pass
    /// 0 on entry to detect an already-expired budget immediately), which
    /// bounds cutoff latency to one stride of work after expiry.
    #[inline]
    #[must_use]
    pub fn check(&self, count: u64) -> bool {
        if !self.limited {
            return false;
        }
        if self.stop.load(Ordering::Relaxed) {
            return true;
        }
        if count.is_multiple_of(Self::STRIDE) && self.budget.is_exhausted() {
            self.stop.store(true, Ordering::Relaxed);
            return true;
        }
        false
    }

    /// Forces a full budget check now, regardless of stride position.
    #[must_use]
    pub fn poll_now(&self) -> bool {
        self.check(0)
    }

    /// Whether the stop flag has latched (some poller clone saw the
    /// budget exhaust). Never touches the clock.
    #[must_use]
    pub fn is_stopped(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }

    /// The wrapped budget.
    #[must_use]
    pub fn budget(&self) -> &Budget {
        &self.budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_exhausts() {
        let b = Budget::unlimited();
        assert!(!b.is_exhausted());
        assert!(!b.is_limited());
        assert_eq!(b.remaining(), None);
    }

    #[test]
    fn deadline_expires() {
        let b = Budget::with_deadline(Duration::from_millis(0));
        assert!(b.is_limited());
        assert!(b.is_exhausted());
        assert_eq!(b.remaining(), Some(Duration::ZERO));

        let b = Budget::with_deadline(Duration::from_secs(3600));
        assert!(!b.is_exhausted());
        assert!(b.remaining().expect("deadline set") > Duration::from_secs(3000));
    }

    #[test]
    fn cancellation_reaches_clones() {
        let (b, handle) = Budget::unlimited().cancellable();
        let clone = b.clone();
        assert!(!clone.is_exhausted());
        assert!(!handle.is_cancelled());
        handle.cancel();
        assert!(handle.is_cancelled());
        assert!(b.is_exhausted());
        assert!(clone.is_exhausted());
    }

    #[test]
    fn deadline_at_instant() {
        let b = Budget::with_deadline_at(Instant::now());
        assert!(b.is_exhausted());
    }

    #[test]
    fn linked_handle_cancels_many_budgets() {
        let handle = CancelHandle::new();
        let a = Budget::unlimited().linked(&handle);
        let b = Budget::with_deadline(Duration::from_secs(3600)).linked(&handle);
        assert!(!a.is_exhausted());
        assert!(!b.is_exhausted());
        assert!(a.is_limited(), "a linked budget is limited");
        handle.cancel();
        assert!(a.is_exhausted());
        assert!(b.is_exhausted());
    }

    #[test]
    fn poller_detects_cutoff_within_one_stride() {
        // Deadline already expired: the very next stride-aligned check
        // (count 0) must detect it, so cutoff latency is at most one
        // polling stride of work after expiry.
        let poller = BudgetPoller::new(Budget::with_deadline(Duration::ZERO));
        let mut calls = 0u64;
        let mut count = 0u64;
        loop {
            if poller.check(count) {
                break;
            }
            count += 1;
            calls += 1;
            assert!(
                calls <= BudgetPoller::STRIDE,
                "cutoff not observed within one polling stride"
            );
        }
        assert_eq!(calls, 0, "an expired budget is caught at the entry poll");
        assert!(poller.is_stopped());
    }

    #[test]
    fn poller_off_stride_detection_latency_is_bounded() {
        // Start mid-stride: detection must still happen by the next
        // stride boundary, i.e. within STRIDE calls.
        let poller = BudgetPoller::new(Budget::with_deadline(Duration::ZERO));
        let mut calls = 0u64;
        let mut count = 1u64; // off the stride boundary
        while !poller.check(count) {
            count += 1;
            calls += 1;
            assert!(
                calls <= BudgetPoller::STRIDE,
                "cutoff not observed within one polling stride"
            );
        }
    }

    #[test]
    fn poller_stop_fans_out_to_clones_without_clock_reads() {
        let (budget, handle) = Budget::with_deadline(Duration::from_secs(3600)).cancellable();
        let poller = BudgetPoller::new(budget);
        let clone = poller.clone();
        assert!(!poller.check(1));
        assert!(!clone.check(1));
        handle.cancel();
        // Only the detector pays the full check (stride-aligned count)…
        assert!(poller.check(0));
        // …and every clone sees the latched flag on its next check, even
        // off-stride where it would never touch the clock.
        assert!(clone.check(7));
        assert!(clone.is_stopped());
    }

    #[test]
    fn poller_unlimited_budget_never_stops() {
        let poller = BudgetPoller::new(Budget::unlimited());
        for count in 0..4 * BudgetPoller::STRIDE {
            assert!(!poller.check(count));
        }
        assert!(!poller.poll_now());
    }

    #[test]
    fn linking_keeps_earlier_handles_live() {
        let (budget, own) = Budget::unlimited().cancellable();
        let conn = CancelHandle::new();
        let budget = budget.linked(&conn);
        assert!(!budget.is_exhausted());
        // The original handle still cancels after linking another one…
        own.cancel();
        assert!(budget.is_exhausted());
        // …and the linked handle works independently.
        let (budget, _own2) = Budget::unlimited().cancellable();
        let budget = budget.linked(&conn);
        assert!(!budget.is_exhausted());
        conn.cancel();
        assert!(budget.is_exhausted());
    }
}
