//! Enumeration of interval partitions of the stage range.
//!
//! A partition of `n` stages into consecutive intervals is a choice of
//! boundaries among the `n − 1` positions between stages, so there are
//! `2^(n−1)` partitions overall and `C(n−1, p−1)` with exactly `p` parts.
//! The exhaustive solvers iterate these; the iterators here are allocation
//! light (one `Vec<Interval>` per item) and deterministic (lexicographic in
//! the boundary mask).

use crate::mapping::Interval;

/// Number of interval partitions of `n` stages (`2^(n−1)`), saturating.
#[must_use]
pub fn count_partitions(n: usize) -> u128 {
    if n == 0 {
        return 0;
    }
    1u128 << (n - 1).min(127)
}

/// Iterator over **all** partitions of `n` stages into consecutive
/// intervals. Yields `Vec<Interval>` in increasing order of the boundary
/// bitmask (the single-interval partition comes first).
///
/// Supports `n ≤ 64`; exhaustive use is practical for `n ≲ 20`.
#[derive(Clone, Debug)]
pub struct IntervalPartitions {
    n: usize,
    next_mask: u64,
    exhausted: bool,
}

impl IntervalPartitions {
    /// Starts the enumeration for a pipeline of `n` stages.
    ///
    /// # Panics
    /// When `n = 0` or `n > 64`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "no partitions of an empty pipeline");
        assert!(n <= 64, "partition enumeration supports at most 64 stages");
        IntervalPartitions {
            n,
            next_mask: 0,
            exhausted: false,
        }
    }
}

/// Expands a boundary mask (bit `i` set = boundary after stage `i`) into the
/// interval list.
fn mask_to_intervals(n: usize, mask: u64) -> Vec<Interval> {
    let mut out = Vec::with_capacity(mask.count_ones() as usize + 1);
    let mut start = 0usize;
    for i in 0..n.saturating_sub(1) {
        if mask & (1u64 << i) != 0 {
            out.push(Interval::new(start, i).expect("start <= i by construction"));
            start = i + 1;
        }
    }
    out.push(Interval::new(start, n - 1).expect("start <= n-1 by construction"));
    out
}

impl Iterator for IntervalPartitions {
    type Item = Vec<Interval>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.exhausted {
            return None;
        }
        let item = mask_to_intervals(self.n, self.next_mask);
        let limit = if self.n == 1 {
            0
        } else {
            (1u64 << (self.n - 1)) - 1
        };
        if self.next_mask >= limit {
            self.exhausted = true;
        } else {
            self.next_mask += 1;
        }
        Some(item)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        if self.exhausted {
            return (0, Some(0));
        }
        let total = 1u64 << (self.n - 1).min(63);
        let remaining = (total - self.next_mask) as usize;
        (remaining, Some(remaining))
    }
}

/// Iterator over partitions of `n` stages into **exactly `p`** intervals
/// (combinations of `p − 1` boundaries among `n − 1` positions, in
/// lexicographic order).
#[derive(Clone, Debug)]
pub struct PartitionsWithParts {
    n: usize,
    /// Current boundary positions (0-based "after stage i"), strictly
    /// increasing; `None` once exhausted.
    boundaries: Option<Vec<usize>>,
}

impl PartitionsWithParts {
    /// Starts the enumeration; yields nothing when `p > n` or `p = 0`.
    #[must_use]
    pub fn new(n: usize, p: usize) -> Self {
        if p == 0 || p > n {
            return PartitionsWithParts {
                n,
                boundaries: None,
            };
        }
        // First combination: boundaries after stages 0, 1, …, p−2.
        let boundaries = (0..p - 1).collect();
        PartitionsWithParts {
            n,
            boundaries: Some(boundaries),
        }
    }
}

impl Iterator for PartitionsWithParts {
    type Item = Vec<Interval>;

    fn next(&mut self) -> Option<Self::Item> {
        let bounds = self.boundaries.as_mut()?;
        // Materialize the current combination.
        let mut intervals = Vec::with_capacity(bounds.len() + 1);
        let mut start = 0usize;
        for &b in bounds.iter() {
            intervals.push(Interval::new(start, b).expect("ordered boundaries"));
            start = b + 1;
        }
        intervals.push(Interval::new(start, self.n - 1).expect("ordered boundaries"));

        // Advance to the next combination of (p−1) positions out of (n−1).
        let k = bounds.len();
        let max_pos = self.n - 1; // positions are 0 .. n−2
        let mut i = k;
        loop {
            if i == 0 {
                self.boundaries = None;
                break;
            }
            i -= 1;
            if bounds[i] < max_pos - 1 - (k - 1 - i) {
                bounds[i] += 1;
                for j in i + 1..k {
                    bounds[j] = bounds[j - 1] + 1;
                }
                break;
            }
        }
        Some(intervals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flatten(ivs: &[Interval]) -> Vec<(usize, usize)> {
        ivs.iter().map(|iv| (iv.start(), iv.end())).collect()
    }

    #[test]
    fn count_matches_enumeration() {
        for n in 1..=10usize {
            let got = IntervalPartitions::new(n).count();
            assert_eq!(got as u128, count_partitions(n), "n={n}");
        }
    }

    #[test]
    fn n1_single_partition() {
        let all: Vec<_> = IntervalPartitions::new(1).collect();
        assert_eq!(all.len(), 1);
        assert_eq!(flatten(&all[0]), vec![(0, 0)]);
    }

    #[test]
    fn n3_partitions_are_exactly_the_four() {
        let all: Vec<Vec<(usize, usize)>> = IntervalPartitions::new(3)
            .map(|ivs| flatten(&ivs))
            .collect();
        assert_eq!(
            all,
            vec![
                vec![(0, 2)],
                vec![(0, 0), (1, 2)],
                vec![(0, 1), (2, 2)],
                vec![(0, 0), (1, 1), (2, 2)],
            ]
        );
    }

    #[test]
    fn partitions_cover_contiguously() {
        for n in 1..=8usize {
            for part in IntervalPartitions::new(n) {
                let mut expected = 0usize;
                for iv in &part {
                    assert_eq!(iv.start(), expected);
                    expected = iv.end() + 1;
                }
                assert_eq!(expected, n);
            }
        }
    }

    #[test]
    fn size_hint_is_exact() {
        let mut it = IntervalPartitions::new(5);
        assert_eq!(it.size_hint(), (16, Some(16)));
        it.next();
        assert_eq!(it.size_hint(), (15, Some(15)));
    }

    #[test]
    fn with_parts_counts_binomially() {
        fn binom(n: usize, k: usize) -> usize {
            if k > n {
                return 0;
            }
            let mut r = 1usize;
            for i in 0..k {
                r = r * (n - i) / (i + 1);
            }
            r
        }
        for n in 1..=8usize {
            for p in 1..=n {
                let got = PartitionsWithParts::new(n, p).count();
                assert_eq!(got, binom(n - 1, p - 1), "n={n} p={p}");
            }
        }
    }

    #[test]
    fn with_parts_degenerate() {
        assert_eq!(PartitionsWithParts::new(3, 0).count(), 0);
        assert_eq!(PartitionsWithParts::new(3, 4).count(), 0);
        let all: Vec<_> = PartitionsWithParts::new(3, 3).collect();
        assert_eq!(all.len(), 1);
        assert_eq!(flatten(&all[0]), vec![(0, 0), (1, 1), (2, 2)]);
    }

    #[test]
    fn with_parts_equals_filtered_full_enumeration() {
        for n in 1..=7usize {
            for p in 1..=n {
                let filtered: Vec<Vec<(usize, usize)>> = IntervalPartitions::new(n)
                    .filter(|ivs| ivs.len() == p)
                    .map(|ivs| flatten(&ivs))
                    .collect();
                let mut direct: Vec<Vec<(usize, usize)>> = PartitionsWithParts::new(n, p)
                    .map(|ivs| flatten(&ivs))
                    .collect();
                let mut filtered_sorted = filtered.clone();
                filtered_sorted.sort();
                direct.sort();
                assert_eq!(filtered_sorted, direct, "n={n} p={p}");
            }
        }
    }
}
