//! Canonical content hashing of model objects.
//!
//! The solver service keys its solution cache by a stable digest of
//! `(instance, query)`. The digest must be identical for semantically
//! identical instances across processes and platforms, so it is computed
//! over the canonical numeric content (bit patterns of the `f64` values in
//! a fixed field order), not over any serialized text form.
//!
//! The hash is two independent 64-bit FNV-1a streams combined into 128
//! bits — collision probability is negligible at cache scale, and the
//! implementation has no dependencies.

use crate::platform::{Platform, Vertex};
use crate::stage::Pipeline;

const FNV_OFFSET_A: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_OFFSET_B: u64 = 0x6c62_272e_07bb_0142;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental 128-bit canonical hasher.
#[derive(Clone, Debug)]
pub struct CanonicalHasher {
    a: u64,
    b: u64,
}

impl Default for CanonicalHasher {
    fn default() -> Self {
        CanonicalHasher {
            a: FNV_OFFSET_A,
            b: FNV_OFFSET_B,
        }
    }
}

impl CanonicalHasher {
    /// A fresh hasher.
    #[must_use]
    pub fn new() -> Self {
        CanonicalHasher::default()
    }

    /// Feeds raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.a = (self.a ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
            // The second stream sees the byte offset by one so the two
            // streams stay decorrelated.
            self.b = (self.b ^ u64::from(byte.wrapping_add(1))).wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds a `u64`.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds a `usize`.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Feeds an `f64` by bit pattern, canonicalizing `-0.0` to `0.0` so
    /// numerically equal instances digest equally.
    pub fn write_f64(&mut self, v: f64) {
        let canonical = if v == 0.0 { 0.0f64 } else { v };
        self.write_u64(canonical.to_bits());
    }

    /// Feeds a string (length-prefixed, so concatenations cannot collide).
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    /// The 128-bit digest.
    #[must_use]
    pub fn finish(&self) -> u128 {
        (u128::from(self.a) << 64) | u128::from(self.b)
    }
}

/// [`std::hash::Hasher`] over the same FNV-1a stream (single 64-bit
/// lane) — for hot hash-map keys where SipHash's per-lookup cost is
/// measurable (e.g. the candidate-list move cache). Not for canonical
/// cross-process digests; that is [`CanonicalHasher`]'s job.
#[derive(Clone, Debug)]
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(FNV_OFFSET_A)
    }
}

impl std::hash::Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
    }
}

/// [`std::hash::BuildHasher`] producing [`FnvHasher`]s.
#[derive(Clone, Debug, Default)]
pub struct FnvBuildHasher;

impl std::hash::BuildHasher for FnvBuildHasher {
    type Hasher = FnvHasher;

    fn build_hasher(&self) -> FnvHasher {
        FnvHasher::default()
    }
}

/// Types with a canonical content digest.
pub trait CanonicalDigest {
    /// Feeds `self`'s canonical content into the hasher.
    fn digest(&self, hasher: &mut CanonicalHasher);

    /// One-shot digest of `self` alone.
    fn canonical_hash(&self) -> u128 {
        let mut hasher = CanonicalHasher::new();
        self.digest(&mut hasher);
        hasher.finish()
    }
}

/// Canonical key of a problem *instance* — the `(pipeline, platform)`
/// content alone, independent of any objective or query parameters. This
/// is the key under which the serving layer caches and shares Pareto
/// fronts: every threshold query over the same instance maps to the same
/// front.
#[must_use]
pub fn instance_key(pipeline: &Pipeline, platform: &Platform) -> u128 {
    let mut hasher = CanonicalHasher::new();
    hasher.write_str("front");
    pipeline.digest(&mut hasher);
    platform.digest(&mut hasher);
    hasher.finish()
}

impl CanonicalDigest for Pipeline {
    fn digest(&self, hasher: &mut CanonicalHasher) {
        hasher.write_str("pipeline");
        hasher.write_usize(self.n_stages());
        for &w in self.works() {
            hasher.write_f64(w);
        }
        for &d in self.deltas() {
            hasher.write_f64(d);
        }
    }
}

impl CanonicalDigest for Platform {
    fn digest(&self, hasher: &mut CanonicalHasher) {
        hasher.write_str("platform");
        let m = self.n_procs();
        hasher.write_usize(m);
        for &s in self.speeds() {
            hasher.write_f64(s);
        }
        for &fp in self.failure_probs() {
            hasher.write_f64(fp);
        }
        // Full bandwidth matrix in vertex order (procs, In, Out); the
        // matrix is symmetric but hashing every entry keeps this code
        // independent of that invariant.
        let verts: Vec<Vertex> = self
            .procs()
            .map(Vertex::Proc)
            .chain([Vertex::In, Vertex::Out])
            .collect();
        for &x in &verts {
            for &y in &verts {
                hasher.write_f64(self.bandwidth(x, y));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pipeline(works: Vec<f64>, deltas: Vec<f64>) -> Pipeline {
        Pipeline::new(works, deltas).expect("valid")
    }

    #[test]
    fn equal_content_equal_hash() {
        let a = pipeline(vec![1.0, 2.0], vec![3.0, 4.0, 5.0]);
        let b = pipeline(vec![1.0, 2.0], vec![3.0, 4.0, 5.0]);
        assert_eq!(a.canonical_hash(), b.canonical_hash());
    }

    #[test]
    fn different_content_different_hash() {
        let a = pipeline(vec![1.0, 2.0], vec![3.0, 4.0, 5.0]);
        let b = pipeline(vec![1.0, 2.5], vec![3.0, 4.0, 5.0]);
        let c = pipeline(vec![2.0, 1.0], vec![3.0, 4.0, 5.0]);
        assert_ne!(a.canonical_hash(), b.canonical_hash());
        assert_ne!(a.canonical_hash(), c.canonical_hash());
    }

    #[test]
    fn negative_zero_canonicalizes() {
        let a = pipeline(vec![0.0], vec![0.0, 0.0]);
        let b = pipeline(vec![-0.0], vec![-0.0, 0.0]);
        assert_eq!(a.canonical_hash(), b.canonical_hash());
    }

    #[test]
    fn platform_hash_covers_links() {
        let a = Platform::comm_homogeneous(vec![1.0, 2.0], 1.0, vec![0.1, 0.2]).expect("valid");
        let b = Platform::comm_homogeneous(vec![1.0, 2.0], 2.0, vec![0.1, 0.2]).expect("valid");
        assert_ne!(a.canonical_hash(), b.canonical_hash());
        assert_eq!(a.canonical_hash(), a.clone().canonical_hash());
    }

    #[test]
    fn combined_digest_is_order_sensitive() {
        let p = pipeline(vec![1.0], vec![1.0, 1.0]);
        let pf = Platform::comm_homogeneous(vec![1.0], 1.0, vec![0.5]).expect("valid");
        let mut h1 = CanonicalHasher::new();
        p.digest(&mut h1);
        pf.digest(&mut h1);
        let mut h2 = CanonicalHasher::new();
        pf.digest(&mut h2);
        p.digest(&mut h2);
        assert_ne!(h1.finish(), h2.finish());
    }
}
