//! Consistent-hash ring for partitioning the instance keyspace across a
//! fleet of serving nodes.
//!
//! Every node is mapped to `vnodes` pseudo-random points on a `u64` ring
//! (virtual nodes smooth the partition: with `v` vnodes per node the load
//! imbalance concentrates around `1 ± O(1/√v)`). A key is owned by the
//! node whose point is the first at or clockwise-after the key's own ring
//! point. Both hashes reuse the canonical FNV-128 hasher
//! ([`crate::hash::CanonicalHasher`]), so every process that knows the
//! same node names computes the **same ownership function** — the
//! property that lets a fleet of `rpwf serve` instances route cache
//! lookups without any coordination service.
//!
//! **Stability contract** (the reason to use consistent hashing at all):
//! adding or removing one node only remaps the keys that move *to* the
//! added node or *away from* the removed node. Every other key keeps its
//! owner, so a membership change invalidates at most `1/n`-th of a warm
//! fleet cache instead of reshuffling everything. Property-tested in this
//! module.

use crate::hash::CanonicalHasher;

/// Default number of virtual nodes per physical node.
pub const DEFAULT_VNODES: usize = 64;

/// A consistent-hash ring over named nodes.
///
/// Node names are arbitrary strings — the serving layer uses the
/// `host:port` address every fleet member knows a node by, which makes
/// the ring identical on every node without coordination.
#[derive(Clone, Debug)]
pub struct HashRing {
    /// Node names, sorted and deduplicated (index = node id).
    nodes: Vec<String>,
    /// Ring points `(point, node index)`, sorted by point then node.
    points: Vec<(u64, u32)>,
    /// Virtual nodes per physical node.
    vnodes: usize,
}

/// Ring point of one virtual node (stable across processes).
fn vnode_point(node: &str, replica: usize) -> u64 {
    let mut hasher = CanonicalHasher::new();
    hasher.write_str("ring-node");
    hasher.write_str(node);
    hasher.write_usize(replica);
    fold_u128(hasher.finish())
}

/// Ring point of a key. Keys are re-hashed (rather than used directly) so
/// ring placement stays well distributed even if callers feed structured
/// key spaces, and stays decorrelated from the cache's shard-by-low-bits
/// scheme.
fn key_point(key: u128) -> u64 {
    let mut hasher = CanonicalHasher::new();
    hasher.write_str("ring-key");
    hasher.write_u64(key as u64);
    hasher.write_u64((key >> 64) as u64);
    fold_u128(hasher.finish())
}

fn fold_u128(x: u128) -> u64 {
    (x as u64) ^ ((x >> 64) as u64)
}

impl HashRing {
    /// Builds a ring over `nodes` with `vnodes` virtual nodes each
    /// (`0` is clamped to 1). Duplicate names collapse to one node; name
    /// order does not matter — every permutation builds the same ring.
    #[must_use]
    pub fn new<I, S>(nodes: I, vnodes: usize) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut names: Vec<String> = nodes.into_iter().map(Into::into).collect();
        names.sort_unstable();
        names.dedup();
        let mut ring = HashRing {
            nodes: Vec::new(),
            points: Vec::new(),
            vnodes: vnodes.max(1),
        };
        for name in names {
            ring.insert_points(&name);
        }
        ring
    }

    /// The member names, sorted.
    #[must_use]
    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    /// Number of member nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the ring has no members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Virtual nodes per member.
    #[must_use]
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// `true` when `node` is a member.
    #[must_use]
    pub fn contains(&self, node: &str) -> bool {
        self.nodes.iter().any(|n| n == node)
    }

    /// The owner of `key`: the node whose ring point is the first at or
    /// clockwise-after the key's point (wrapping). `None` on an empty
    /// ring.
    #[must_use]
    pub fn owner(&self, key: u128) -> Option<&str> {
        let idx = self.owner_index(key)?;
        Some(&self.nodes[idx])
    }

    /// [`owner`](Self::owner) as an index into [`nodes`](Self::nodes).
    #[must_use]
    pub fn owner_index(&self, key: u128) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let point = key_point(key);
        let at = self.points.partition_point(|&(p, _)| p < point);
        let (_, node) = self.points[at % self.points.len()];
        Some(node as usize)
    }

    /// The replicated owner list of `key`: up to `r` **distinct physical
    /// nodes**, in the order their ring points are met walking clockwise
    /// from the key's point. The first entry is [`owner`](Self::owner)
    /// (the *primary*); the rest are the failover/replica successors.
    /// Fewer than `r` members yields every member (once); an empty ring
    /// or `r == 0` yields nothing.
    ///
    /// The successor list inherits the ring's stability contract: a
    /// membership change only splices the joiner into (or the leaver out
    /// of) a key's list — the *relative order* of all surviving nodes is
    /// preserved, so replicated placement moves as little data on churn
    /// as single ownership does. Property-tested in
    /// `tests/ring_proptests.rs`.
    #[must_use]
    pub fn owners(&self, key: u128, r: usize) -> Vec<&str> {
        if self.points.is_empty() || r == 0 {
            return Vec::new();
        }
        let want = r.min(self.nodes.len());
        let point = key_point(key);
        let start = self.points.partition_point(|&(p, _)| p < point);
        let mut indices: Vec<u32> = Vec::with_capacity(want);
        for offset in 0..self.points.len() {
            let (_, node) = self.points[(start + offset) % self.points.len()];
            if !indices.contains(&node) {
                indices.push(node);
                if indices.len() == want {
                    break;
                }
            }
        }
        indices
            .into_iter()
            .map(|i| self.nodes[i as usize].as_str())
            .collect()
    }

    /// Adds a member (no-op when already present). Only keys whose owner
    /// becomes `node` move; every other key keeps its owner.
    pub fn add_node(&mut self, node: &str) {
        if !self.contains(node) {
            self.insert_points(node);
        }
    }

    /// Removes a member (no-op when absent). Only keys owned by `node`
    /// move; every other key keeps its owner.
    pub fn remove_node(&mut self, node: &str) {
        let Some(gone) = self.nodes.iter().position(|n| n == node) else {
            return;
        };
        self.nodes.remove(gone);
        let gone = gone as u32;
        self.points.retain(|&(_, n)| n != gone);
        for (_, n) in &mut self.points {
            if *n > gone {
                *n -= 1;
            }
        }
    }

    /// Inserts `node` into the sorted name list and adds its ring points.
    fn insert_points(&mut self, node: &str) {
        let at = self.nodes.partition_point(|n| n.as_str() < node);
        self.nodes.insert(at, node.to_string());
        let at = at as u32;
        // Renumber members displaced by the insertion.
        for (_, n) in &mut self.points {
            if *n >= at {
                *n += 1;
            }
        }
        for replica in 0..self.vnodes {
            let point = (vnode_point(node, replica), at);
            let pos = self.points.partition_point(|&p| p < point);
            self.points.insert(pos, point);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(count: u64) -> impl Iterator<Item = u128> {
        // Structured key space on purpose: the re-hash must spread it.
        (0..count).map(|i| u128::from(i) * 7 + 3)
    }

    #[test]
    fn ownership_is_total_and_deterministic() {
        let ring = HashRing::new(["a", "b", "c"], 32);
        let again = HashRing::new(["c", "a", "b", "a"], 32);
        for key in keys(500) {
            let owner = ring.owner(key).expect("non-empty ring");
            assert!(ring.contains(owner));
            assert_eq!(Some(owner), again.owner(key), "order/dup independent");
        }
    }

    #[test]
    fn empty_ring_owns_nothing() {
        let ring = HashRing::new(Vec::<String>::new(), 8);
        assert!(ring.is_empty());
        assert_eq!(ring.owner(42), None);
        assert_eq!(ring.owner_index(42), None);
    }

    #[test]
    fn single_node_owns_everything() {
        let ring = HashRing::new(["solo"], 8);
        for key in keys(100) {
            assert_eq!(ring.owner(key), Some("solo"));
        }
    }

    #[test]
    fn vnodes_spread_the_load() {
        let ring = HashRing::new(["a", "b", "c"], DEFAULT_VNODES);
        let mut counts = [0usize; 3];
        let total = 3000;
        for key in keys(total) {
            counts[ring.owner_index(key).expect("non-empty")] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let share = c as f64 / total as f64;
            assert!(
                (0.15..=0.60).contains(&share),
                "node {i} owns a degenerate share: {share:.3}"
            );
        }
    }

    #[test]
    fn join_only_pulls_keys_to_the_new_node() {
        let before = HashRing::new(["a", "b", "c"], 16);
        let mut after = before.clone();
        after.add_node("d");
        let mut moved = 0usize;
        for key in keys(2000) {
            let old = before.owner(key).expect("non-empty");
            let new = after.owner(key).expect("non-empty");
            if old != new {
                assert_eq!(new, "d", "a join may only move keys to the joiner");
                moved += 1;
            }
        }
        assert!(moved > 0, "the joiner must take over some keys");
        assert!(moved < 1500, "a join must not reshuffle the whole space");
    }

    #[test]
    fn leave_only_moves_the_leavers_keys() {
        let before = HashRing::new(["a", "b", "c", "d"], 16);
        let mut after = before.clone();
        after.remove_node("b");
        for key in keys(2000) {
            let old = before.owner(key).expect("non-empty");
            let new = after.owner(key).expect("non-empty");
            if old != "b" {
                assert_eq!(old, new, "a leave may only move the leaver's keys");
            } else {
                assert_ne!(new, "b");
            }
        }
    }

    #[test]
    fn owners_lists_distinct_nodes_primary_first() {
        let ring = HashRing::new(["a", "b", "c", "d"], 16);
        for key in keys(500) {
            let owners = ring.owners(key, 2);
            assert_eq!(owners.len(), 2);
            assert_eq!(Some(owners[0]), ring.owner(key), "primary first");
            assert_ne!(owners[0], owners[1], "replicas are distinct nodes");
        }
    }

    #[test]
    fn owners_saturates_at_the_member_count() {
        let ring = HashRing::new(["a", "b"], 8);
        for key in keys(50) {
            let all = ring.owners(key, 5);
            assert_eq!(all.len(), 2, "only two members exist");
            let mut sorted = all.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec!["a", "b"]);
        }
        assert!(ring.owners(1, 0).is_empty());
        assert!(HashRing::new(Vec::<String>::new(), 8)
            .owners(1, 2)
            .is_empty());
    }

    #[test]
    fn owners_prefix_is_owners_of_smaller_r() {
        let ring = HashRing::new(["a", "b", "c", "d", "e"], 16);
        for key in keys(200) {
            let three = ring.owners(key, 3);
            assert_eq!(ring.owners(key, 1), three[..1].to_vec());
            assert_eq!(ring.owners(key, 2), three[..2].to_vec());
        }
    }

    #[test]
    fn replica_set_survives_primary_removal() {
        // The point of replicated ownership: when the primary dies, the
        // old secondary is the new primary — the key's data is already
        // there.
        let ring = HashRing::new(["a", "b", "c", "d"], 32);
        for key in keys(300) {
            let owners = ring.owners(key, 2);
            let mut without_primary = ring.clone();
            without_primary.remove_node(owners[0]);
            assert_eq!(
                without_primary.owner(key),
                Some(owners[1]),
                "secondary must take over key {key:x}"
            );
        }
    }

    #[test]
    fn add_then_remove_roundtrips() {
        let base = HashRing::new(["a", "b", "c"], 16);
        let mut ring = base.clone();
        ring.add_node("z");
        ring.remove_node("z");
        for key in keys(500) {
            assert_eq!(base.owner(key), ring.owner(key));
        }
        ring.remove_node("absent"); // no-op
        ring.add_node("a"); // duplicate no-op
        assert_eq!(ring.len(), 3);
    }
}
