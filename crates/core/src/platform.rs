//! The platform side of the model: processors, links, failure probabilities.
//!
//! A platform (Figure 2 of the paper) is a virtual clique of `m` processors
//! `P_1 … P_m` plus two special vertices: `P_in`, which holds the initial
//! data of every data set, and `P_out`, which stores the results. Each
//! processor `P_u` has a speed `s_u` (flop/time-unit) and a failure
//! probability `fp_u ∈ [0, 1]` — the probability that it breaks down at some
//! point during the (long) execution of the workflow. Each ordered vertex
//! pair has a link bandwidth; links are bidirectional and stored
//! symmetrically.
//!
//! Platform taxonomy of the paper:
//! * **Fully Homogeneous** — identical speeds *and* identical bandwidths,
//! * **Communication Homogeneous** — identical bandwidths, arbitrary speeds,
//! * **Fully Heterogeneous** — everything arbitrary;
//!
//! orthogonally, **Failure Homogeneous** / **Failure Heterogeneous**.
//! Classification here is by *exact* float equality: generators construct
//! homogeneous platforms from a single shared constant, so exact comparison
//! is reliable and avoids tolerance ambiguity in solver dispatch.

use crate::error::{CoreError, Result};
use serde::{Deserialize, Serialize};

/// Identifier of a processor: dense indices `0 … m−1`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcId(pub u32);

impl ProcId {
    /// From a dense index.
    #[inline]
    #[must_use]
    pub fn new(index: usize) -> Self {
        ProcId(index as u32)
    }

    /// Back to a dense index.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ProcId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// A vertex of the communication graph: a processor, or one of the two
/// special I/O stations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Vertex {
    /// `P_in`, the source of every data set.
    In,
    /// A compute processor.
    Proc(ProcId),
    /// `P_out`, the sink of every result.
    Out,
}

/// Platform classes of the paper (§2.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlatformClass {
    /// Identical processors and identical links.
    FullyHomogeneous,
    /// Identical links, heterogeneous speeds.
    CommHomogeneous,
    /// Heterogeneous links and speeds.
    FullyHeterogeneous,
}

/// Failure-probability classes of the paper (§2.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FailureClass {
    /// All processors share one failure probability.
    Homogeneous,
    /// Failure probabilities differ.
    Heterogeneous,
}

/// An immutable target platform.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    speeds: Vec<f64>,
    failure_probs: Vec<f64>,
    /// Row-major `(m + 2) × (m + 2)` bandwidth matrix; row/col `m` is `In`,
    /// `m + 1` is `Out`. Diagonal entries are `+∞` (intra-processor data
    /// movement is free). Symmetric by construction. Serialized through
    /// [`inf_as_null`] because JSON has no literal for infinity.
    #[serde(with = "inf_as_null")]
    bandwidths: Vec<f64>,
}

/// Serde codec mapping `+∞` ⟷ `null` so platforms survive JSON round trips
/// (serde_json writes non-finite floats as `null`, which would otherwise
/// fail to parse back).
mod inf_as_null {
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    pub fn serialize<S: Serializer>(v: &[f64], s: S) -> Result<S::Ok, S::Error> {
        let opts: Vec<Option<f64>> = v
            .iter()
            .map(|&x| if x.is_finite() { Some(x) } else { None })
            .collect();
        opts.serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Vec<f64>, D::Error> {
        let opts: Vec<Option<f64>> = Vec::deserialize(d)?;
        Ok(opts
            .into_iter()
            .map(|x| x.unwrap_or(f64::INFINITY))
            .collect())
    }
}

impl Platform {
    /// Number of compute processors `m`.
    #[inline]
    #[must_use]
    pub fn n_procs(&self) -> usize {
        self.speeds.len()
    }

    /// Iterator over all processor ids.
    pub fn procs(&self) -> impl Iterator<Item = ProcId> + Clone + '_ {
        (0..self.n_procs()).map(ProcId::new)
    }

    /// Speed `s_u`.
    #[inline]
    #[must_use]
    pub fn speed(&self, p: ProcId) -> f64 {
        self.speeds[p.index()]
    }

    /// Failure probability `fp_u`.
    #[inline]
    #[must_use]
    pub fn failure_prob(&self, p: ProcId) -> f64 {
        self.failure_probs[p.index()]
    }

    /// All speeds in id order.
    #[inline]
    #[must_use]
    pub fn speeds(&self) -> &[f64] {
        &self.speeds
    }

    /// All failure probabilities in id order.
    #[inline]
    #[must_use]
    pub fn failure_probs(&self) -> &[f64] {
        &self.failure_probs
    }

    #[inline]
    fn vertex_index(&self, v: Vertex) -> usize {
        match v {
            Vertex::Proc(p) => p.index(),
            Vertex::In => self.n_procs(),
            Vertex::Out => self.n_procs() + 1,
        }
    }

    /// Bandwidth of the (bidirectional) link between `a` and `b`.
    /// `a == b` yields `+∞`: staying on a processor costs nothing.
    #[inline]
    #[must_use]
    pub fn bandwidth(&self, a: Vertex, b: Vertex) -> f64 {
        let n = self.n_procs() + 2;
        self.bandwidths[self.vertex_index(a) * n + self.vertex_index(b)]
    }

    /// Time to ship `size` units across the `a → b` link (`0` when `a == b`).
    #[inline]
    #[must_use]
    pub fn comm_time(&self, a: Vertex, b: Vertex, size: f64) -> f64 {
        if size == 0.0 {
            return 0.0;
        }
        size / self.bandwidth(a, b)
    }

    /// If every link (processor–processor and I/O) has the same bandwidth,
    /// returns it.
    #[must_use]
    pub fn uniform_bandwidth(&self) -> Option<f64> {
        let m = self.n_procs();
        let n = m + 2;
        let mut common = None;
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                // The In–Out link is never used by any mapping; ignore it.
                if (i == m && j == m + 1) || (i == m + 1 && j == m) {
                    continue;
                }
                let b = self.bandwidths[i * n + j];
                match common {
                    None => common = Some(b),
                    Some(c) if c == b => {}
                    Some(_) => return None,
                }
            }
        }
        common
    }

    /// The platform class (see module docs for the equality convention).
    #[must_use]
    pub fn class(&self) -> PlatformClass {
        let comm_homog = self.uniform_bandwidth().is_some();
        if !comm_homog {
            return PlatformClass::FullyHeterogeneous;
        }
        let speed_homog = self.speeds.windows(2).all(|w| w[0] == w[1]);
        if speed_homog {
            PlatformClass::FullyHomogeneous
        } else {
            PlatformClass::CommHomogeneous
        }
    }

    /// The failure class.
    #[must_use]
    pub fn failure_class(&self) -> FailureClass {
        if self.failure_probs.windows(2).all(|w| w[0] == w[1]) {
            FailureClass::Homogeneous
        } else {
            FailureClass::Heterogeneous
        }
    }

    /// Processor ids sorted by decreasing speed (ties by id for determinism).
    #[must_use]
    pub fn procs_by_speed_desc(&self) -> Vec<ProcId> {
        let mut ids: Vec<ProcId> = self.procs().collect();
        ids.sort_by(|a, b| {
            self.speed(*b)
                .total_cmp(&self.speed(*a))
                .then(a.0.cmp(&b.0))
        });
        ids
    }

    /// Processor ids sorted by increasing failure probability, i.e. most
    /// reliable first (ties by id).
    #[must_use]
    pub fn procs_by_reliability_desc(&self) -> Vec<ProcId> {
        let mut ids: Vec<ProcId> = self.procs().collect();
        ids.sort_by(|a, b| {
            self.failure_prob(*a)
                .total_cmp(&self.failure_prob(*b))
                .then(a.0.cmp(&b.0))
        });
        ids
    }

    /// The fastest processor (lowest id wins ties).
    #[must_use]
    pub fn fastest_proc(&self) -> ProcId {
        self.procs_by_speed_desc()[0]
    }

    // ---- Convenience constructors ----------------------------------------

    /// Fully homogeneous platform: `m` processors of speed `s`, all links of
    /// bandwidth `b`, all failure probabilities `fp`.
    pub fn fully_homogeneous(m: usize, s: f64, b: f64, fp: f64) -> Result<Self> {
        PlatformBuilder::new(m)
            .speeds_uniform(s)
            .failure_probs_uniform(fp)
            .bandwidth_uniform(b)
            .build()
    }

    /// Communication-homogeneous platform: per-processor speeds and failure
    /// probabilities, one shared bandwidth `b`.
    pub fn comm_homogeneous(speeds: Vec<f64>, b: f64, failure_probs: Vec<f64>) -> Result<Self> {
        let m = speeds.len();
        PlatformBuilder::new(m)
            .speeds(speeds)?
            .failure_probs(failure_probs)?
            .bandwidth_uniform(b)
            .build()
    }
}

/// Mutable construction of a [`Platform`].
///
/// Defaults: speed 1, failure probability 0, bandwidth 1 everywhere.
#[derive(Clone, Debug)]
pub struct PlatformBuilder {
    speeds: Vec<f64>,
    failure_probs: Vec<f64>,
    bandwidths: Vec<f64>,
}

impl PlatformBuilder {
    /// Starts a builder for `m` processors.
    #[must_use]
    pub fn new(m: usize) -> Self {
        let n = m + 2;
        let mut bandwidths = vec![1.0; n * n];
        for i in 0..n {
            bandwidths[i * n + i] = f64::INFINITY;
        }
        PlatformBuilder {
            speeds: vec![1.0; m],
            failure_probs: vec![0.0; m],
            bandwidths,
        }
    }

    fn m(&self) -> usize {
        self.speeds.len()
    }

    fn vertex_index(&self, v: Vertex) -> usize {
        match v {
            Vertex::Proc(p) => p.index(),
            Vertex::In => self.m(),
            Vertex::Out => self.m() + 1,
        }
    }

    /// Sets one processor's speed.
    #[must_use]
    pub fn speed(mut self, p: ProcId, s: f64) -> Self {
        self.speeds[p.index()] = s;
        self
    }

    /// Sets all speeds from a vector.
    ///
    /// # Errors
    /// [`CoreError::DimensionMismatch`] when the length differs from `m`.
    pub fn speeds(mut self, speeds: Vec<f64>) -> Result<Self> {
        if speeds.len() != self.m() {
            return Err(CoreError::DimensionMismatch {
                what: "speeds",
                expected: self.m(),
                actual: speeds.len(),
            });
        }
        self.speeds = speeds;
        Ok(self)
    }

    /// Sets every speed to `s`.
    #[must_use]
    pub fn speeds_uniform(mut self, s: f64) -> Self {
        self.speeds.iter_mut().for_each(|x| *x = s);
        self
    }

    /// Sets one processor's failure probability.
    #[must_use]
    pub fn failure_prob(mut self, p: ProcId, fp: f64) -> Self {
        self.failure_probs[p.index()] = fp;
        self
    }

    /// Sets all failure probabilities from a vector.
    ///
    /// # Errors
    /// [`CoreError::DimensionMismatch`] when the length differs from `m`.
    pub fn failure_probs(mut self, fps: Vec<f64>) -> Result<Self> {
        if fps.len() != self.m() {
            return Err(CoreError::DimensionMismatch {
                what: "failure_probs",
                expected: self.m(),
                actual: fps.len(),
            });
        }
        self.failure_probs = fps;
        Ok(self)
    }

    /// Sets every failure probability to `fp`.
    #[must_use]
    pub fn failure_probs_uniform(mut self, fp: f64) -> Self {
        self.failure_probs.iter_mut().for_each(|x| *x = fp);
        self
    }

    /// Sets the bidirectional bandwidth between two vertices.
    #[must_use]
    pub fn bandwidth(mut self, a: Vertex, b: Vertex, value: f64) -> Self {
        let n = self.m() + 2;
        let (i, j) = (self.vertex_index(a), self.vertex_index(b));
        if i != j {
            self.bandwidths[i * n + j] = value;
            self.bandwidths[j * n + i] = value;
        }
        self
    }

    /// Sets every link (including I/O links) to bandwidth `b`.
    #[must_use]
    pub fn bandwidth_uniform(mut self, b: f64) -> Self {
        let n = self.m() + 2;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    self.bandwidths[i * n + j] = b;
                }
            }
        }
        self
    }

    /// Sets the `P_in → P_u` bandwidth.
    #[must_use]
    pub fn input_bandwidth(self, p: ProcId, b: f64) -> Self {
        self.bandwidth(Vertex::In, Vertex::Proc(p), b)
    }

    /// Sets the `P_u → P_out` bandwidth.
    #[must_use]
    pub fn output_bandwidth(self, p: ProcId, b: f64) -> Self {
        self.bandwidth(Vertex::Proc(p), Vertex::Out, b)
    }

    /// Validates and freezes the platform.
    ///
    /// # Errors
    /// * [`CoreError::EmptyPlatform`] for `m = 0`,
    /// * [`CoreError::InvalidValue`] for non-positive/non-finite speeds or
    ///   bandwidths, or failure probabilities outside `[0, 1]`.
    pub fn build(self) -> Result<Platform> {
        if self.speeds.is_empty() {
            return Err(CoreError::EmptyPlatform);
        }
        for &s in &self.speeds {
            if !s.is_finite() || s <= 0.0 {
                return Err(CoreError::InvalidValue {
                    what: "speed",
                    value: s,
                });
            }
        }
        for &fp in &self.failure_probs {
            if !fp.is_finite() || !(0.0..=1.0).contains(&fp) {
                return Err(CoreError::InvalidValue {
                    what: "failure probability",
                    value: fp,
                });
            }
        }
        let n = self.m() + 2;
        for i in 0..n {
            for j in 0..n {
                let b = self.bandwidths[i * n + j];
                if i == j {
                    debug_assert_eq!(b, f64::INFINITY);
                    continue;
                }
                if b.is_nan() || b <= 0.0 {
                    return Err(CoreError::InvalidValue {
                        what: "bandwidth",
                        value: b,
                    });
                }
            }
        }
        Ok(Platform {
            speeds: self.speeds,
            failure_probs: self.failure_probs,
            bandwidths: self.bandwidths,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_homogeneous_classification() {
        let pf = Platform::fully_homogeneous(4, 2.0, 3.0, 0.1).unwrap();
        assert_eq!(pf.class(), PlatformClass::FullyHomogeneous);
        assert_eq!(pf.failure_class(), FailureClass::Homogeneous);
        assert_eq!(pf.uniform_bandwidth(), Some(3.0));
        assert_eq!(pf.n_procs(), 4);
    }

    #[test]
    fn comm_homogeneous_classification() {
        let pf = Platform::comm_homogeneous(vec![1.0, 2.0], 1.0, vec![0.1, 0.1]).unwrap();
        assert_eq!(pf.class(), PlatformClass::CommHomogeneous);
        assert_eq!(pf.failure_class(), FailureClass::Homogeneous);
    }

    #[test]
    fn fully_heterogeneous_classification() {
        let pf = PlatformBuilder::new(2)
            .bandwidth(Vertex::Proc(ProcId(0)), Vertex::Proc(ProcId(1)), 7.0)
            .build()
            .unwrap();
        assert_eq!(pf.class(), PlatformClass::FullyHeterogeneous);
    }

    #[test]
    fn failure_heterogeneous_classification() {
        let pf = Platform::comm_homogeneous(vec![1.0, 1.0], 1.0, vec![0.1, 0.2]).unwrap();
        assert_eq!(pf.failure_class(), FailureClass::Heterogeneous);
    }

    #[test]
    fn in_out_link_is_ignored_for_classification() {
        // Changing the In-Out bandwidth must not flip the class: no mapping
        // ever routes data over that link.
        let pf = PlatformBuilder::new(2)
            .bandwidth(Vertex::In, Vertex::Out, 99.0)
            .build()
            .unwrap();
        assert_eq!(pf.class(), PlatformClass::FullyHomogeneous);
    }

    #[test]
    fn bandwidth_is_symmetric_and_diagonal_infinite() {
        let p0 = Vertex::Proc(ProcId(0));
        let p1 = Vertex::Proc(ProcId(1));
        let pf = PlatformBuilder::new(2)
            .bandwidth(p0, p1, 5.0)
            .build()
            .unwrap();
        assert_eq!(pf.bandwidth(p0, p1), 5.0);
        assert_eq!(pf.bandwidth(p1, p0), 5.0);
        assert_eq!(pf.bandwidth(p0, p0), f64::INFINITY);
        assert_eq!(pf.comm_time(p0, p0, 42.0), 0.0);
    }

    #[test]
    fn comm_time_zero_size_is_free_even_on_slow_links() {
        let pf = Platform::fully_homogeneous(1, 1.0, 1e-9, 0.0).unwrap();
        assert_eq!(pf.comm_time(Vertex::In, Vertex::Proc(ProcId(0)), 0.0), 0.0);
    }

    #[test]
    fn builder_rejects_bad_values() {
        assert!(PlatformBuilder::new(0).build().is_err());
        assert!(PlatformBuilder::new(1)
            .speed(ProcId(0), 0.0)
            .build()
            .is_err());
        assert!(PlatformBuilder::new(1)
            .speed(ProcId(0), -1.0)
            .build()
            .is_err());
        assert!(PlatformBuilder::new(1)
            .failure_prob(ProcId(0), 1.5)
            .build()
            .is_err());
        assert!(PlatformBuilder::new(1)
            .failure_prob(ProcId(0), -0.1)
            .build()
            .is_err());
        assert!(PlatformBuilder::new(2)
            .bandwidth(Vertex::Proc(ProcId(0)), Vertex::Proc(ProcId(1)), 0.0)
            .build()
            .is_err());
    }

    #[test]
    fn builder_dimension_checks() {
        assert!(PlatformBuilder::new(2).speeds(vec![1.0]).is_err());
        assert!(PlatformBuilder::new(2).failure_probs(vec![0.0; 3]).is_err());
    }

    #[test]
    fn sorted_helpers() {
        let pf = Platform::comm_homogeneous(vec![1.0, 3.0, 2.0], 1.0, vec![0.5, 0.1, 0.3]).unwrap();
        let by_speed: Vec<u32> = pf.procs_by_speed_desc().iter().map(|p| p.0).collect();
        assert_eq!(by_speed, vec![1, 2, 0]);
        let by_rel: Vec<u32> = pf.procs_by_reliability_desc().iter().map(|p| p.0).collect();
        assert_eq!(by_rel, vec![1, 2, 0]);
        assert_eq!(pf.fastest_proc(), ProcId(1));
    }

    #[test]
    fn sorted_helpers_tie_break_by_id() {
        let pf = Platform::fully_homogeneous(3, 1.0, 1.0, 0.2).unwrap();
        let ids: Vec<u32> = pf.procs_by_speed_desc().iter().map(|p| p.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn figure4_platform_of_the_paper() {
        // §3 Figure 4: s1 = s2 = 1; bin,1 = 100, bin,2 = 1 (slow side),
        // b1,2 = 100, b1,out = 1, b2,out = 100.
        let p1 = ProcId(0);
        let p2 = ProcId(1);
        let pf = PlatformBuilder::new(2)
            .input_bandwidth(p1, 100.0)
            .input_bandwidth(p2, 1.0)
            .bandwidth(Vertex::Proc(p1), Vertex::Proc(p2), 100.0)
            .output_bandwidth(p1, 1.0)
            .output_bandwidth(p2, 100.0)
            .build()
            .unwrap();
        assert_eq!(pf.class(), PlatformClass::FullyHeterogeneous);
        assert_eq!(pf.bandwidth(Vertex::In, Vertex::Proc(p1)), 100.0);
        assert_eq!(pf.bandwidth(Vertex::Proc(p1), Vertex::Out), 1.0);
    }
}
