//! Bi-objective (latency × failure probability) Pareto fronts.
//!
//! Both bi-criteria problems of the paper — "minimize FP subject to
//! latency ≤ L" and "minimize latency subject to FP ≤ F" — are answered by
//! the same object: the set of non-dominated `(latency, FP)` pairs. The
//! exact solvers build fronts and the threshold queries
//! ([`ParetoFront::min_fp_under_latency`],
//! [`ParetoFront::min_latency_under_fp`]) read the answers off them.
//!
//! Dominance is weak-minimization in both coordinates: `a` dominates `b`
//! when `a.latency ≤ b.latency` and `a.failure_prob ≤ b.failure_prob` and
//! `a ≠ b` in at least one coordinate. Duplicates keep the incumbent.

use serde::{Deserialize, Serialize};

/// A candidate solution with both objectives and an arbitrary payload
/// (typically the mapping that achieves it).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ParetoPoint<T> {
    /// Worst-case latency of the solution.
    pub latency: f64,
    /// Global failure probability of the solution.
    pub failure_prob: f64,
    /// The solution itself.
    pub payload: T,
}

impl<T> ParetoPoint<T> {
    /// `true` when `self` weakly dominates `other` (and differs somewhere).
    #[must_use]
    pub fn dominates<U>(&self, other: &ParetoPoint<U>) -> bool {
        self.latency <= other.latency
            && self.failure_prob <= other.failure_prob
            && (self.latency < other.latency || self.failure_prob < other.failure_prob)
    }
}

/// A set of mutually non-dominated points, kept sorted by increasing
/// latency (hence strictly decreasing failure probability).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ParetoFront<T> {
    points: Vec<ParetoPoint<T>>,
}

impl<T> Default for ParetoFront<T> {
    fn default() -> Self {
        ParetoFront { points: Vec::new() }
    }
}

impl<T> ParetoFront<T> {
    /// An empty front.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of points on the front.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when no point has been accepted yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The points, sorted by increasing latency.
    #[must_use]
    pub fn points(&self) -> &[ParetoPoint<T>] {
        &self.points
    }

    /// Iterator over the points in latency order.
    pub fn iter(&self) -> impl Iterator<Item = &ParetoPoint<T>> {
        self.points.iter()
    }

    /// Offers a candidate. Returns `true` when it joins the front (possibly
    /// evicting dominated incumbents), `false` when an incumbent dominates
    /// or duplicates it.
    pub fn insert(&mut self, latency: f64, failure_prob: f64, payload: T) -> bool {
        let candidate = ParetoPoint {
            latency,
            failure_prob,
            payload,
        };
        for existing in &self.points {
            if existing.dominates(&candidate)
                || (existing.latency == candidate.latency
                    && existing.failure_prob == candidate.failure_prob)
            {
                return false;
            }
        }
        self.points
            .retain(|existing| !candidate.dominates(existing));
        let pos = self
            .points
            .partition_point(|q| q.latency.total_cmp(&candidate.latency).is_lt());
        self.points.insert(pos, candidate);
        true
    }

    /// Absorbs every point of `other`.
    pub fn merge(&mut self, other: ParetoFront<T>) {
        for pt in other.points {
            self.insert(pt.latency, pt.failure_prob, pt.payload);
        }
    }

    /// Best (lowest) failure probability achievable with latency ≤ `l`.
    #[must_use]
    pub fn min_fp_under_latency(&self, l: f64) -> Option<&ParetoPoint<T>> {
        // Sorted by latency asc and fp strictly desc: the *last* point with
        // latency ≤ l has the smallest fp.
        let idx = self.points.partition_point(|q| q.latency <= l);
        idx.checked_sub(1).map(|i| &self.points[i])
    }

    /// Best (lowest) latency achievable with failure probability ≤ `fp`.
    #[must_use]
    pub fn min_latency_under_fp(&self, fp: f64) -> Option<&ParetoPoint<T>> {
        // fp decreases along the vector: the first point with fp ≤ bound has
        // the smallest latency.
        self.points.iter().find(|q| q.failure_prob <= fp)
    }

    /// The adjacent staircase point just past an infeasible latency
    /// bound: among points with latency **strictly greater** than `l`,
    /// the one with the smallest latency. This is the nearest feasible
    /// relaxation when [`min_fp_under_latency`](Self::min_fp_under_latency)
    /// returns `None`. `None` when no point lies above the bound (or the
    /// bound is NaN).
    #[must_use]
    pub fn nearest_above(&self, l: f64) -> Option<&ParetoPoint<T>> {
        if l.is_nan() {
            return None;
        }
        // Sorted by latency asc: the first point past the `≤ l` prefix.
        let idx = self.points.partition_point(|q| q.latency <= l);
        self.points.get(idx)
    }

    /// The adjacent staircase point just past an infeasible
    /// failure-probability bound: among points with failure probability
    /// **strictly greater** than `fp`, the one with the smallest failure
    /// probability. This is the nearest feasible relaxation when
    /// [`min_latency_under_fp`](Self::min_latency_under_fp) returns
    /// `None`. `None` when no point lies above the bound (or the bound
    /// is NaN).
    #[must_use]
    pub fn nearest_below(&self, fp: f64) -> Option<&ParetoPoint<T>> {
        if fp.is_nan() {
            return None;
        }
        // fp strictly decreases along the latency-sorted points, so the
        // `> fp` points form a prefix; its last element has the smallest
        // failure probability among them.
        let idx = self.points.partition_point(|q| q.failure_prob > fp);
        idx.checked_sub(1).map(|i| &self.points[i])
    }

    /// Vectorized [`min_fp_under_latency`](Self::min_fp_under_latency):
    /// answers every bound of the **ascending-sorted** `bounds` in one
    /// sweep over the front — O(k + len) instead of k binary searches.
    /// Each answer is identical to the corresponding point query.
    ///
    /// # Panics
    /// When `bounds` is not sorted ascending (NaN-tolerant total order).
    #[must_use]
    pub fn min_fp_under_latency_batch(&self, bounds: &[f64]) -> Vec<Option<&ParetoPoint<T>>> {
        assert!(
            bounds.windows(2).all(|w| w[0].total_cmp(&w[1]).is_le()),
            "latency bounds must be sorted ascending"
        );
        let mut out = Vec::with_capacity(bounds.len());
        // `idx` = number of points with latency ≤ bound; monotone in the
        // bound, so the cursor only ever advances.
        let mut idx = 0usize;
        for &l in bounds {
            if l.is_nan() {
                // Nothing satisfies a NaN bound — same as the point query.
                out.push(None);
                continue;
            }
            while idx < self.points.len() && self.points[idx].latency <= l {
                idx += 1;
            }
            out.push(idx.checked_sub(1).map(|i| &self.points[i]));
        }
        out
    }

    /// Vectorized [`min_latency_under_fp`](Self::min_latency_under_fp):
    /// answers every bound of the **descending-sorted** `bounds` in one
    /// sweep over the front (failure probability decreases along the
    /// latency-sorted points, so descending FP bounds advance the same
    /// forward cursor). Each answer is identical to the point query.
    ///
    /// # Panics
    /// When `bounds` is not sorted descending.
    #[must_use]
    pub fn min_latency_under_fp_batch(&self, bounds: &[f64]) -> Vec<Option<&ParetoPoint<T>>> {
        assert!(
            bounds.windows(2).all(|w| w[0].total_cmp(&w[1]).is_ge()),
            "failure-probability bounds must be sorted descending"
        );
        let mut out = Vec::with_capacity(bounds.len());
        // First point with fp ≤ bound; tighter (smaller) bounds only move
        // the cursor forward.
        let mut idx = 0usize;
        for &fp in bounds {
            if fp.is_nan() {
                // Nothing satisfies a NaN bound — same as the point query.
                out.push(None);
                continue;
            }
            while idx < self.points.len() && self.points[idx].failure_prob > fp {
                idx += 1;
            }
            out.push(self.points.get(idx));
        }
        out
    }

    /// Consumes the front, returning the sorted points.
    #[must_use]
    pub fn into_points(self) -> Vec<ParetoPoint<T>> {
        self.points
    }

    /// The points in latency order, split into chunks of at most `size`
    /// points — the unit of the serving layer's `front_part` streaming,
    /// which bounds per-response memory by the chunk size instead of the
    /// front size. An empty front yields no chunks.
    ///
    /// # Panics
    /// When `size` is zero.
    pub fn chunks(&self, size: usize) -> std::slice::Chunks<'_, ParetoPoint<T>> {
        assert!(size > 0, "chunk size must be positive");
        self.points.chunks(size)
    }

    /// Verifies the structural invariant (sorted, mutually non-dominated);
    /// used by property tests.
    #[must_use]
    pub fn invariant_holds(&self) -> bool {
        for w in self.points.windows(2) {
            if !(w[0].latency < w[1].latency && w[0].failure_prob > w[1].failure_prob) {
                return false;
            }
        }
        true
    }
}

impl<T> IntoIterator for ParetoFront<T> {
    type Item = ParetoPoint<T>;
    type IntoIter = std::vec::IntoIter<ParetoPoint<T>>;

    fn into_iter(self) -> Self::IntoIter {
        self.points.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_keeps_non_dominated() {
        let mut f = ParetoFront::new();
        assert!(f.insert(10.0, 0.5, "a"));
        assert!(f.insert(20.0, 0.2, "b")); // tradeoff: kept
        assert!(!f.insert(25.0, 0.3, "c")); // dominated by b
        assert!(f.insert(5.0, 0.9, "d")); // cheaper, kept
        assert_eq!(f.len(), 3);
        assert!(f.invariant_holds());
    }

    #[test]
    fn insert_evicts_dominated() {
        let mut f = ParetoFront::new();
        f.insert(10.0, 0.5, "a");
        f.insert(20.0, 0.2, "b");
        assert!(f.insert(9.0, 0.1, "killer")); // dominates both
        assert_eq!(f.len(), 1);
        assert_eq!(f.points()[0].payload, "killer");
    }

    #[test]
    fn duplicates_keep_incumbent() {
        let mut f = ParetoFront::new();
        assert!(f.insert(10.0, 0.5, "first"));
        assert!(!f.insert(10.0, 0.5, "second"));
        assert_eq!(f.points()[0].payload, "first");
    }

    #[test]
    fn equal_latency_better_fp_replaces() {
        let mut f = ParetoFront::new();
        f.insert(10.0, 0.5, "worse");
        assert!(f.insert(10.0, 0.4, "better"));
        assert_eq!(f.len(), 1);
        assert_eq!(f.points()[0].payload, "better");
    }

    #[test]
    fn threshold_queries() {
        let mut f = ParetoFront::new();
        f.insert(10.0, 0.5, "a");
        f.insert(20.0, 0.2, "b");
        f.insert(30.0, 0.05, "c");

        assert_eq!(f.min_fp_under_latency(25.0).unwrap().payload, "b");
        assert_eq!(f.min_fp_under_latency(30.0).unwrap().payload, "c");
        assert!(f.min_fp_under_latency(9.0).is_none());

        assert_eq!(f.min_latency_under_fp(0.3).unwrap().payload, "b");
        assert_eq!(f.min_latency_under_fp(0.5).unwrap().payload, "a");
        assert!(f.min_latency_under_fp(0.01).is_none());
    }

    #[test]
    fn nearest_accessors_return_the_adjacent_point() {
        let mut f = ParetoFront::new();
        f.insert(10.0, 0.5, "a");
        f.insert(20.0, 0.2, "b");
        f.insert(30.0, 0.05, "c");

        // Infeasible latency bound: the adjacent point just above it.
        assert_eq!(f.nearest_above(5.0).unwrap().payload, "a");
        assert_eq!(f.nearest_above(10.0).unwrap().payload, "b"); // strict
        assert_eq!(f.nearest_above(25.0).unwrap().payload, "c");
        assert!(f.nearest_above(30.0).is_none());
        assert!(f.nearest_above(f64::NAN).is_none());

        // Infeasible FP bound: the adjacent point just above it.
        assert_eq!(f.nearest_below(0.01).unwrap().payload, "c");
        assert_eq!(f.nearest_below(0.05).unwrap().payload, "b"); // strict
        assert_eq!(f.nearest_below(0.3).unwrap().payload, "a");
        assert!(f.nearest_below(0.5).is_none());
        assert!(f.nearest_below(f64::NAN).is_none());

        let empty = ParetoFront::<()>::new();
        assert!(empty.nearest_above(0.0).is_none());
        assert!(empty.nearest_below(0.0).is_none());
    }

    #[test]
    fn batch_reads_equal_point_reads() {
        let mut f = ParetoFront::new();
        f.insert(10.0, 0.5, "a");
        f.insert(20.0, 0.2, "b");
        f.insert(30.0, 0.05, "c");
        let lat_bounds = [5.0, 10.0, 15.0, 20.0, 29.9, 30.0, 99.0];
        let swept = f.min_fp_under_latency_batch(&lat_bounds);
        for (i, &l) in lat_bounds.iter().enumerate() {
            assert_eq!(
                swept[i].map(|p| p.payload),
                f.min_fp_under_latency(l).map(|p| p.payload),
                "latency bound {l}"
            );
        }
        let fp_bounds = [0.9, 0.5, 0.3, 0.2, 0.1, 0.05, 0.01];
        let swept = f.min_latency_under_fp_batch(&fp_bounds);
        for (i, &fp) in fp_bounds.iter().enumerate() {
            assert_eq!(
                swept[i].map(|p| p.payload),
                f.min_latency_under_fp(fp).map(|p| p.payload),
                "fp bound {fp}"
            );
        }
        assert!(f.min_fp_under_latency_batch(&[]).is_empty());
    }

    #[test]
    fn batch_reads_treat_nan_bounds_like_point_reads() {
        let mut f = ParetoFront::new();
        f.insert(5.0, 0.5, "a");
        // NaN sorts last ascending / first descending under total_cmp.
        let swept = f.min_fp_under_latency_batch(&[10.0, f64::NAN]);
        assert_eq!(swept[0].map(|p| p.payload), Some("a"));
        assert_eq!(swept[1].map(|p| p.payload), None);
        assert_eq!(f.min_fp_under_latency(f64::NAN).map(|p| p.payload), None);
        let swept = f.min_latency_under_fp_batch(&[f64::NAN, 0.9]);
        assert_eq!(swept[0].map(|p| p.payload), None);
        assert_eq!(swept[1].map(|p| p.payload), Some("a"));
        assert_eq!(f.min_latency_under_fp(f64::NAN).map(|p| p.payload), None);
    }

    #[test]
    #[should_panic(expected = "sorted ascending")]
    fn batch_read_rejects_unsorted_bounds() {
        let mut f = ParetoFront::new();
        f.insert(10.0, 0.5, ());
        let _ = f.min_fp_under_latency_batch(&[2.0, 1.0]);
    }

    #[test]
    fn chunks_cover_the_front_in_order() {
        let mut f = ParetoFront::new();
        for i in 0..7 {
            f.insert(f64::from(i), 1.0 / (1.0 + f64::from(i)), i);
        }
        let chunks: Vec<_> = f.chunks(3).collect();
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].len(), 3);
        assert_eq!(chunks[2].len(), 1);
        let reassembled: Vec<_> = chunks.concat();
        assert_eq!(reassembled.len(), f.len());
        for (a, b) in reassembled.iter().zip(f.iter()) {
            assert_eq!(a.payload, b.payload);
        }
        assert_eq!(ParetoFront::<()>::new().chunks(4).count(), 0);
    }

    #[test]
    fn merge_unions_fronts() {
        let mut a = ParetoFront::new();
        a.insert(10.0, 0.5, 1);
        a.insert(30.0, 0.1, 2);
        let mut b = ParetoFront::new();
        b.insert(20.0, 0.2, 3);
        b.insert(40.0, 0.4, 4); // dominated by 2
        a.merge(b);
        assert_eq!(a.len(), 3);
        assert!(a.invariant_holds());
    }

    #[test]
    fn dominance_relation() {
        let a = ParetoPoint {
            latency: 1.0,
            failure_prob: 0.1,
            payload: (),
        };
        let b = ParetoPoint {
            latency: 2.0,
            failure_prob: 0.1,
            payload: (),
        };
        let c = ParetoPoint {
            latency: 1.0,
            failure_prob: 0.1,
            payload: (),
        };
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert!(!a.dominates(&c)); // equal points do not dominate
    }

    #[test]
    fn randomized_front_invariant() {
        // Deterministic pseudo-random stream (LCG) to avoid a rand dep here.
        let mut state = 0x2545F491_4F6CDD1Du64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / ((1u64 << 31) as f64)
        };
        let mut f = ParetoFront::new();
        let mut all = Vec::new();
        for i in 0..500 {
            let l = next() * 100.0;
            let fp = next();
            all.push((l, fp));
            f.insert(l, fp, i);
        }
        assert!(f.invariant_holds());
        // Every offered point is dominated-or-equal by something on the front.
        for &(l, fp) in &all {
            let covered = f.iter().any(|q| q.latency <= l && q.failure_prob <= fp);
            assert!(covered, "({l}, {fp}) not covered");
        }
    }
}
