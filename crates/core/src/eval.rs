//! Incremental evaluation of interval mappings: O(touched-terms) delta
//! scoring for neighborhood moves instead of full O(n·p·k²) re-evaluation.
//!
//! Both objectives decompose per interval:
//!
//! * equation-(2) latency is `input_comm + Σ_j t_j` with
//!   `t_j = max_{u∈alloc(j)} [W_j/s_u + Σ_{v∈next(j)} δ_{e_j}/b_{u,v}]`,
//! * log-success-probability is `Σ_j ln(1 − Π_{u∈alloc(j)} fp_u)`.
//!
//! A structural move (merge, split, boundary shift, grow/shrink/swap
//! replica, migrate replica) touches at most four latency terms and two
//! log terms, so [`DeltaEval`] recomputes only those and re-runs the O(p)
//! final summation — orders of magnitude cheaper than re-evaluating a
//! materialized neighbor when `n·m` is large.
//!
//! **Exactness contract:** the per-interval terms are computed by the same
//! shared functions the full formulas use ([`crate::metrics::interval_cost`],
//! [`crate::metrics::input_comm_cost`], and the log-space survival fold), and the
//! final summations replay the exact same floating-point operation
//! sequence as [`crate::metrics::latency_eq2_breakdown`] /
//! [`crate::metrics::log_success_probability`]. Delta-evaluated scores are
//! therefore **bit-identical** to full recomputation — property-tested in
//! `rpwf-algo`'s proptest suite after every apply/revert — which is what
//! lets the heuristics adopt the fast path without changing any result.
//!
//! [`EvalContext`] additionally caches per-processor `ln fp_u` terms and
//! platform-wide bound ingredients (max speed, cheapest I/O links) reused
//! by the branch-and-bound lower bounds and the DP solvers.

use crate::mapping::{Interval, IntervalMapping};
use crate::metrics::{input_comm_cost, interval_cost};
use crate::num::{kahan_sum, LogProb};
use crate::platform::{Platform, ProcId, Vertex};
use crate::stage::Pipeline;

/// Both objective values of one mapping state, as maintained by
/// [`DeltaEval`]. Failure probability is derived from the log-space
/// success probability exactly like
/// [`metrics::failure_probability`](crate::metrics::failure_probability).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Scores {
    /// Worst-case latency (equation (2)).
    pub latency: f64,
    /// `ln Π_j (1 − Π_{u∈alloc(j)} fp_u)`.
    pub ln_success: f64,
}

impl Scores {
    /// Global failure probability `1 − e^{ln_success}`, stably.
    #[inline]
    #[must_use]
    pub fn failure_prob(self) -> f64 {
        -(self.ln_success.exp_m1())
    }
}

/// Immutable per-instance context: the pipeline's prefix sums (borrowed),
/// cached per-processor failure terms, and platform-wide bound
/// ingredients.
#[derive(Clone, Debug)]
pub struct EvalContext<'a> {
    pipeline: &'a Pipeline,
    platform: &'a Platform,
    /// `ln fp_u` per processor (log-space failure probability).
    ln_fp: Vec<f64>,
    /// Fastest speed on the platform.
    s_max: f64,
    /// `min_u δ_0/b_{in,u}` — cheapest possible input communication.
    min_input_comm: f64,
    /// `min_u δ_n/b_{u,out}` — cheapest possible output communication.
    min_output_comm: f64,
}

impl<'a> EvalContext<'a> {
    /// Builds the context (O(m)).
    #[must_use]
    pub fn new(pipeline: &'a Pipeline, platform: &'a Platform) -> Self {
        let ln_fp: Vec<f64> = platform
            .procs()
            .map(|u| LogProb::from_prob(platform.failure_prob(u)).ln())
            .collect();
        let s_max = platform
            .speeds()
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        let min_input_comm = platform
            .procs()
            .map(|u| platform.comm_time(Vertex::In, Vertex::Proc(u), pipeline.input_size()))
            .fold(f64::INFINITY, f64::min);
        let min_output_comm = platform
            .procs()
            .map(|u| platform.comm_time(Vertex::Proc(u), Vertex::Out, pipeline.output_size()))
            .fold(f64::INFINITY, f64::min);
        EvalContext {
            pipeline,
            platform,
            ln_fp,
            s_max,
            min_input_comm,
            min_output_comm,
        }
    }

    /// The pipeline.
    #[inline]
    #[must_use]
    pub fn pipeline(&self) -> &'a Pipeline {
        self.pipeline
    }

    /// The platform.
    #[inline]
    #[must_use]
    pub fn platform(&self) -> &'a Platform {
        self.platform
    }

    /// Cached `ln fp_u`.
    #[inline]
    #[must_use]
    pub fn ln_failure(&self, u: ProcId) -> f64 {
        self.ln_fp[u.index()]
    }

    /// `Σ_{k∈[start,end]} w_k` via the pipeline prefix sums, O(1).
    #[inline]
    #[must_use]
    pub fn work(&self, start: usize, end: usize) -> f64 {
        self.pipeline.work_sum(start, end)
    }

    /// Total work of stages `stage..n`, O(1); zero when `stage == n`.
    #[inline]
    #[must_use]
    pub fn suffix_work(&self, stage: usize) -> f64 {
        let n = self.pipeline.n_stages();
        if stage >= n {
            0.0
        } else {
            self.pipeline.work_sum(stage, n - 1)
        }
    }

    /// Fastest processor speed on the platform.
    #[inline]
    #[must_use]
    pub fn max_speed(&self) -> f64 {
        self.s_max
    }

    /// Cheapest `P_in → P_u` transfer of the pipeline input — a sound
    /// lower bound on any mapping's input communication.
    #[inline]
    #[must_use]
    pub fn min_input_comm(&self) -> f64 {
        self.min_input_comm
    }

    /// Cheapest `P_u → P_out` transfer of the pipeline output — a sound
    /// lower bound on any mapping's final communication.
    #[inline]
    #[must_use]
    pub fn min_output_comm(&self) -> f64 {
        self.min_output_comm
    }

    /// Log-space survival term of one interval,
    /// `ln(1 − Π_{u∈procs} fp_u)`, using the cached `ln fp_u`. Replays the
    /// exact operation sequence of
    /// [`metrics::log_success_probability`](crate::metrics::log_success_probability).
    #[must_use]
    pub fn ln_survival(&self, procs: &[ProcId]) -> f64 {
        let mut ln_all_fail = 0.0f64;
        for &u in procs {
            ln_all_fail += self.ln_fp[u.index()];
        }
        LogProb::from_ln(ln_all_fail).one_minus().ln()
    }

    /// One-pass full evaluation of a mapping — bit-identical to
    /// [`metrics::latency`](crate::metrics::latency) +
    /// [`metrics::log_success_probability`](crate::metrics::log_success_probability),
    /// but computes both objectives in a single traversal with the cached
    /// per-processor terms.
    #[must_use]
    pub fn evaluate(&self, mapping: &IntervalMapping) -> Scores {
        let p = mapping.n_intervals();
        let input = input_comm_cost(mapping.alloc(0), self.pipeline.input_size(), self.platform);
        let latency = input
            + kahan_sum((0..p).map(|j| {
                let iv = mapping.interval(j);
                let next = if j + 1 < p {
                    Some(mapping.alloc(j + 1))
                } else {
                    None
                };
                let c = interval_cost(
                    self.pipeline.interval_work(iv),
                    self.pipeline.interval_output(iv),
                    mapping.alloc(j),
                    next,
                    self.platform,
                );
                c.compute + c.out_comm
            }));
        let mut ln_success = 0.0f64;
        for j in 0..p {
            ln_success += self.ln_survival(mapping.alloc(j));
        }
        Scores {
            latency,
            ln_success,
        }
    }
}

/// A neighborhood move on an interval mapping, identified positionally
/// against the current [`DeltaEval`] state. The set mirrors the classic
/// 7-move neighborhood: boundary shifts, merge, split, replica
/// grow/shrink/swap, and replica migration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Move {
    /// Move the first stage of interval `j+1` into interval `j`
    /// (requires `j+1` to have ≥ 2 stages).
    ShiftRight {
        /// Left interval of the shifted boundary.
        j: usize,
    },
    /// Move the last stage of interval `j` into interval `j+1`
    /// (requires `j` to have ≥ 2 stages).
    ShiftLeft {
        /// Left interval of the shifted boundary.
        j: usize,
    },
    /// Merge intervals `j` and `j+1`, pooling their replica sets.
    Merge {
        /// Left interval of the merged pair.
        j: usize,
    },
    /// Split interval `j` after stage `cut`, dealing the first
    /// `⌊k/2⌋` replicas to the left half (requires ≥ 2 stages and ≥ 2
    /// replicas).
    Split {
        /// The split interval.
        j: usize,
        /// Last stage (inclusive) of the left half; `start ≤ cut < end`.
        cut: usize,
    },
    /// Add the unused processor `proc` to interval `j`'s replica set.
    Grow {
        /// Target interval.
        j: usize,
        /// A currently free processor.
        proc: ProcId,
    },
    /// Drop replica at position `r` of interval `j` (requires ≥ 2
    /// replicas).
    Shrink {
        /// Target interval.
        j: usize,
        /// Index into the sorted replica list.
        r: usize,
    },
    /// Replace replica `r` of interval `j` with the unused processor
    /// `proc`.
    Swap {
        /// Target interval.
        j: usize,
        /// Index into the sorted replica list.
        r: usize,
        /// A currently free processor.
        proc: ProcId,
    },
    /// Move replica `r` of interval `j` into interval `to` (requires
    /// interval `j` to keep ≥ 1 replica).
    Migrate {
        /// Source interval (must have ≥ 2 replicas).
        j: usize,
        /// Index into the source's sorted replica list.
        r: usize,
        /// Destination interval (`≠ j`).
        to: usize,
    },
}

/// How a move changed the length/indexing of the per-interval term
/// arrays (part of [`MoveEffect`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SlotChange {
    /// Term count unchanged, indices stable.
    #[default]
    None,
    /// A merge removed the term slot at `at` (pre-move indexing: the old
    /// slot `at` is gone, later slots shifted left).
    Removed {
        /// Removed slot index.
        at: usize,
    },
    /// A split inserted a term slot at `at` (post-move indexing: the new
    /// slot sits at `at`, later slots shifted right).
    Inserted {
        /// Inserted slot index.
        at: usize,
    },
}

/// The term-level fingerprint of one [`DeltaEval::apply`]: which latency
/// and log-survival slots the move rewrote (post-move indexing), how the
/// slot count changed, and the recomputed input-communication term when
/// the move touched interval 0. Captured on every apply
/// ([`DeltaEval::last_effect`]) and replayable later
/// ([`DeltaEval::replay`]) with **bit-identical** scores as long as the
/// intervals the move read are unchanged — the candidate-list (don't-look
/// bits) machinery in `rpwf-algo` builds on exactly this contract.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MoveEffect {
    /// Structural slot change.
    pub slot: SlotChange,
    /// Rewritten latency terms `(post-move index, value)`.
    pub cost: [(usize, f64); 4],
    /// Live prefix of [`cost`](Self::cost).
    pub n_cost: usize,
    /// Rewritten log-survival terms `(post-move index, value)`.
    pub ln: [(usize, f64); 2],
    /// Live prefix of [`ln`](Self::ln).
    pub n_ln: usize,
    /// Recomputed input communication, when the move touched interval 0.
    pub input_comm: Option<f64>,
}

/// What [`DeltaEval::revert`] must do to undo the last structural change.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
enum UndoKind {
    /// No move pending.
    #[default]
    None,
    /// Allocation lists changed in place; restore the saved one(s).
    Plain,
    /// A merge removed the allocation at `b_idx`; re-insert it.
    Merged,
    /// A split inserted an allocation after `a_idx`; remove it.
    Split,
}

/// Scratch buffers capturing the pre-move state. All vectors keep their
/// capacity across moves, so a warm [`DeltaEval`] applies and reverts
/// without heap allocation.
#[derive(Clone, Debug, Default)]
struct UndoState {
    kind: UndoKind,
    intervals: Vec<Interval>,
    cost_terms: Vec<f64>,
    ln_terms: Vec<f64>,
    free: Vec<ProcId>,
    input_comm: f64,
    latency: f64,
    ln_success: f64,
    /// First saved allocation (`usize::MAX` = unused).
    a_idx: usize,
    a: Vec<ProcId>,
    /// Second saved allocation (`usize::MAX` = unused).
    b_idx: usize,
    b: Vec<ProcId>,
}

/// Incremental evaluator: a mutable mapping state with cached
/// per-interval objective terms, supporting in-place [`apply`](Self::apply) /
/// [`revert`](Self::revert) of any [`Move`] with exact (bit-identical) scores.
///
/// Protocol: after [`apply`](Self::apply), call either
/// [`revert`](Self::revert) (restore the pre-move state) or
/// [`accept`](Self::accept) (keep the move) before applying the next
/// move.
#[derive(Clone, Debug)]
pub struct DeltaEval<'a> {
    ctx: &'a EvalContext<'a>,
    intervals: Vec<Interval>,
    alloc: Vec<Vec<ProcId>>,
    /// Unused processors, sorted by id.
    free: Vec<ProcId>,
    /// Per-interval latency terms `t_j = compute + out_comm` of the
    /// bottleneck replica.
    cost_terms: Vec<f64>,
    /// Per-interval log-survival terms.
    ln_terms: Vec<f64>,
    input_comm: f64,
    latency: f64,
    ln_success: f64,
    undo: UndoState,
    /// Recycled allocation vectors (avoids allocation on merge/split).
    spare: Vec<Vec<ProcId>>,
    /// Term-level fingerprint of the last [`apply`](Self::apply).
    last_effect: MoveEffect,
    /// Scratch buffers for [`replay`](Self::replay) (kept warm).
    replay_cost: Vec<f64>,
    replay_ln: Vec<f64>,
}

impl<'a> DeltaEval<'a> {
    /// Builds the evaluator positioned on `mapping` (full evaluation).
    #[must_use]
    pub fn new(ctx: &'a EvalContext<'a>, mapping: &IntervalMapping) -> Self {
        let mut de = DeltaEval {
            ctx,
            intervals: Vec::new(),
            alloc: Vec::new(),
            free: Vec::new(),
            cost_terms: Vec::new(),
            ln_terms: Vec::new(),
            input_comm: 0.0,
            latency: 0.0,
            ln_success: 0.0,
            undo: UndoState {
                a_idx: usize::MAX,
                b_idx: usize::MAX,
                ..UndoState::default()
            },
            spare: Vec::new(),
            last_effect: MoveEffect::default(),
            replay_cost: Vec::new(),
            replay_ln: Vec::new(),
        };
        de.reset(mapping);
        de
    }

    /// Repositions the evaluator on a new mapping, reusing buffers.
    pub fn reset(&mut self, mapping: &IntervalMapping) {
        let m = self.ctx.platform.n_procs();
        self.intervals.clear();
        self.intervals.extend_from_slice(mapping.intervals());
        // Reuse allocation vectors where possible.
        while self.alloc.len() > mapping.n_intervals() {
            let mut v = self.alloc.pop().expect("len checked");
            v.clear();
            self.spare.push(v);
        }
        while self.alloc.len() < mapping.n_intervals() {
            self.alloc.push(self.spare.pop().unwrap_or_default());
        }
        let mut used = vec![false; m];
        for (j, dst) in self.alloc.iter_mut().enumerate() {
            dst.clear();
            dst.extend_from_slice(mapping.alloc(j));
            for &u in dst.iter() {
                used[u.index()] = true;
            }
        }
        self.free.clear();
        self.free
            .extend((0..m).filter(|&i| !used[i]).map(ProcId::new));
        self.undo.kind = UndoKind::None;
        self.recompute_all();
    }

    /// Full recomputation of every cached term and both totals.
    fn recompute_all(&mut self) {
        let p = self.intervals.len();
        self.cost_terms.clear();
        self.ln_terms.clear();
        for j in 0..p {
            let t = self.cost_term(j);
            self.cost_terms.push(t);
            self.ln_terms.push(self.ctx.ln_survival(&self.alloc[j]));
        }
        self.input_comm = input_comm_cost(
            &self.alloc[0],
            self.ctx.pipeline.input_size(),
            self.ctx.platform,
        );
        self.resum();
    }

    /// The latency term of interval `j` in the current state.
    fn cost_term(&self, j: usize) -> f64 {
        let iv = self.intervals[j];
        let next = if j + 1 < self.intervals.len() {
            Some(self.alloc[j + 1].as_slice())
        } else {
            None
        };
        let c = interval_cost(
            self.ctx.pipeline.interval_work(iv),
            self.ctx.pipeline.interval_output(iv),
            &self.alloc[j],
            next,
            self.ctx.platform,
        );
        c.compute + c.out_comm
    }

    /// Recomputes the totals from the cached terms — the same operation
    /// sequence as the full formulas (Kahan over latency terms, plain
    /// left-to-right sum over log terms), so totals stay bit-identical.
    fn resum(&mut self) {
        self.latency = self.input_comm + kahan_sum(self.cost_terms.iter().copied());
        let mut ln = 0.0f64;
        for &t in &self.ln_terms {
            ln += t;
        }
        self.ln_success = ln;
    }

    /// Current scores.
    #[inline]
    #[must_use]
    pub fn scores(&self) -> Scores {
        Scores {
            latency: self.latency,
            ln_success: self.ln_success,
        }
    }

    /// Current worst-case latency.
    #[inline]
    #[must_use]
    pub fn latency(&self) -> f64 {
        self.latency
    }

    /// Current log-success probability.
    #[inline]
    #[must_use]
    pub fn ln_success(&self) -> f64 {
        self.ln_success
    }

    /// Current failure probability.
    #[inline]
    #[must_use]
    pub fn failure_prob(&self) -> f64 {
        self.scores().failure_prob()
    }

    /// Number of intervals `p`.
    #[inline]
    #[must_use]
    pub fn n_intervals(&self) -> usize {
        self.intervals.len()
    }

    /// Number of stages `n`.
    #[inline]
    #[must_use]
    pub fn n_stages(&self) -> usize {
        self.intervals.last().map_or(0, |iv| iv.end() + 1)
    }

    /// The `j`-th interval.
    #[inline]
    #[must_use]
    pub fn interval(&self, j: usize) -> Interval {
        self.intervals[j]
    }

    /// Replica set of interval `j` (sorted by id).
    #[inline]
    #[must_use]
    pub fn alloc(&self, j: usize) -> &[ProcId] {
        &self.alloc[j]
    }

    /// Unused processors, sorted by id.
    #[inline]
    #[must_use]
    pub fn free(&self) -> &[ProcId] {
        &self.free
    }

    /// Clones the current state out as a validated [`IntervalMapping`].
    #[must_use]
    pub fn mapping(&self) -> IntervalMapping {
        IntervalMapping::new(
            self.intervals.clone(),
            self.alloc.clone(),
            self.n_stages(),
            self.ctx.platform.n_procs(),
        )
        .expect("DeltaEval maintains mapping validity")
    }

    /// Applies `mv` in place and returns the new scores. Only the touched
    /// intervals' terms are recomputed; the totals are re-summed in O(p).
    ///
    /// # Panics
    /// When a previous move is still pending (neither reverted nor
    /// accepted), or when `mv` is invalid for the current state.
    pub fn apply(&mut self, mv: Move) -> Scores {
        assert!(
            self.undo.kind == UndoKind::None,
            "apply: previous move neither reverted nor accepted"
        );
        // Snapshot the cheap state wholesale (≤ p or m copies each).
        self.undo.intervals.clear();
        self.undo.intervals.extend_from_slice(&self.intervals);
        self.undo.cost_terms.clear();
        self.undo.cost_terms.extend_from_slice(&self.cost_terms);
        self.undo.ln_terms.clear();
        self.undo.ln_terms.extend_from_slice(&self.ln_terms);
        self.undo.free.clear();
        self.undo.free.extend_from_slice(&self.free);
        self.undo.input_comm = self.input_comm;
        self.undo.latency = self.latency;
        self.undo.ln_success = self.ln_success;
        self.undo.a_idx = usize::MAX;
        self.undo.b_idx = usize::MAX;

        // Dirty latency-term indices (post-mutation numbering).
        let mut dirty = [usize::MAX; 4];
        let mut n_dirty = 0usize;
        fn mark(idx: usize, dirty: &mut [usize; 4], n_dirty: &mut usize) {
            if !dirty[..*n_dirty].contains(&idx) {
                dirty[*n_dirty] = idx;
                *n_dirty += 1;
            }
        }
        // Dirty log-survival indices (post-mutation numbering) and the
        // structural slot change, recorded into `last_effect`.
        let mut ln_dirty = [usize::MAX; 2];
        let mut n_ln_dirty = 0usize;
        let mark_ln = |idx: usize, ln_dirty: &mut [usize; 2], n: &mut usize| {
            if !ln_dirty[..*n].contains(&idx) {
                ln_dirty[*n] = idx;
                *n += 1;
            }
        };
        let mut slot = SlotChange::None;
        let mut input_dirty = false;

        match mv {
            Move::ShiftRight { j } => {
                let (a, b) = (self.intervals[j], self.intervals[j + 1]);
                debug_assert!(b.len() >= 2, "shift right needs a donor stage");
                self.intervals[j] = Interval::new(a.start(), a.end() + 1).expect("grows right");
                self.intervals[j + 1] =
                    Interval::new(b.start() + 1, b.end()).expect("shrinks left");
                self.undo.kind = UndoKind::Plain;
                mark(j, &mut dirty, &mut n_dirty);
                mark(j + 1, &mut dirty, &mut n_dirty);
            }
            Move::ShiftLeft { j } => {
                let (a, b) = (self.intervals[j], self.intervals[j + 1]);
                debug_assert!(a.len() >= 2, "shift left needs a donor stage");
                self.intervals[j] = Interval::new(a.start(), a.end() - 1).expect("shrinks right");
                self.intervals[j + 1] = Interval::new(b.start() - 1, b.end()).expect("grows left");
                self.undo.kind = UndoKind::Plain;
                mark(j, &mut dirty, &mut n_dirty);
                mark(j + 1, &mut dirty, &mut n_dirty);
            }
            Move::Merge { j } => {
                self.save_alloc_a(j);
                self.save_alloc_b(j + 1);
                let (a, b) = (self.intervals[j], self.intervals[j + 1]);
                self.intervals[j] = Interval::new(a.start(), b.end()).expect("adjacent merge");
                self.intervals.remove(j + 1);
                let mut removed = self.alloc.remove(j + 1);
                self.alloc[j].extend_from_slice(&removed);
                self.alloc[j].sort_unstable();
                removed.clear();
                self.spare.push(removed);
                self.cost_terms.remove(j + 1);
                self.ln_terms.remove(j + 1);
                self.undo.kind = UndoKind::Merged;
                slot = SlotChange::Removed { at: j + 1 };
                mark(j, &mut dirty, &mut n_dirty);
                if j > 0 {
                    mark(j - 1, &mut dirty, &mut n_dirty);
                }
                mark_ln(j, &mut ln_dirty, &mut n_ln_dirty);
                input_dirty = j == 0;
            }
            Move::Split { j, cut } => {
                self.save_alloc_a(j);
                let iv = self.intervals[j];
                debug_assert!(iv.start() <= cut && cut < iv.end(), "cut inside interval");
                debug_assert!(self.alloc[j].len() >= 2, "split needs ≥ 2 replicas");
                self.intervals[j] = Interval::new(iv.start(), cut).expect("cut in range");
                self.intervals.insert(
                    j + 1,
                    Interval::new(cut + 1, iv.end()).expect("cut in range"),
                );
                let half = self.alloc[j].len() / 2;
                let mut second = self.spare.pop().unwrap_or_default();
                second.extend_from_slice(&self.alloc[j][half..]);
                self.alloc[j].truncate(half);
                self.alloc.insert(j + 1, second);
                self.cost_terms.insert(j + 1, 0.0);
                self.ln_terms.insert(j + 1, 0.0);
                self.undo.kind = UndoKind::Split;
                slot = SlotChange::Inserted { at: j + 1 };
                mark(j, &mut dirty, &mut n_dirty);
                mark(j + 1, &mut dirty, &mut n_dirty);
                if j > 0 {
                    mark(j - 1, &mut dirty, &mut n_dirty);
                }
                mark_ln(j, &mut ln_dirty, &mut n_ln_dirty);
                mark_ln(j + 1, &mut ln_dirty, &mut n_ln_dirty);
                input_dirty = j == 0;
            }
            Move::Grow { j, proc } => {
                self.save_alloc_a(j);
                self.take_free(proc);
                Self::insert_sorted(&mut self.alloc[j], proc);
                self.undo.kind = UndoKind::Plain;
                mark(j, &mut dirty, &mut n_dirty);
                if j > 0 {
                    mark(j - 1, &mut dirty, &mut n_dirty);
                }
                mark_ln(j, &mut ln_dirty, &mut n_ln_dirty);
                input_dirty = j == 0;
            }
            Move::Shrink { j, r } => {
                debug_assert!(self.alloc[j].len() >= 2, "shrink keeps ≥ 1 replica");
                self.save_alloc_a(j);
                let dropped = self.alloc[j].remove(r);
                Self::insert_sorted(&mut self.free, dropped);
                self.undo.kind = UndoKind::Plain;
                mark(j, &mut dirty, &mut n_dirty);
                if j > 0 {
                    mark(j - 1, &mut dirty, &mut n_dirty);
                }
                mark_ln(j, &mut ln_dirty, &mut n_ln_dirty);
                input_dirty = j == 0;
            }
            Move::Swap { j, r, proc } => {
                self.save_alloc_a(j);
                self.take_free(proc);
                let out = self.alloc[j].remove(r);
                Self::insert_sorted(&mut self.alloc[j], proc);
                Self::insert_sorted(&mut self.free, out);
                self.undo.kind = UndoKind::Plain;
                mark(j, &mut dirty, &mut n_dirty);
                if j > 0 {
                    mark(j - 1, &mut dirty, &mut n_dirty);
                }
                mark_ln(j, &mut ln_dirty, &mut n_ln_dirty);
                input_dirty = j == 0;
            }
            Move::Migrate { j, r, to } => {
                debug_assert!(j != to, "migrate needs distinct intervals");
                debug_assert!(self.alloc[j].len() >= 2, "migrate keeps ≥ 1 replica");
                self.save_alloc_a(j);
                self.save_alloc_b(to);
                let moved = self.alloc[j].remove(r);
                Self::insert_sorted(&mut self.alloc[to], moved);
                self.undo.kind = UndoKind::Plain;
                mark(j, &mut dirty, &mut n_dirty);
                if j > 0 {
                    mark(j - 1, &mut dirty, &mut n_dirty);
                }
                mark(to, &mut dirty, &mut n_dirty);
                if to > 0 {
                    mark(to - 1, &mut dirty, &mut n_dirty);
                }
                mark_ln(j, &mut ln_dirty, &mut n_ln_dirty);
                mark_ln(to, &mut ln_dirty, &mut n_ln_dirty);
                input_dirty = j == 0 || to == 0;
            }
        }

        for &x in &ln_dirty[..n_ln_dirty] {
            self.ln_terms[x] = self.ctx.ln_survival(&self.alloc[x]);
        }
        for &j in &dirty[..n_dirty] {
            self.cost_terms[j] = self.cost_term(j);
        }
        if input_dirty {
            self.input_comm = input_comm_cost(
                &self.alloc[0],
                self.ctx.pipeline.input_size(),
                self.ctx.platform,
            );
        }
        // Record the term-level fingerprint for later replay.
        let mut effect = MoveEffect {
            slot,
            ..MoveEffect::default()
        };
        for (k, &j) in dirty[..n_dirty].iter().enumerate() {
            effect.cost[k] = (j, self.cost_terms[j]);
        }
        effect.n_cost = n_dirty;
        for (k, &x) in ln_dirty[..n_ln_dirty].iter().enumerate() {
            effect.ln[k] = (x, self.ln_terms[x]);
        }
        effect.n_ln = n_ln_dirty;
        effect.input_comm = input_dirty.then_some(self.input_comm);
        self.last_effect = effect;
        self.resum();
        self.scores()
    }

    /// Restores the state from before the last [`apply`](Self::apply),
    /// bit-for-bit.
    ///
    /// # Panics
    /// When no move is pending.
    pub fn revert(&mut self) {
        let kind = self.undo.kind;
        assert!(kind != UndoKind::None, "revert: no move pending");
        match kind {
            UndoKind::None => unreachable!(),
            UndoKind::Plain => {
                if self.undo.a_idx != usize::MAX {
                    let j = self.undo.a_idx;
                    self.alloc[j].clear();
                    self.alloc[j].extend_from_slice(&self.undo.a);
                }
                if self.undo.b_idx != usize::MAX {
                    let j = self.undo.b_idx;
                    self.alloc[j].clear();
                    self.alloc[j].extend_from_slice(&self.undo.b);
                }
            }
            UndoKind::Merged => {
                let j = self.undo.a_idx;
                self.alloc[j].clear();
                self.alloc[j].extend_from_slice(&self.undo.a);
                let mut second = self.spare.pop().unwrap_or_default();
                second.extend_from_slice(&self.undo.b);
                self.alloc.insert(j + 1, second);
            }
            UndoKind::Split => {
                let j = self.undo.a_idx;
                self.alloc[j].clear();
                self.alloc[j].extend_from_slice(&self.undo.a);
                let mut removed = self.alloc.remove(j + 1);
                removed.clear();
                self.spare.push(removed);
            }
        }
        self.intervals.clear();
        self.intervals.extend_from_slice(&self.undo.intervals);
        self.cost_terms.clear();
        self.cost_terms.extend_from_slice(&self.undo.cost_terms);
        self.ln_terms.clear();
        self.ln_terms.extend_from_slice(&self.undo.ln_terms);
        self.free.clear();
        self.free.extend_from_slice(&self.undo.free);
        self.input_comm = self.undo.input_comm;
        self.latency = self.undo.latency;
        self.ln_success = self.undo.ln_success;
        self.undo.kind = UndoKind::None;
    }

    /// Keeps the last applied move (drops the undo state).
    ///
    /// # Panics
    /// When no move is pending.
    pub fn accept(&mut self) {
        assert!(self.undo.kind != UndoKind::None, "accept: no move pending");
        self.undo.kind = UndoKind::None;
    }

    /// The term-level fingerprint of the last [`apply`](Self::apply)
    /// (meaningless before the first apply).
    #[inline]
    #[must_use]
    pub fn last_effect(&self) -> MoveEffect {
        self.last_effect
    }

    /// Scores a move from its recorded [`MoveEffect`] **without touching
    /// state** — bit-identical to `apply(mv)` followed by `revert()`,
    /// provided every interval the move read (its targets ±1, and
    /// interval 0 when `effect.input_comm` is set) is unchanged since the
    /// effect was captured. The caller owns that validity judgement (the
    /// candidate-list layer tracks it with per-interval epochs); this
    /// method just replays the exact summation sequence `apply` would
    /// run: the same substituted term values, the same Kahan fold for
    /// latency, the same left-to-right fold for the log terms.
    #[must_use]
    pub fn replay(&mut self, effect: &MoveEffect) -> Scores {
        /// Builds the post-move term sequence into `buf`: the pre-move
        /// terms with the slot op applied, then the point substitutions
        /// (straight memcpy + point writes — no per-element branching, so
        /// a replay costs two short copies and the two final folds).
        fn build(buf: &mut Vec<f64>, pre: &[f64], subs: &[(usize, f64)], slot: SlotChange) {
            buf.clear();
            match slot {
                SlotChange::None => buf.extend_from_slice(pre),
                SlotChange::Removed { at } => {
                    buf.extend_from_slice(&pre[..at]);
                    buf.extend_from_slice(&pre[at + 1..]);
                }
                SlotChange::Inserted { at } => {
                    buf.extend_from_slice(&pre[..at]);
                    buf.push(f64::NAN); // always substituted below
                    buf.extend_from_slice(&pre[at..]);
                }
            }
            for &(i, v) in subs {
                buf[i] = v;
            }
        }
        let mut cost_buf = std::mem::take(&mut self.replay_cost);
        let mut ln_buf = std::mem::take(&mut self.replay_ln);
        build(
            &mut cost_buf,
            &self.cost_terms,
            &effect.cost[..effect.n_cost],
            effect.slot,
        );
        build(
            &mut ln_buf,
            &self.ln_terms,
            &effect.ln[..effect.n_ln],
            effect.slot,
        );
        let input = effect.input_comm.unwrap_or(self.input_comm);
        let latency = input + kahan_sum(cost_buf.iter().copied());
        let mut ln_success = 0.0f64;
        for &t in &ln_buf {
            ln_success += t;
        }
        self.replay_cost = cost_buf;
        self.replay_ln = ln_buf;
        Scores {
            latency,
            ln_success,
        }
    }

    fn save_alloc_a(&mut self, j: usize) {
        self.undo.a_idx = j;
        self.undo.a.clear();
        self.undo.a.extend_from_slice(&self.alloc[j]);
    }

    fn save_alloc_b(&mut self, j: usize) {
        self.undo.b_idx = j;
        self.undo.b.clear();
        self.undo.b.extend_from_slice(&self.alloc[j]);
    }

    /// Removes `proc` from the free list.
    fn take_free(&mut self, proc: ProcId) {
        let pos = self
            .free
            .binary_search(&proc)
            .expect("grow/swap processor must be free");
        self.free.remove(pos);
    }

    /// Sorted insertion (keeps replica lists and the free list ordered,
    /// matching the canonical order of `IntervalMapping::new`).
    fn insert_sorted(list: &mut Vec<ProcId>, proc: ProcId) {
        let pos = list.binary_search(&proc).unwrap_err();
        list.insert(pos, proc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{failure_probability, latency, log_success_probability};
    use crate::platform::PlatformBuilder;

    fn p(i: u32) -> ProcId {
        ProcId(i)
    }

    /// Figure-5-like instance: 1 slow reliable + fast unreliable procs.
    fn fig5() -> (Pipeline, Platform) {
        let pipe = Pipeline::new(vec![1.0, 100.0], vec![10.0, 1.0, 0.0]).unwrap();
        let mut speeds = vec![100.0; 6];
        speeds[0] = 1.0;
        let mut fps = vec![0.8; 6];
        fps[0] = 0.1;
        let pf = Platform::comm_homogeneous(speeds, 1.0, fps).unwrap();
        (pipe, pf)
    }

    fn het() -> (Pipeline, Platform) {
        let pipe = Pipeline::new(vec![3.0, 1.0, 4.0, 1.0], vec![5.0, 9.0, 2.0, 6.0, 5.0]).unwrap();
        let pf = PlatformBuilder::new(5)
            .speeds(vec![2.0, 1.0, 3.0, 1.5, 2.5])
            .unwrap()
            .failure_probs(vec![0.1, 0.3, 0.5, 0.2, 0.4])
            .unwrap()
            .bandwidth(Vertex::Proc(p(0)), Vertex::Proc(p(1)), 2.0)
            .bandwidth(Vertex::Proc(p(2)), Vertex::Proc(p(4)), 0.5)
            .input_bandwidth(p(0), 4.0)
            .output_bandwidth(p(1), 8.0)
            .build()
            .unwrap();
        (pipe, pf)
    }

    fn sample_mapping() -> IntervalMapping {
        IntervalMapping::new(
            vec![Interval::new(0, 1).unwrap(), Interval::new(2, 3).unwrap()],
            vec![vec![p(0), p(3)], vec![p(1), p(2), p(4)]],
            4,
            5,
        )
        .unwrap()
    }

    fn assert_state_exact(de: &DeltaEval, pipe: &Pipeline, pf: &Platform) {
        let mapping = de.mapping();
        assert_eq!(
            de.latency().to_bits(),
            latency(&mapping, pipe, pf).to_bits(),
            "latency must be bit-identical to the full formula"
        );
        assert_eq!(
            de.ln_success().to_bits(),
            log_success_probability(&mapping, pf).to_bits(),
            "ln success must be bit-identical to the full formula"
        );
        assert_eq!(
            de.failure_prob().to_bits(),
            failure_probability(&mapping, pf).to_bits()
        );
    }

    #[test]
    fn evaluate_matches_metrics_bitwise() {
        let (pipe, pf) = het();
        let ctx = EvalContext::new(&pipe, &pf);
        let m = sample_mapping();
        let s = ctx.evaluate(&m);
        assert_eq!(s.latency.to_bits(), latency(&m, &pipe, &pf).to_bits());
        assert_eq!(
            s.ln_success.to_bits(),
            log_success_probability(&m, &pf).to_bits()
        );
        assert_eq!(
            s.failure_prob().to_bits(),
            failure_probability(&m, &pf).to_bits()
        );
    }

    #[test]
    fn every_move_kind_applies_and_reverts_exactly() {
        let (pipe, pf) = het();
        let ctx = EvalContext::new(&pipe, &pf);
        let base = sample_mapping();
        let moves = [
            Move::ShiftRight { j: 0 },
            Move::ShiftLeft { j: 0 },
            Move::Merge { j: 0 },
            Move::Split { j: 1, cut: 2 },
            Move::Shrink { j: 1, r: 1 },
            Move::Migrate { j: 1, r: 0, to: 0 },
        ];
        for mv in moves {
            let mut de = DeltaEval::new(&ctx, &base);
            let before = de.scores();
            let s = de.apply(mv);
            assert_state_exact(&de, &pipe, &pf);
            assert_eq!(s, de.scores());
            de.revert();
            assert_eq!(de.scores(), before, "revert must restore scores for {mv:?}");
            assert_eq!(de.mapping(), base, "revert must restore the mapping");
            assert_state_exact(&de, &pipe, &pf);
        }
    }

    #[test]
    fn replayed_effects_are_bit_identical_to_apply() {
        let (pipe, pf) = het();
        let ctx = EvalContext::new(&pipe, &pf);
        let base = sample_mapping();
        let moves = [
            Move::ShiftRight { j: 0 },
            Move::ShiftLeft { j: 0 },
            Move::Merge { j: 0 },
            Move::Split { j: 1, cut: 2 },
            Move::Grow { j: 0, proc: p(2) },
            Move::Shrink { j: 1, r: 1 },
            Move::Swap {
                j: 1,
                r: 0,
                proc: p(2),
            },
            Move::Migrate { j: 1, r: 0, to: 0 },
        ];
        for mv in moves {
            // Grow/Swap need a free processor: use a base leaving p2 free.
            let base = if matches!(mv, Move::Grow { .. } | Move::Swap { .. }) {
                IntervalMapping::new(
                    vec![Interval::new(0, 1).unwrap(), Interval::new(2, 3).unwrap()],
                    vec![vec![p(0), p(3)], vec![p(1), p(4)]],
                    4,
                    5,
                )
                .unwrap()
            } else {
                base.clone()
            };
            let mut de = DeltaEval::new(&ctx, &base);
            let applied = de.apply(mv);
            let effect = de.last_effect();
            de.revert();
            let replayed = de.replay(&effect);
            assert_eq!(
                applied.latency.to_bits(),
                replayed.latency.to_bits(),
                "latency replay must be bit-identical for {mv:?}"
            );
            assert_eq!(
                applied.ln_success.to_bits(),
                replayed.ln_success.to_bits(),
                "ln replay must be bit-identical for {mv:?}"
            );
        }
    }

    #[test]
    fn grow_and_swap_track_the_free_list() {
        let (pipe, pf) = fig5();
        let ctx = EvalContext::new(&pipe, &pf);
        let base = IntervalMapping::new(
            vec![Interval::singleton(0), Interval::singleton(1)],
            vec![vec![p(0)], vec![p(1), p(2)]],
            2,
            6,
        )
        .unwrap();
        let mut de = DeltaEval::new(&ctx, &base);
        assert_eq!(de.free(), &[p(3), p(4), p(5)]);
        de.apply(Move::Grow { j: 1, proc: p(4) });
        assert_state_exact(&de, &pipe, &pf);
        assert_eq!(de.free(), &[p(3), p(5)]);
        de.accept();
        de.apply(Move::Swap {
            j: 1,
            r: 0,
            proc: p(3),
        });
        assert_state_exact(&de, &pipe, &pf);
        assert_eq!(de.free(), &[p(1), p(5)]);
        de.revert();
        assert_eq!(de.free(), &[p(3), p(5)]);
        assert_state_exact(&de, &pipe, &pf);
    }

    #[test]
    fn accepted_chains_stay_exact() {
        let (pipe, pf) = het();
        let ctx = EvalContext::new(&pipe, &pf);
        let mut de = DeltaEval::new(&ctx, &sample_mapping());
        for mv in [
            Move::ShiftRight { j: 0 },
            Move::Migrate { j: 1, r: 2, to: 0 },
            Move::Merge { j: 0 },
            Move::Split { j: 0, cut: 1 },
        ] {
            de.apply(mv);
            de.accept();
            assert_state_exact(&de, &pipe, &pf);
        }
    }

    #[test]
    fn reset_reuses_buffers() {
        let (pipe, pf) = fig5();
        let ctx = EvalContext::new(&pipe, &pf);
        let a = IntervalMapping::single_interval(2, vec![p(0), p(1)], 6).unwrap();
        let b = IntervalMapping::new(
            vec![Interval::singleton(0), Interval::singleton(1)],
            vec![vec![p(0)], vec![p(2), p(3), p(4)]],
            2,
            6,
        )
        .unwrap();
        let mut de = DeltaEval::new(&ctx, &a);
        assert_state_exact(&de, &pipe, &pf);
        de.reset(&b);
        assert_eq!(de.mapping(), b);
        assert_state_exact(&de, &pipe, &pf);
    }

    #[test]
    #[should_panic(expected = "previous move neither reverted nor accepted")]
    fn double_apply_panics() {
        let (pipe, pf) = het();
        let ctx = EvalContext::new(&pipe, &pf);
        let mut de = DeltaEval::new(&ctx, &sample_mapping());
        de.apply(Move::Merge { j: 0 });
        de.apply(Move::ShiftLeft { j: 0 });
    }

    #[test]
    fn context_bound_helpers() {
        let (pipe, pf) = het();
        let ctx = EvalContext::new(&pipe, &pf);
        assert_eq!(ctx.max_speed(), 3.0);
        assert_eq!(ctx.suffix_work(0), pipe.work_sum(0, 3));
        assert_eq!(ctx.suffix_work(4), 0.0);
        // min input comm: δ0 = 5, best input bandwidth is 4.0 on P0.
        assert_eq!(ctx.min_input_comm(), 5.0 / 4.0);
        // min output comm: δ4 = 5, best output bandwidth is 8.0 on P1.
        assert_eq!(ctx.min_output_comm(), 5.0 / 8.0);
        let lnf = ctx.ln_failure(p(2));
        assert_eq!(lnf, 0.5f64.ln());
    }
}
