//! **Extension** — steady-state period of a replicated interval mapping.
//!
//! The paper's conclusion (§5) names the interplay between throughput,
//! latency and reliability as future work and cites the authors' companion
//! study of latency/period trade-offs. This module implements the natural
//! period metric for the replication scheme of this paper, so that the
//! tri-criteria exploration experiment (E13 in DESIGN.md) can run:
//!
//! In steady state, one data set leaves the pipeline every `period` time
//! units. Under the one-port model without compute/communication overlap,
//! each resource must fit its per-data-set traffic into one period:
//!
//! * `P_in` serializes `k_1` copies of `δ_0` → cycle `k_1·δ_0/b`,
//! * a replica `u` of interval `j` receives its input once, computes, and —
//!   when it is the consensus survivor — serializes `k_{j+1}` copies of the
//!   interval output → worst-case cycle
//!   `δ_{d_j−1}/b + W_j/s_u + k_{j+1}·δ_{e_j}/b`,
//! * `P_out` receives once → cycle `δ_n/b`.
//!
//! The period of the mapping is the maximum cycle over all resources. This
//! is deliberately conservative (it charges every replica as if it were the
//! survivor, which is exactly the guarantee a failure-oblivious schedule
//! must honor).
//!
//! Only communication-homogeneous platforms are supported — the same
//! restriction under which the companion work states its closed forms.

use crate::error::{CoreError, Result};
use crate::mapping::IntervalMapping;
use crate::platform::Platform;
use crate::stage::Pipeline;

/// Steady-state period (inverse throughput) of a mapping.
///
/// # Errors
/// [`CoreError::NotCommHomogeneous`] when link bandwidths differ.
pub fn period(mapping: &IntervalMapping, pipeline: &Pipeline, platform: &Platform) -> Result<f64> {
    let b = platform
        .uniform_bandwidth()
        .ok_or(CoreError::NotCommHomogeneous)?;
    let p = mapping.n_intervals();

    // P_in must push k_1 copies of δ0 every period.
    let mut period = mapping.replication(0) as f64 * pipeline.input_size() / b;

    for j in 0..p {
        let iv = mapping.interval(j);
        let recv = pipeline.interval_input(iv) / b;
        let out_size = pipeline.interval_output(iv);
        let k_next = if j + 1 < p {
            mapping.replication(j + 1) as f64
        } else {
            1.0
        };
        let send = k_next * out_size / b;
        for &u in mapping.alloc(j) {
            let cycle = recv + pipeline.interval_work(iv) / platform.speed(u) + send;
            if cycle > period {
                period = cycle;
            }
        }
    }

    // P_out receives δn once per data set.
    let out_cycle = pipeline.output_size() / b;
    Ok(period.max(out_cycle))
}

/// Steady-state throughput, data sets per time unit (`1 / period`).
///
/// # Errors
/// Propagates [`period`].
pub fn throughput(
    mapping: &IntervalMapping,
    pipeline: &Pipeline,
    platform: &Platform,
) -> Result<f64> {
    Ok(1.0 / period(mapping, pipeline, platform)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_approx_eq;
    use crate::mapping::Interval;
    use crate::platform::ProcId;

    fn p(i: u32) -> ProcId {
        ProcId(i)
    }

    #[test]
    fn single_stage_single_proc() {
        let pipe = Pipeline::new(vec![6.0], vec![2.0, 4.0]).unwrap();
        let pf = Platform::fully_homogeneous(1, 2.0, 2.0, 0.0).unwrap();
        let m = IntervalMapping::single_interval(1, vec![p(0)], 1).unwrap();
        // cycle = 2/2 + 6/2 + 4/2 = 6; Pin = 1, Pout = 2.
        assert_approx_eq!(period(&m, &pipe, &pf).unwrap(), 6.0);
        assert_approx_eq!(throughput(&m, &pipe, &pf).unwrap(), 1.0 / 6.0);
    }

    #[test]
    fn replication_inflates_sender_cycles() {
        let pipe = Pipeline::new(vec![1.0, 1.0], vec![8.0, 8.0, 0.0]).unwrap();
        let pf = Platform::fully_homogeneous(4, 1.0, 1.0, 0.3).unwrap();
        // Interval 1 on P0; interval 2 replicated on P1..P3.
        let m = IntervalMapping::new(
            vec![Interval::singleton(0), Interval::singleton(1)],
            vec![vec![p(0)], vec![p(1), p(2), p(3)]],
            2,
            4,
        )
        .unwrap();
        // P0 cycle: recv 8 + w 1 + send 3·8 = 33 — dominates everything.
        assert_approx_eq!(period(&m, &pipe, &pf).unwrap(), 33.0);
    }

    #[test]
    fn pin_serialization_can_dominate() {
        let pipe = Pipeline::new(vec![0.5], vec![10.0, 0.0]).unwrap();
        let pf = Platform::fully_homogeneous(3, 10.0, 1.0, 0.2).unwrap();
        let m = IntervalMapping::single_interval(1, vec![p(0), p(1), p(2)], 3).unwrap();
        // Pin: 3·10 = 30 > any replica cycle (10 + 0.05 + 0).
        assert_approx_eq!(period(&m, &pipe, &pf).unwrap(), 30.0);
    }

    #[test]
    fn pout_floor() {
        let pipe = Pipeline::new(vec![0.0], vec![0.0, 12.0]).unwrap();
        let pf = Platform::fully_homogeneous(1, 1.0, 2.0, 0.0).unwrap();
        let m = IntervalMapping::single_interval(1, vec![p(0)], 1).unwrap();
        assert_approx_eq!(period(&m, &pipe, &pf).unwrap(), 6.0);
    }

    #[test]
    fn requires_comm_homogeneous() {
        use crate::platform::{PlatformBuilder, Vertex};
        let pipe = Pipeline::uniform(1, 1.0, 1.0).unwrap();
        let pf = PlatformBuilder::new(2)
            .bandwidth(Vertex::Proc(p(0)), Vertex::Proc(p(1)), 9.0)
            .build()
            .unwrap();
        let m = IntervalMapping::single_interval(1, vec![p(0)], 2).unwrap();
        assert_eq!(
            period(&m, &pipe, &pf).unwrap_err(),
            CoreError::NotCommHomogeneous
        );
    }

    #[test]
    fn period_never_exceeds_latency() {
        // The period charges each resource once; the latency sums the whole
        // chain, so period ≤ latency always holds on comm-homog platforms.
        let pipe = Pipeline::new(vec![3.0, 5.0, 2.0], vec![4.0, 1.0, 6.0, 2.0]).unwrap();
        let pf = Platform::comm_homogeneous(vec![1.0, 2.0, 4.0], 2.0, vec![0.1, 0.2, 0.3]).unwrap();
        let m = IntervalMapping::new(
            vec![Interval::new(0, 1).unwrap(), Interval::new(2, 2).unwrap()],
            vec![vec![p(0), p(1)], vec![p(2)]],
            3,
            3,
        )
        .unwrap();
        let per = period(&m, &pipe, &pf).unwrap();
        let lat = crate::metrics::latency(&m, &pipe, &pf);
        assert!(per <= lat + 1e-12, "period {per} > latency {lat}");
    }
}
