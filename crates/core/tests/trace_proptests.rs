//! Property-based tests of the trace wire format:
//!
//! * a [`SpanTree`] round-trips through the JSON-lines wire format
//!   **byte-identically** (serialize → parse → re-serialize is the
//!   identity on bytes — the flat encoding preserves span order, parent
//!   indices, and attribute order),
//! * grafting preserves every span and keeps parent indices in range.

use proptest::prelude::*;
use rpwf_core::trace::{Span, SpanTree, TraceId};

/// Span names drawn by index (the vendored proptest has no string
/// strategies).
const NAMES: [&str; 8] = [
    "request",
    "decode",
    "route",
    "peer.forward",
    "engine.plan",
    "solver.bitmask-dp",
    "cache.lookup",
    "cache.write",
];
const KEYS: [&str; 4] = ["hit", "complete", "owner", "kind"];
const VALS: [&str; 4] = ["true", "false", "node-b:7001", "front"];

/// A structurally valid random span tree: span 0 is the root, every
/// later span's parent points at an earlier span.
fn span_tree() -> impl Strategy<Value = SpanTree> {
    let raw_span = (
        0usize..NAMES.len(),
        0u64..10_000_000,
        0u64..10_000_000,
        proptest::collection::vec((0usize..KEYS.len(), 0usize..VALS.len()), 0..4),
        0u32..u32::MAX,
    );
    (0u64..=u64::MAX, proptest::collection::vec(raw_span, 1..20)).prop_map(|(id, raw)| SpanTree {
        id: TraceId(id),
        spans: raw
            .into_iter()
            .enumerate()
            .map(
                |(i, (name, start_us, elapsed_us, attrs, parent_pick))| Span {
                    name: NAMES[name].to_owned(),
                    start_us,
                    elapsed_us,
                    parent: (i > 0).then(|| parent_pick % i as u32),
                    attrs: attrs
                        .into_iter()
                        .map(|(k, v)| (KEYS[k].to_owned(), VALS[v].to_owned()))
                        .collect(),
                },
            )
            .collect(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn span_tree_roundtrips_byte_identically(tree in span_tree()) {
        let wire = serde_json::to_string(&tree).expect("serializes");
        let parsed: SpanTree = serde_json::from_str(&wire).expect("parses");
        prop_assert_eq!(&parsed, &tree, "value-level roundtrip");
        let rewire = serde_json::to_string(&parsed).expect("re-serializes");
        prop_assert_eq!(rewire, wire, "byte-identical re-serialization");
    }

    #[test]
    fn graft_preserves_spans_and_keeps_parents_in_range(
        entry in span_tree(),
        owner in span_tree(),
        parent_pick in 0u32..u32::MAX,
    ) {
        let parent = parent_pick % entry.spans.len() as u32;
        let mut merged = entry.clone();
        merged.graft(owner.clone(), parent);

        prop_assert_eq!(merged.spans.len(), entry.spans.len() + owner.spans.len());
        // The entry prefix is untouched.
        prop_assert_eq!(&merged.spans[..entry.spans.len()], &entry.spans[..]);
        // Every grafted span's parent resolves inside the merged tree:
        // owner roots hang under `parent`, children keep their shape.
        for (i, span) in merged.spans[entry.spans.len()..].iter().enumerate() {
            let p = span.parent.expect("grafted spans are never roots");
            prop_assert!((p as usize) < merged.spans.len());
            match owner.spans[i].parent {
                None => prop_assert_eq!(p, parent),
                Some(op) => {
                    prop_assert_eq!(p as usize, op as usize + entry.spans.len());
                }
            }
        }
        // And the merged tree still round-trips byte-identically.
        let wire = serde_json::to_string(&merged).expect("serializes");
        let parsed: SpanTree = serde_json::from_str(&wire).expect("parses");
        prop_assert_eq!(serde_json::to_string(&parsed).expect("re-serializes"), wire);
    }
}
