//! Property tests of the consistent-hash ring's stability contract: a
//! membership change only remaps keys to the joining node or away from
//! the leaving node — everything else keeps its owner. This is what keeps
//! a warm fleet cache mostly valid across topology changes.

use proptest::prelude::*;
use rpwf_core::ring::HashRing;

/// A fleet-sized node set with `host:port`-shaped names.
fn nodes(count: usize) -> Vec<String> {
    (0..count).map(|i| format!("10.0.0.{i}:7077")).collect()
}

/// Pseudo-random keys derived from a seed (structured on purpose — the
/// ring re-hashes keys, so even adversarially regular key spaces must
/// spread).
fn keys(seed: u64, count: usize) -> Vec<u128> {
    let mut state = seed | 1;
    (0..count)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (u128::from(state) << 64) | u128::from(state.rotate_left(17))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Join stability: after a node joins, every key either keeps its
    /// owner or moves to the joiner, and the joiner takes a non-trivial
    /// share on a small ring.
    #[test]
    fn join_moves_keys_only_to_the_joiner(
        seed in 0u64..10_000,
        n in 2usize..8,
        vnodes in 1usize..96,
    ) {
        let before = HashRing::new(nodes(n), vnodes);
        let mut after = before.clone();
        after.add_node("joiner:1");
        for key in keys(seed, 256) {
            let old = before.owner(key).expect("non-empty");
            let new = after.owner(key).expect("non-empty");
            prop_assert!(
                new == old || new == "joiner:1",
                "key {key:x}: {old} -> {new} moved to a non-joiner"
            );
        }
    }

    /// Leave stability: after a node leaves, exactly the leaver's keys
    /// are remapped; every other key keeps its owner.
    #[test]
    fn leave_moves_only_the_leavers_keys(
        seed in 0u64..10_000,
        n in 2usize..8,
        vnodes in 1usize..96,
        leaver in 0usize..8,
    ) {
        let names = nodes(n);
        let leaver = names[leaver % n].clone();
        let before = HashRing::new(names, vnodes);
        let mut after = before.clone();
        after.remove_node(&leaver);
        for key in keys(seed, 256) {
            let old = before.owner(key).expect("non-empty");
            let new = after.owner(key).expect("non-empty ring after leave");
            if old == leaver {
                prop_assert!(new != leaver);
            } else {
                prop_assert_eq!(old, new, "non-leaver key {}", key);
            }
        }
    }

    /// Successor-list basics: `owners(key, r)` lists distinct physical
    /// nodes, primary first, and saturates at the member count.
    #[test]
    fn owners_are_distinct_and_primary_first(
        seed in 0u64..10_000,
        n in 1usize..8,
        vnodes in 1usize..96,
        r in 1usize..5,
    ) {
        let ring = HashRing::new(nodes(n), vnodes);
        for key in keys(seed, 128) {
            let owners = ring.owners(key, r);
            prop_assert_eq!(owners.len(), r.min(n));
            prop_assert_eq!(Some(owners[0]), ring.owner(key));
            let mut dedup = owners.clone();
            dedup.sort_unstable();
            dedup.dedup();
            prop_assert_eq!(dedup.len(), owners.len(), "owners must be distinct");
        }
    }

    /// Join stability of the replica set: adding a node may only *splice
    /// the joiner into* a key's successor list — filtering the joiner
    /// back out leaves a prefix of the old list. No surviving node moves
    /// position relative to another, so replicated placement disturbs as
    /// little as single ownership does.
    #[test]
    fn join_only_splices_the_joiner_into_successor_lists(
        seed in 0u64..10_000,
        n in 2usize..8,
        vnodes in 1usize..64,
        r in 2usize..4,
    ) {
        let before = HashRing::new(nodes(n), vnodes);
        let mut after = before.clone();
        after.add_node("joiner:1");
        for key in keys(seed, 128) {
            let old = before.owners(key, r);
            let new: Vec<&str> = after
                .owners(key, r)
                .into_iter()
                .filter(|node| *node != "joiner:1")
                .collect();
            prop_assert!(
                old.starts_with(&new),
                "key {:x}: {:?} is not a prefix of {:?}", key, new, old
            );
        }
    }

    /// Leave stability of the replica set: removing a node may only
    /// *drop the leaver from* a key's successor list (pulling the next
    /// successor in at the tail) — filtering the leaver out of the old
    /// list leaves a prefix of the new one. In particular, a key whose
    /// primary leaves is inherited by its old secondary: the node its
    /// replicated data already lives on.
    #[test]
    fn leave_only_drops_the_leaver_from_successor_lists(
        seed in 0u64..10_000,
        n in 3usize..8,
        vnodes in 1usize..64,
        r in 2usize..4,
        leaver in 0usize..8,
    ) {
        let names = nodes(n);
        let leaver = names[leaver % n].clone();
        let before = HashRing::new(names, vnodes);
        let mut after = before.clone();
        after.remove_node(&leaver);
        for key in keys(seed, 128) {
            let old: Vec<&str> = before
                .owners(key, r)
                .into_iter()
                .filter(|node| *node != leaver)
                .collect();
            let new = after.owners(key, r);
            prop_assert!(
                new.starts_with(&old),
                "key {:x}: {:?} is not a prefix of {:?}", key, old, new
            );
            if before.owner(key) == Some(leaver.as_str()) {
                prop_assert_eq!(
                    after.owner(key),
                    Some(before.owners(key, 2)[1]),
                    "the old secondary inherits the leaver's keys"
                );
            }
        }
    }

    /// Ownership is a pure function of the member set: join order,
    /// duplicates and an add/remove detour never change it.
    #[test]
    fn ownership_is_membership_pure(seed in 0u64..10_000, n in 1usize..6) {
        let names = nodes(n);
        let ring = HashRing::new(names.clone(), 32);
        let mut detoured = HashRing::new(names.iter().rev().cloned(), 32);
        detoured.add_node("transient:9");
        detoured.remove_node("transient:9");
        for key in keys(seed, 128) {
            prop_assert_eq!(ring.owner(key), detoured.owner(key));
        }
    }
}
