//! Property-based tests on the core model invariants.
//!
//! Strategies generate coherent (pipeline, platform, mapping) triples and
//! check the structural facts every solver in the workspace relies on:
//! formula agreement (eq. 1 vs eq. 2), monotonicity of replication, the
//! merge direction of Lemma 1's proof, and Pareto-front consistency.

use proptest::prelude::*;
use rpwf_core::num::approx_eq;
use rpwf_core::prelude::*;

const REL_TOL: f64 = 1e-9;

/// Strategy: a pipeline with `n` stages, works in [0, 100], deltas in [0, 100].
fn pipeline_strategy(n: usize) -> impl Strategy<Value = Pipeline> {
    (
        proptest::collection::vec(0.0f64..100.0, n),
        proptest::collection::vec(0.0f64..100.0, n + 1),
    )
        .prop_map(|(works, deltas)| Pipeline::new(works, deltas).expect("valid by construction"))
}

/// Strategy: a communication-homogeneous platform with `m` processors.
fn comm_homog_platform_strategy(m: usize) -> impl Strategy<Value = Platform> {
    (
        proptest::collection::vec(0.1f64..50.0, m),
        0.1f64..20.0,
        proptest::collection::vec(0.0f64..=1.0, m),
    )
        .prop_map(|(speeds, b, fps)| {
            Platform::comm_homogeneous(speeds, b, fps).expect("valid by construction")
        })
}

/// Strategy: a fully heterogeneous platform with `m` processors.
fn fully_het_platform_strategy(m: usize) -> impl Strategy<Value = Platform> {
    let n = m + 2;
    (
        proptest::collection::vec(0.1f64..50.0, m),
        proptest::collection::vec(0.0f64..=1.0, m),
        proptest::collection::vec(0.1f64..20.0, n * n),
    )
        .prop_map(move |(speeds, fps, bws)| {
            let mut builder = PlatformBuilder::new(m)
                .speeds(speeds)
                .expect("len matches")
                .failure_probs(fps)
                .expect("len matches");
            let verts: Vec<Vertex> = (0..m)
                .map(|i| Vertex::Proc(ProcId::new(i)))
                .chain([Vertex::In, Vertex::Out])
                .collect();
            for (i, &a) in verts.iter().enumerate() {
                for (j, &b) in verts.iter().enumerate() {
                    if i < j {
                        builder = builder.bandwidth(a, b, bws[i * n + j]);
                    }
                }
            }
            builder.build().expect("valid by construction")
        })
}

/// Strategy: a valid interval mapping for `n` stages on `m` processors.
/// Draws a boundary mask and a permutation prefix to allocate disjoint
/// replica sets.
fn mapping_strategy(n: usize, m: usize) -> impl Strategy<Value = IntervalMapping> {
    (
        0u64..(1u64 << (n - 1).min(20)),
        proptest::collection::vec(0usize..1000, m),
        1usize..=m,
    )
        .prop_map(move |(mask, perm_keys, used)| {
            // Intervals from mask.
            let mut intervals = Vec::new();
            let mut start = 0usize;
            for i in 0..n - 1 {
                if mask & (1 << i) != 0 {
                    intervals.push(Interval::new(start, i).unwrap());
                    start = i + 1;
                }
            }
            intervals.push(Interval::new(start, n - 1).unwrap());
            // At most m intervals can receive disjoint non-empty allocations:
            // merge surplus tail intervals into the last kept one.
            if intervals.len() > m {
                let last_end = intervals.last().unwrap().end();
                intervals.truncate(m);
                let tail_start = intervals.pop().unwrap().start();
                intervals.push(Interval::new(tail_start, last_end).unwrap());
            }
            let p = intervals.len();

            // Random processor order.
            let mut procs: Vec<usize> = (0..m).collect();
            procs.sort_by_key(|&i| (perm_keys[i], i));
            let used = used.max(p).min(m);

            // Deal `used` processors into p non-empty groups round-robin.
            let mut alloc: Vec<Vec<ProcId>> = vec![Vec::new(); p];
            for (idx, &proc) in procs[..used].iter().enumerate() {
                alloc[idx % p].push(ProcId::new(proc));
            }
            IntervalMapping::new(intervals, alloc, n, m).expect("valid by construction")
        })
}

/// Bundle strategy: coherent sizes for (pipeline, platform, mapping).
fn scene_comm_homog() -> impl Strategy<Value = (Pipeline, Platform, IntervalMapping)> {
    (2usize..7, 2usize..7).prop_flat_map(|(n, m)| {
        (
            pipeline_strategy(n),
            comm_homog_platform_strategy(m),
            mapping_strategy(n, m),
        )
    })
}

fn scene_fully_het() -> impl Strategy<Value = (Pipeline, Platform, IntervalMapping)> {
    (2usize..6, 2usize..6).prop_flat_map(|(n, m)| {
        (
            pipeline_strategy(n),
            fully_het_platform_strategy(m),
            mapping_strategy(n, m),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn eq1_equals_eq2_on_comm_homog((pipe, pf, mapping) in scene_comm_homog()) {
        let e1 = latency_eq1(&mapping, &pipe, &pf).unwrap();
        let e2 = latency_eq2(&mapping, &pipe, &pf);
        prop_assert!(approx_eq(e1, e2, REL_TOL), "eq1 {e1} != eq2 {e2}");
    }

    #[test]
    fn failure_probability_is_a_probability((_, pf, mapping) in scene_fully_het()) {
        let fp = failure_probability(&mapping, &pf);
        prop_assert!((0.0..=1.0).contains(&fp), "fp = {fp}");
        let rel = reliability(&mapping, &pf);
        prop_assert!(approx_eq(fp + rel, 1.0, 1e-9), "fp {fp} + rel {rel} != 1");
    }

    #[test]
    fn latency_is_positive_and_finite((pipe, pf, mapping) in scene_fully_het()) {
        let l = latency(&mapping, &pipe, &pf);
        prop_assert!(l.is_finite());
        prop_assert!(l >= 0.0);
    }

    #[test]
    fn adding_a_replica_never_increases_fp((_, pf, mapping) in scene_comm_homog()) {
        // Find a free processor; add it to interval 0's allocation.
        let used = mapping.used_processors();
        let free = pf.procs().find(|pid| !used.contains(pid));
        if let Some(extra) = free {
            let mut alloc: Vec<Vec<ProcId>> =
                (0..mapping.n_intervals()).map(|j| mapping.alloc(j).to_vec()).collect();
            alloc[0].push(extra);
            let bigger = IntervalMapping::new(
                mapping.intervals().to_vec(),
                alloc,
                mapping.n_stages(),
                pf.n_procs(),
            )
            .unwrap();
            let fp_before = failure_probability(&mapping, &pf);
            let fp_after = failure_probability(&bigger, &pf);
            prop_assert!(
                fp_after <= fp_before + 1e-12,
                "adding a replica increased FP: {fp_before} -> {fp_after}"
            );
        }
    }

    #[test]
    fn merging_adjacent_intervals_never_increases_fp((_, pf, mapping) in scene_comm_homog()) {
        // Lemma 1's proof direction: merging two adjacent intervals and
        // pooling their replicas only improves reliability.
        if mapping.n_intervals() >= 2 {
            let iv0 = mapping.interval(0);
            let iv1 = mapping.interval(1);
            let merged_iv = Interval::new(iv0.start(), iv1.end()).unwrap();
            let mut intervals = vec![merged_iv];
            intervals.extend(mapping.intervals()[2..].iter().copied());
            let mut alloc = vec![[mapping.alloc(0), mapping.alloc(1)].concat()];
            alloc.extend((2..mapping.n_intervals()).map(|j| mapping.alloc(j).to_vec()));
            let merged = IntervalMapping::new(
                intervals,
                alloc,
                mapping.n_stages(),
                pf.n_procs(),
            ).unwrap();
            let fp_split = failure_probability(&mapping, &pf);
            let fp_merged = failure_probability(&merged, &pf);
            prop_assert!(
                fp_merged <= fp_split + 1e-12,
                "merge increased FP: {fp_split} -> {fp_merged}"
            );
        }
    }

    #[test]
    fn log_space_matches_linear_space((_, pf, mapping) in scene_comm_homog()) {
        // Linear-space recomputation of FP for cross-checking the log-space
        // implementation.
        let mut success = 1.0f64;
        for (_, procs) in mapping.iter() {
            let all_fail: f64 = procs.iter().map(|&u| pf.failure_prob(u)).product();
            success *= 1.0 - all_fail;
        }
        let fp = failure_probability(&mapping, &pf);
        prop_assert!(approx_eq(fp, 1.0 - success, 1e-9), "{fp} vs {}", 1.0 - success);
    }

    #[test]
    fn breakdown_total_consistent((pipe, pf, mapping) in scene_fully_het()) {
        let bd = latency_eq2_breakdown(&mapping, &pipe, &pf);
        let recomputed: f64 = bd.input_comm
            + bd.interval_costs.iter().map(|c| c.compute + c.out_comm).sum::<f64>();
        prop_assert!(approx_eq(bd.total, recomputed, 1e-9));
        prop_assert!(approx_eq(bd.total, latency(&mapping, &pipe, &pf), REL_TOL));
    }

    #[test]
    fn general_mapping_agrees_with_interval_form(
        (pipe, pf, _) in scene_fully_het(),
        seed in 0u64..1_000_000,
    ) {
        // Build an interval-based general mapping (distinct processor per
        // run) and compare both latency evaluators.
        let n = pipe.n_stages();
        let m = pf.n_procs();
        if m >= n {
            // stage k -> processor (seed + k) % m, forced distinct by stride 1.
            let procs: Vec<ProcId> =
                (0..n).map(|k| ProcId::new((seed as usize + k) % m)).collect();
            let distinct = procs.iter().collect::<std::collections::HashSet<_>>().len() == n;
            if distinct {
                let g = GeneralMapping::new(procs, m).unwrap();
                if g.is_interval_based(m) {
                    let im = g.to_interval_mapping(m).unwrap();
                    let lg = general_latency(&g, &pipe, &pf);
                    let li = latency(&im, &pipe, &pf);
                    prop_assert!(approx_eq(lg, li, REL_TOL), "{lg} vs {li}");
                }
            }
        }
    }

    #[test]
    fn pareto_front_stays_consistent(
        points in proptest::collection::vec((0.0f64..100.0, 0.0f64..1.0), 1..200)
    ) {
        let mut front = ParetoFront::new();
        for (i, &(l, fp)) in points.iter().enumerate() {
            front.insert(l, fp, i);
        }
        prop_assert!(front.invariant_holds());
        for &(l, fp) in &points {
            let covered = front.iter().any(|q| q.latency <= l && q.failure_prob <= fp);
            prop_assert!(covered);
        }
        // Threshold queries agree with a linear scan.
        let threshold = points[0].0;
        let best = front.min_fp_under_latency(threshold).map(|p| p.failure_prob);
        let scan = front
            .iter()
            .filter(|q| q.latency <= threshold)
            .map(|q| q.failure_prob)
            .fold(None::<f64>, |acc, v| Some(acc.map_or(v, |a| a.min(v))));
        prop_assert_eq!(best, scan);
    }

    #[test]
    fn nearest_accessors_agree_with_linear_scans(
        points in proptest::collection::vec((0.0f64..100.0, 0.0f64..1.0), 0..200),
        l_bound in -10.0f64..120.0,
        fp_bound in -0.2f64..1.2,
    ) {
        let mut front = ParetoFront::new();
        for (i, &(l, fp)) in points.iter().enumerate() {
            front.insert(l, fp, i);
        }
        // nearest_above: smallest latency strictly greater than the bound.
        let scan = front
            .iter()
            .filter(|q| q.latency > l_bound)
            .map(|q| q.latency)
            .fold(None::<f64>, |acc, v| Some(acc.map_or(v, |a| a.min(v))));
        prop_assert_eq!(front.nearest_above(l_bound).map(|p| p.latency), scan);
        // nearest_below: smallest failure probability strictly greater
        // than the bound.
        let scan = front
            .iter()
            .filter(|q| q.failure_prob > fp_bound)
            .map(|q| q.failure_prob)
            .fold(None::<f64>, |acc, v| Some(acc.map_or(v, |a| a.min(v))));
        prop_assert_eq!(front.nearest_below(fp_bound).map(|p| p.failure_prob), scan);
    }

    #[test]
    fn pareto_merge_is_order_insensitive(
        points in proptest::collection::vec((0.0f64..100.0, 0.0f64..1.0), 2..120),
        cut_seed in 0usize..1000,
    ) {
        // The same point set, split into chunks and merged in different
        // orders, must produce the same front *coordinates* (payloads may
        // differ on exact duplicates — "duplicates keep the incumbent").
        let cut = 1 + cut_seed % (points.len() - 1);
        let build = |chunk: &[(f64, f64)]| {
            let mut f = ParetoFront::new();
            for &(l, fp) in chunk {
                f.insert(l, fp, ());
            }
            f
        };
        let coords = |f: &ParetoFront<()>| -> Vec<(f64, f64)> {
            f.iter().map(|p| (p.latency, p.failure_prob)).collect()
        };

        let mut ab = build(&points[..cut]);
        ab.merge(build(&points[cut..]));
        let mut ba = build(&points[cut..]);
        ba.merge(build(&points[..cut]));
        let whole = build(&points);

        prop_assert!(ab.invariant_holds());
        prop_assert_eq!(coords(&ab), coords(&ba));
        prop_assert_eq!(coords(&ab), coords(&whole));

        // Merging point-by-point in reverse insertion order too.
        let mut rev = ParetoFront::new();
        for &(l, fp) in points.iter().rev() {
            rev.insert(l, fp, ());
        }
        prop_assert_eq!(coords(&rev), coords(&whole));
    }

    #[test]
    fn interval_partitions_are_valid(n in 1usize..10) {
        let mut count = 0u64;
        for part in IntervalPartitions::new(n) {
            count += 1;
            let mut expected = 0usize;
            for iv in &part {
                prop_assert_eq!(iv.start(), expected);
                expected = iv.end() + 1;
            }
            prop_assert_eq!(expected, n);
        }
        prop_assert_eq!(u128::from(count), count_partitions(n));
    }

    #[test]
    fn period_lower_bounds_latency((pipe, pf, mapping) in scene_comm_homog()) {
        let per = period(&mapping, &pipe, &pf).unwrap();
        let lat = latency(&mapping, &pipe, &pf);
        prop_assert!(per <= lat + 1e-9, "period {per} > latency {lat}");
    }
}
