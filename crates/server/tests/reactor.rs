//! Reactor transport robustness: requests arriving a few bytes at a
//! time, slow-loris drip feeds, mid-line disconnects, cancellation on
//! disconnect, overload shedding, and the serving-plane counters — all
//! over real TCP sockets against [`rpwf_server::Server`].

use rpwf_core::{FailureClass, PlatformClass};
use rpwf_server::protocol::{Command, Request, Response, StatsResult};
use rpwf_server::{Server, ServiceConfig, ServingOptions};
use serde::Deserialize;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn request_line(id: u64, deadline_ms: Option<u64>, cmd: Command) -> String {
    serde_json::to_string(&Request {
        id: Some(id),
        deadline_ms,
        no_cache: None,
        hop: None,
        trace: None,
        trace_ctx: None,
        explain: None,
        cmd,
    })
    .expect("serializes")
}

fn read_response(reader: &mut BufReader<TcpStream>) -> Response {
    let mut line = String::new();
    reader.read_line(&mut line).expect("read");
    serde_json::from_str(line.trim()).expect("parses")
}

/// A solve on an instance far past the exact solvers' practical size —
/// only a deadline (or cancellation) ends it.
fn heavy_pareto_line(id: u64, deadline_ms: Option<u64>) -> String {
    let inst = rpwf_gen::make_instance(
        PlatformClass::CommHomogeneous,
        FailureClass::Heterogeneous,
        18,
        14,
        id,
    );
    request_line(
        id,
        deadline_ms,
        Command::Pareto {
            pipeline: inst.pipeline,
            platform: inst.platform,
            chunk: None,
        },
    )
}

fn stats_over(stream: &TcpStream, reader: &mut BufReader<TcpStream>) -> StatsResult {
    let mut w = stream.try_clone().expect("clone");
    writeln!(w, "{}", request_line(9_999, None, Command::Stats)).expect("send");
    let resp = read_response(reader);
    assert_eq!(resp.status, "ok");
    StatsResult::from_value(&resp.result.expect("result")).expect("shape")
}

#[test]
fn partial_line_writes_assemble_into_one_request() {
    let mut server = Server::bind(
        "127.0.0.1:0",
        ServiceConfig {
            workers: 2,
            ..Default::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();

    // The whole request dribbles in 3-byte chunks across many poll
    // iterations; the reactor must buffer until the newline.
    let mut stream = TcpStream::connect(addr).expect("connect");
    let line = format!("{}\n", request_line(7, None, Command::Ping));
    for chunk in line.as_bytes().chunks(3) {
        stream.write_all(chunk).expect("write");
        stream.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(1));
    }
    let mut reader = BufReader::new(stream);
    let resp = read_response(&mut reader);
    assert_eq!(resp.status, "ok");
    assert_eq!(resp.id, Some(7));
    server.shutdown();
}

#[test]
fn slow_loris_drip_does_not_stall_fast_clients() {
    // ONE event thread: the drip connection and the fast client share
    // the same poll loop, so any blocking read on the drip would freeze
    // the fast client.
    let mut server = Server::bind_tuned(
        "127.0.0.1:0",
        ServiceConfig {
            workers: 2,
            ..Default::default()
        },
        ServingOptions {
            event_threads: 1,
            ..Default::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();

    let drip = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let line = format!("{}\n", request_line(500, None, Command::Ping));
        for byte in line.as_bytes() {
            stream.write_all(std::slice::from_ref(byte)).expect("write");
            stream.flush().expect("flush");
            std::thread::sleep(Duration::from_millis(5));
        }
        let mut reader = BufReader::new(stream);
        read_response(&mut reader)
    });

    // While the drip crawls, a fast client must see sub-second pings.
    let fast = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(fast.try_clone().expect("clone"));
    let mut w = fast;
    let started = Instant::now();
    for id in 0..16 {
        writeln!(w, "{}", request_line(id, None, Command::Ping)).expect("send");
        let resp = read_response(&mut reader);
        assert_eq!(resp.status, "ok");
        assert_eq!(resp.id, Some(id));
    }
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "fast client stalled behind a slow-loris connection: {:?}",
        started.elapsed()
    );

    // The drip connection itself is eventually answered, not severed.
    let resp = drip.join().expect("drip thread");
    assert_eq!(resp.status, "ok");
    assert_eq!(resp.id, Some(500));
    server.shutdown();
}

#[test]
fn mid_line_disconnect_leaves_server_healthy() {
    let mut server = Server::bind(
        "127.0.0.1:0",
        ServiceConfig {
            workers: 2,
            ..Default::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();

    // Several clients die mid-line — half a request, no newline.
    for _ in 0..5 {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"{\"id\":1,\"cmd\":{\"c\":\"pi")
            .expect("write");
        stream.flush().expect("flush");
        drop(stream);
    }

    // The truncated fragments must not be parsed, answered, or allowed
    // to wedge an event thread: a fresh client still gets served.
    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut w = stream;
    writeln!(w, "{}", request_line(42, None, Command::Ping)).expect("send");
    let resp = read_response(&mut reader);
    assert_eq!(resp.status, "ok");
    assert_eq!(resp.id, Some(42));
    server.shutdown();
}

#[test]
fn disconnect_cancels_in_flight_solve() {
    // ONE worker: if the abandoned solve kept running to its deadline,
    // the follow-up ping would queue behind it for ~20 s. The
    // connection's CancelHandle must fire on disconnect and unwind the
    // solve at its next budget poll instead.
    let mut server = Server::bind(
        "127.0.0.1:0",
        ServiceConfig {
            workers: 1,
            ..Default::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();

    let mut doomed = TcpStream::connect(addr).expect("connect");
    writeln!(doomed, "{}", heavy_pareto_line(1, Some(20_000))).expect("send");
    doomed.flush().expect("flush");
    // Let the worker pick the solve up, then abandon it.
    std::thread::sleep(Duration::from_millis(300));
    drop(doomed);

    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut w = stream;
    let started = Instant::now();
    writeln!(w, "{}", request_line(2, None, Command::Ping)).expect("send");
    let resp = read_response(&mut reader);
    assert_eq!(resp.status, "ok");
    assert!(
        started.elapsed() < Duration::from_secs(8),
        "ping waited {:?} — the abandoned solve was not cancelled",
        started.elapsed()
    );
    server.shutdown();
}

#[test]
fn overload_sheds_fast_with_retry_hint() {
    // One worker, a one-slot queue: the first two heavy solves occupy
    // both, everything after must be shed immediately.
    let mut server = Server::bind_tuned(
        "127.0.0.1:0",
        ServiceConfig {
            workers: 1,
            ..Default::default()
        },
        ServingOptions {
            max_queue: 1,
            ..Default::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();

    let blocker = TcpStream::connect(addr).expect("connect");
    let mut blocker_reader = BufReader::new(blocker.try_clone().expect("clone"));
    let mut bw = blocker.try_clone().expect("clone");
    writeln!(bw, "{}", heavy_pareto_line(1, Some(2_000))).expect("send");
    bw.flush().expect("flush");
    // Let the worker dequeue the first solve before the second arrives,
    // so the second occupies the queue slot instead of being shed.
    std::thread::sleep(Duration::from_millis(200));
    writeln!(bw, "{}", heavy_pareto_line(2, Some(2_000))).expect("send");
    bw.flush().expect("flush");
    std::thread::sleep(Duration::from_millis(200));

    // Burst: every one of these must be rejected fast with a structured
    // hint, not queued into a late timeout.
    let burst = TcpStream::connect(addr).expect("connect");
    let mut burst_reader = BufReader::new(burst.try_clone().expect("clone"));
    let mut sw = burst.try_clone().expect("clone");
    let mut shed = 0;
    for id in 10..30 {
        let started = Instant::now();
        writeln!(sw, "{}", heavy_pareto_line(id, Some(2_000))).expect("send");
        let resp = read_response(&mut burst_reader);
        assert_eq!(resp.status, "error");
        let err = resp.error.expect("error payload");
        assert_eq!(err.kind, "overloaded");
        let hint = err.retry_after_ms.expect("retry hint");
        assert!(hint > 0, "retry_after_ms must be a usable wait");
        assert!(
            started.elapsed() < Duration::from_millis(500),
            "shed path took {:?} — rejections must be fast",
            started.elapsed()
        );
        shed += 1;
    }
    assert_eq!(shed, 20);

    // Drain the two admitted solves (deadline-bounded), then check the
    // counters saw all of it.
    for _ in 0..2 {
        let _ = read_response(&mut blocker_reader);
    }
    let serving = stats_over(&burst, &mut burst_reader)
        .serving
        .expect("TCP servers report serving stats");
    assert_eq!(serving.queue_limit, 1);
    assert!(serving.shed_queue_full >= 20, "every burst request counted");
    assert!(serving.admitted >= 2, "the blockers were admitted");
    assert!(
        serving.shed_latency_p99_us < 50_000,
        "shed p99 {}µs — a reject must be fast, that is its entire point",
        serving.shed_latency_p99_us
    );
    server.shutdown();
}

#[test]
fn serving_stats_and_metrics_surface_reactor_state() {
    let mut server = Server::bind(
        "127.0.0.1:0",
        ServiceConfig {
            workers: 2,
            ..Default::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();

    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut w = stream.try_clone().expect("clone");
    writeln!(w, "{}", request_line(1, None, Command::Ping)).expect("send");
    assert_eq!(read_response(&mut reader).status, "ok");
    // A real solve passes through the admission controller (Ping and
    // other cheap commands bypass it).
    writeln!(
        w,
        "{}",
        request_line(
            2,
            Some(10_000),
            Command::Solve {
                pipeline: rpwf_gen::figure5_pipeline(),
                platform: rpwf_gen::figure5_platform(),
                objective: rpwf_algo::Objective::MinFpUnderLatency(22.0),
            }
        )
    )
    .expect("send");
    assert_eq!(read_response(&mut reader).status, "ok");

    let serving = stats_over(&stream, &mut reader)
        .serving
        .expect("TCP servers report serving stats");
    assert!(serving.event_threads >= 1);
    assert!(serving.open_connections >= 1, "this connection is open");
    assert!(serving.queue_limit >= 1);
    assert!(serving.admitted >= 1, "the solve was admitted");
    assert_eq!(serving.shed_queue_full + serving.shed_deadline, 0);

    writeln!(w, "{}", request_line(3, None, Command::Metrics)).expect("send");
    let resp = read_response(&mut reader);
    assert_eq!(resp.status, "ok");
    let text = match resp.result.expect("result") {
        serde::Value::Str(s) => s,
        other => panic!("metrics dump should be text, got {other:?}"),
    };
    for series in [
        "rpwf_admission_admitted_total",
        "rpwf_admission_shed_queue_full_total",
        "rpwf_admission_shed_deadline_total",
        "rpwf_admission_queue_depth",
        "rpwf_admission_shed_latency_us",
        "rpwf_reactor_event_threads",
        "rpwf_reactor_open_connections",
        "rpwf_reactor_loop_us",
    ] {
        assert!(text.contains(series), "metrics dump missing {series}");
    }
    server.shutdown();
}
