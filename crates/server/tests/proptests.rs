//! Property-based tests of the front-first serving guarantees:
//!
//! * **batch grouping is a pure amortization** — grouped answers are
//!   byte-identical to independently-solved answers on random workloads,
//! * **streaming is a pure encoding** — `front_part` chunks reassemble to
//!   the exact one-shot front, for every chunk size.
//! * **histogram buckets are cumulative** — the `_bucket{le=…}` rendering
//!   is monotone non-decreasing and closes with `+Inf` = sample count.

use proptest::prelude::*;
use rpwf_core::platform::{FailureClass, PlatformClass};
use rpwf_server::protocol::{Command, Request, Response};
use rpwf_server::{ServiceConfig, SolverService, WorkerPool};
use std::sync::Arc;
use std::time::Instant;

fn service(cache_capacity: usize) -> SolverService {
    SolverService::new(ServiceConfig {
        workers: 2,
        cache_capacity,
        cache_shards: 4,
        seed: 0xCAFE,
        solver_threads: 1,
        node_id: None,
    })
}

/// A small comm-homogeneous instance the exact DP finishes instantly.
fn instance(seed: u64) -> (rpwf_core::stage::Pipeline, rpwf_core::platform::Platform) {
    let inst = rpwf_gen::make_instance(
        PlatformClass::CommHomogeneous,
        FailureClass::Heterogeneous,
        3,
        4,
        seed,
    );
    (inst.pipeline, inst.platform)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn grouped_batch_is_byte_identical_to_independent_solving(
        seeds in proptest::collection::vec(0u64..6, 1..3),
        factors in proptest::collection::vec(0.5f64..2.5, 4..10),
    ) {
        // `factors.len()` threshold queries spread over the distinct
        // instances, mixing both objectives and including infeasible
        // bounds (errors must match too).
        let instances: Vec<_> = seeds.iter().map(|&s| instance(s)).collect();
        let lines: Vec<String> = factors
            .iter()
            .enumerate()
            .map(|(i, &factor)| {
                let (pipeline, platform) = instances[i % instances.len()].clone();
                let safest = rpwf_algo::mono::minimize_failure(&pipeline, &platform);
                let objective = if i % 2 == 0 {
                    rpwf_algo::Objective::MinFpUnderLatency(safest.latency * factor)
                } else {
                    rpwf_algo::Objective::MinLatencyUnderFp(
                        (safest.failure_prob * factor).min(1.0),
                    )
                };
                serde_json::to_string(&Request {
                    id: Some(i as u64),
                    deadline_ms: None,
                    no_cache: None,
                    hop: None,
                    trace: None,
                    trace_ctx: None,
            explain: None,
                    cmd: Command::Solve { pipeline, platform, objective },
                })
                .expect("serializes")
            })
            .collect();

        let grouped_pool = WorkerPool::new(Arc::new(service(256)));
        let grouped = grouped_pool.submit_batch(lines.clone());
        let independent_pool = WorkerPool::new(Arc::new(service(0)));
        let independent = independent_pool.submit_batch_ungrouped(lines);

        prop_assert_eq!(grouped.len(), independent.len());
        for (g, i) in grouped.iter().zip(&independent) {
            let g: Response = serde_json::from_str(g).expect("parses");
            let i: Response = serde_json::from_str(i).expect("parses");
            prop_assert_eq!(&g.status, &i.status);
            prop_assert_eq!(
                serde_json::to_string(&g.result).expect("serializes"),
                serde_json::to_string(&i.result).expect("serializes"),
                "result payloads must match byte for byte"
            );
            prop_assert_eq!(
                g.error.map(|e| e.kind),
                i.error.map(|e| e.kind),
                "error kinds must match"
            );
        }
    }

    #[test]
    fn streamed_chunks_reassemble_to_the_one_shot_front(
        seed in 0u64..12,
        chunk in 1usize..7,
    ) {
        let (pipeline, platform) = instance(seed);
        let svc = service(0); // no cache: both requests compute fresh
        let pareto = |id: u64, chunk: Option<usize>| Request {
            id: Some(id),
            deadline_ms: None,
            no_cache: None,
            hop: None,
            trace: None,
            trace_ctx: None,
            explain: None,
            cmd: Command::Pareto {
                pipeline: pipeline.clone(),
                platform: platform.clone(),
                chunk,
            },
        };

        let one_shot = svc.handle(pareto(1, None), Instant::now());
        prop_assert_eq!(&one_shot.status, "ok");
        let result = one_shot.result.expect("front payload");
        let expected_points = result.get("points").cloned().expect("points");
        let expected_complete = result.get("complete").cloned().expect("complete");

        let mut responses: Vec<Response> = Vec::new();
        svc.handle_request_into(pareto(2, Some(chunk)), Instant::now(), None, &mut |r| {
            responses.push(r);
        });
        let (end, parts) = responses.split_last().expect("closing line");
        prop_assert_eq!(&end.status, "ok");
        let mut reassembled: Vec<serde::Value> = Vec::new();
        for (i, part) in parts.iter().enumerate() {
            prop_assert_eq!(&part.status, "part");
            let payload = part.result.as_ref().expect("part payload");
            prop_assert_eq!(
                payload.get("seq").and_then(serde::Value::as_u64),
                Some(i as u64)
            );
            let points = payload
                .get("points")
                .and_then(serde::Value::as_seq)
                .expect("part points");
            prop_assert!(points.len() <= chunk, "chunk bound respected");
            // Every part except the last is exactly full.
            if i + 1 < parts.len() {
                prop_assert_eq!(points.len(), chunk);
            }
            reassembled.extend(points.iter().cloned());
        }
        let end_payload = end.result.as_ref().expect("end payload");
        prop_assert_eq!(
            end_payload.get("parts").and_then(serde::Value::as_u64),
            Some(parts.len() as u64)
        );
        prop_assert_eq!(
            end_payload.get("points_total").and_then(serde::Value::as_u64),
            Some(reassembled.len() as u64)
        );
        prop_assert_eq!(end_payload.get("complete"), Some(&expected_complete));
        prop_assert_eq!(
            serde_json::to_string(&serde::Value::Seq(reassembled)).expect("serializes"),
            serde_json::to_string(&expected_points).expect("serializes"),
            "chunks must reassemble to the exact one-shot front"
        );
    }

    #[test]
    fn histogram_bucket_rendering_is_cumulative_and_monotone(
        samples in proptest::collection::vec(0u64..30_000_000, 1..200),
    ) {
        let metrics = rpwf_server::metrics::CommandMetrics::new();
        for &us in &samples {
            metrics.record("solve", us);
        }
        let mut text = String::new();
        metrics.render_prometheus(&mut text);

        // Bucket lines appear in increasing `le` order; under the
        // cumulative rendering their counts must never decrease and the
        // closing +Inf bucket must equal the total sample count.
        let counts: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("rpwf_command_latency_us_bucket{cmd=\"solve\""))
            .map(|l| {
                l.rsplit(' ')
                    .next()
                    .expect("count field")
                    .parse::<u64>()
                    .expect("bucket count parses")
            })
            .collect();
        prop_assert!(!counts.is_empty(), "no bucket lines in:\n{text}");
        for pair in counts.windows(2) {
            prop_assert!(
                pair[0] <= pair[1],
                "bucket counts must be monotone, got {counts:?}"
            );
        }
        prop_assert_eq!(
            *counts.last().expect("+Inf bucket"),
            samples.len() as u64,
            "+Inf bucket must count every sample"
        );
    }

    #[test]
    fn standalone_histogram_series_render_cumulative_buckets(
        samples in proptest::collection::vec(0u64..30_000_000, 1..200),
        name_ix in 0usize..3,
    ) {
        // The reactor/admission series (`rpwf_reactor_loop_us`,
        // `rpwf_admission_shed_latency_us`) render through the same
        // standalone-histogram path; the cumulative-bucket contract must
        // hold for every series name, not just per-command latency.
        let names = [
            "rpwf_reactor_loop_us",
            "rpwf_admission_shed_latency_us",
            "rpwf_anything_us",
        ];
        let name = names[name_ix];
        let histogram = rpwf_server::metrics::LatencyHistogram::default();
        for &us in &samples {
            histogram.record(us);
        }
        let mut text = String::new();
        histogram.render_prometheus_series(name, &mut text);

        let bucket_prefix = format!("{name}_bucket{{le=");
        let counts: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with(&bucket_prefix))
            .map(|l| {
                l.rsplit(' ')
                    .next()
                    .expect("count field")
                    .parse::<u64>()
                    .expect("bucket count parses")
            })
            .collect();
        prop_assert!(!counts.is_empty(), "no bucket lines in:\n{text}");
        for pair in counts.windows(2) {
            prop_assert!(
                pair[0] <= pair[1],
                "bucket counts must be monotone, got {counts:?}"
            );
        }
        prop_assert_eq!(
            *counts.last().expect("+Inf bucket"),
            samples.len() as u64,
            "+Inf bucket must count every sample"
        );
        // The summary lines agree with the buckets: _count is the
        // sample count and the +Inf bucket equals _count.
        let count_line = text
            .lines()
            .find(|l| l.starts_with(&format!("{name}_count ")))
            .expect("_count line");
        let count: u64 = count_line
            .rsplit(' ')
            .next()
            .expect("count value")
            .parse()
            .expect("count parses");
        prop_assert_eq!(count, samples.len() as u64);
    }
}
