//! Deterministic fault injection for the transport layer.
//!
//! A [`FaultPlan`] scripts failures against a running [`crate::Server`]:
//! every request line the server receives (across all of its
//! connections) advances one global counter, and a plan pins a
//! [`FaultAction`] to specific counter values — *"drop the connection on
//! request 3, kill the node on request 7"*. The plan is built once,
//! up front, from a seed: a given `(seed, plan)` always injects the
//! identical faults at the identical requests, so chaos tests are
//! reproducible bit-for-bit and a failing schedule can be replayed.
//!
//! The four primitives cover the distinct ways a fleet peer can hurt
//! you:
//!
//! * [`drop_connection_at`](FaultPlan::drop_connection_at) — the socket
//!   dies mid-conversation (process crash, network partition): the
//!   caller sees an I/O error and must fail over.
//! * [`delay_response_at`](FaultPlan::delay_response_at) — the node is
//!   alive but slow (GC pause, overload): the caller's read timeout, not
//!   its connect timeout, is what saves it.
//! * [`corrupt_line_at`](FaultPlan::corrupt_line_at) — the node answers
//!   garbage (truncated write, buggy proxy): the caller must treat an
//!   unparseable response as a failure, never relay it.
//! * [`kill_node_at`](FaultPlan::kill_node_at) — the whole node goes
//!   dark (stops accepting, severs every live connection) and stays
//!   dark: the failover path and the circuit breaker take over.
//!
//! Plans are injected at bind time ([`crate::Server::bind_ring_faulted`]
//! / [`crate::Server::bind_with_router_faulted`]); a server bound
//! without a plan pays nothing — the hook is an `Option` checked once
//! per request line.

use rpwf_core::backoff::JitteredBackoff;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// One scripted failure, pinned to a request index by a [`FaultPlan`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Sever this request's connection instead of answering.
    DropConnection,
    /// Answer, but only after sleeping this long.
    DelayResponse(Duration),
    /// Answer with a corrupted (unparseable) response line.
    CorruptLine,
    /// Stop accepting and sever every live connection — the node is dead
    /// until its owner rebinds it.
    KillNode,
}

/// A seed-deterministic schedule of transport faults.
///
/// ```
/// use rpwf_server::fault::FaultPlan;
/// use std::time::Duration;
///
/// let plan = FaultPlan::new(0xBAD5EED)
///     .corrupt_line_at(2)
///     .delay_response_at(4, Duration::from_millis(50))
///     .kill_node_at(9);
/// assert_eq!(plan.seed(), 0xBAD5EED);
/// ```
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    actions: HashMap<u64, FaultAction>,
    counter: AtomicU64,
    killed: AtomicBool,
}

impl FaultPlan {
    /// An empty plan. The seed fixes every randomized quantity (today:
    /// the jitter on injected delays), so equal seeds build equal plans.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            actions: HashMap::new(),
            counter: AtomicU64::new(0),
            killed: AtomicBool::new(false),
        }
    }

    /// The seed this plan was built from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Severs the connection carrying request number `k` (0-based, over
    /// all connections) instead of answering it.
    #[must_use]
    pub fn drop_connection_at(mut self, k: u64) -> Self {
        self.actions.insert(k, FaultAction::DropConnection);
        self
    }

    /// Delays the answer to request number `k` by a jittered duration in
    /// `[base, 2·base]`, drawn **now** from the plan seed (mixed with
    /// `k`) — the injected delay is fixed at build time, not at fire
    /// time, so concurrent chaos runs stay reproducible.
    ///
    /// The delay is applied as a **reactor timer**: the delayed line
    /// parks in the event thread's timer heap and flushes when due. No
    /// worker or event thread sleeps, so a delayed node keeps serving
    /// its other connections at full speed — exactly how a GC pause on
    /// one response stream behaves.
    #[must_use]
    pub fn delay_response_at(mut self, k: u64, base: Duration) -> Self {
        let mut backoff = JitteredBackoff::new(base, base.saturating_mul(2), self.seed ^ k);
        // Attempt 0's window is [base, base]; attempt 1 spans the full
        // [base, 2·base] range.
        let _ = backoff.next_delay();
        let delay = backoff.next_delay();
        self.actions.insert(k, FaultAction::DelayResponse(delay));
        self
    }

    /// Answers request number `k` with an unparseable response line.
    #[must_use]
    pub fn corrupt_line_at(mut self, k: u64) -> Self {
        self.actions.insert(k, FaultAction::CorruptLine);
        self
    }

    /// Kills the whole node when request number `k` arrives: the
    /// listener stops accepting and every live connection is severed,
    /// exactly like `kill -9` as seen from the peers.
    #[must_use]
    pub fn kill_node_at(mut self, k: u64) -> Self {
        self.actions.insert(k, FaultAction::KillNode);
        self
    }

    /// Advances the request counter and returns the fault scripted for
    /// this request, if any. Called by the transport once per received
    /// request line.
    pub fn on_request(&self) -> Option<FaultAction> {
        let k = self.counter.fetch_add(1, Ordering::Relaxed);
        self.actions.get(&k).copied()
    }

    /// Request lines observed so far.
    #[must_use]
    pub fn requests_seen(&self) -> u64 {
        self.counter.load(Ordering::Relaxed)
    }

    /// Whether a [`KillNode`](FaultAction::KillNode) fault has fired.
    #[must_use]
    pub fn killed(&self) -> bool {
        self.killed.load(Ordering::Relaxed)
    }

    /// Records that the kill fired (set by the transport).
    pub(crate) fn mark_killed(&self) {
        self.killed.store(true, Ordering::Relaxed);
    }

    /// Mangles a response line into guaranteed-unparseable bytes of the
    /// same rough size (stays a single line — the framing survives, the
    /// payload does not, which is exactly how real truncation bugs
    /// present).
    #[must_use]
    pub(crate) fn corrupt(line: &str) -> String {
        let keep = line.len() / 2;
        format!("%CORRUPT%{}", &line[..keep.min(line.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_seed_deterministic() {
        let a = FaultPlan::new(7)
            .delay_response_at(3, Duration::from_millis(100))
            .delay_response_at(9, Duration::from_millis(100));
        let b = FaultPlan::new(7)
            .delay_response_at(3, Duration::from_millis(100))
            .delay_response_at(9, Duration::from_millis(100));
        assert_eq!(a.actions, b.actions);
        // Different request indices draw different jitter from the same
        // seed (they mix `k` into the stream).
        assert_ne!(
            a.actions.get(&3),
            a.actions.get(&9),
            "per-request jitter streams are independent"
        );
    }

    #[test]
    fn delays_stay_within_the_jitter_window() {
        let base = Duration::from_millis(80);
        for seed in 0..32u64 {
            let plan = FaultPlan::new(seed).delay_response_at(0, base);
            match plan.actions[&0] {
                FaultAction::DelayResponse(d) => {
                    assert!(d >= base && d <= base * 2, "delay {d:?} out of window");
                }
                other => panic!("unexpected action {other:?}"),
            }
        }
    }

    #[test]
    fn counter_fires_each_action_exactly_once() {
        let plan = FaultPlan::new(1).corrupt_line_at(1).kill_node_at(3);
        assert_eq!(plan.on_request(), None);
        assert_eq!(plan.on_request(), Some(FaultAction::CorruptLine));
        assert_eq!(plan.on_request(), None);
        assert_eq!(plan.on_request(), Some(FaultAction::KillNode));
        assert_eq!(plan.on_request(), None);
        assert_eq!(plan.requests_seen(), 5);
    }

    #[test]
    fn corrupted_lines_never_parse() {
        let line = r#"{"id":1,"status":"ok"}"#;
        let garbled = FaultPlan::corrupt(line);
        assert!(serde_json::from_str::<crate::protocol::Response>(&garbled).is_err());
        assert!(!garbled.contains('\n'), "framing must survive");
    }
}
