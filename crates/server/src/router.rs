//! The routing layer between transports and the solver service.
//!
//! Every decoded request — whatever transport it arrived on — goes
//! through a [`Router`] that decides *which node* answers it:
//!
//! * [`LocalRouter`] — this process answers everything (the single-node
//!   deployment; zero overhead over calling the service directly),
//! * [`RingRouter`] — fleet mode: each instance-bearing request is placed
//!   on the owning node of a consistent-hash ring
//!   ([`rpwf_core::ring::HashRing`]) keyed by the canonical instance hash
//!   ([`Command::route_key`]). Non-owned requests are transparently
//!   forwarded to the owning peer over the ordinary JSON-lines protocol
//!   through pooled connections ([`crate::peer::Peer`]); node-local
//!   commands (`Ping`, `Gen`, `Stats`, `Metrics`, `Ring`) never leave the
//!   entry node.
//!
//! Fleet invariants:
//!
//! * **Partitioned cache** — with every node routing by the same ring,
//!   each `(pipeline, platform)` instance is solved and cached on exactly
//!   one node, so a fleet of `f` nodes holds `f×` the fronts of a single
//!   node at the same per-node memory.
//! * **Entry-node transparency** — a forwarded response carries the
//!   owner's identity and the owner's cached answer, so a request returns
//!   the same payload whichever node the client entered through.
//! * **No forwarding loops** — forwarded requests carry the `hop` flag
//!   and are always answered locally by the receiver, so disagreeing ring
//!   views cost at most one extra hop.
//! * **Graceful degradation** — when the owning peer is unreachable the
//!   entry node solves locally (flagged in the `Ring`/`Metrics`
//!   counters): answers stay correct, only cache placement degrades.

use crate::peer::Peer;
use crate::protocol::{
    Command, Request, Response, RingPeerOut, RingResult, TraceContext, TraceEntryOut,
};
use crate::service::SolverService;
use rpwf_core::budget::CancelHandle;
use rpwf_core::ring::{HashRing, DEFAULT_VNODES};
use rpwf_core::trace::{Trace, TraceId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Slack added to a forwarded request's remaining deadline before the
/// peer read times out — the owner needs a moment to serialize and ship
/// the response after finishing within its own deadline.
const FORWARD_GRACE: Duration = Duration::from_secs(2);

/// Read-timeout watchdog for forwarded requests without a deadline: long
/// enough for any realistic solve, short enough that a wedged peer
/// eventually frees the worker (which then answers locally).
const FORWARD_WATCHDOG: Duration = Duration::from_secs(600);

/// The request-path abstraction: everything between "a request line
/// arrived" and "response line(s) produced" goes through here.
pub trait Router: Send + Sync {
    /// The solver service answering this node's share of the keyspace.
    fn service(&self) -> &Arc<SolverService>;

    /// `true` when requests may be answered by peer processes. Local
    /// batch-grouping shortcuts (shared front warming, vectorized batch
    /// reads) are disabled on sharded routers — grouping is the owning
    /// node's business.
    fn is_sharded(&self) -> bool {
        false
    }

    /// `true` when the transport should execute this request line inline
    /// on its connection reader thread instead of queueing it on the
    /// worker pool. Fleet routers claim **hopped** (peer-forwarded)
    /// requests: if forwarded work competed for the same bounded worker
    /// pools that block on forwarding, two nodes saturated with
    /// cross-traffic could deadlock — every worker of each waiting on a
    /// hopped job queued behind every worker of the other. Inline
    /// execution keeps forwarded work on the (per-peer-connection)
    /// reader threads, so a `Peer::call` always completes.
    fn handles_inline(&self, _line: &str) -> bool {
        false
    }

    /// Routes one raw request line, emitting each response line (without
    /// trailing newline) as it becomes available.
    fn handle_line(
        &self,
        line: &str,
        received: Instant,
        cancel: Option<&CancelHandle>,
        emit: &mut dyn FnMut(String),
    );
}

/// Single-node routing: every request is answered by the local service.
pub struct LocalRouter {
    service: Arc<SolverService>,
}

impl LocalRouter {
    /// Wraps a service.
    #[must_use]
    pub fn new(service: Arc<SolverService>) -> Self {
        LocalRouter { service }
    }
}

impl Router for LocalRouter {
    fn service(&self) -> &Arc<SolverService> {
        &self.service
    }

    fn handle_line(
        &self,
        line: &str,
        received: Instant,
        cancel: Option<&CancelHandle>,
        emit: &mut dyn FnMut(String),
    ) {
        self.service.handle_line_into(line, received, cancel, emit);
    }
}

/// Fleet routing over a consistent-hash ring.
pub struct RingRouter {
    service: Arc<SolverService>,
    node_id: String,
    ring: HashRing,
    peers: HashMap<String, Peer>,
    /// Requests received with the `hop` flag (answered as the owner).
    hops_received: AtomicU64,
    /// Requests this node answered because it owns them.
    owned_served: AtomicU64,
    /// Requests answered locally because the owning peer was down.
    fallbacks: AtomicU64,
}

impl RingRouter {
    /// Builds the fleet router: this node (`node_id`, the `host:port` the
    /// peers know it by) plus its `peers`, each hashed onto the ring with
    /// `vnodes` virtual nodes (`None` = [`DEFAULT_VNODES`]). Registers
    /// the ring introspection and metrics extensions on the service, so
    /// the `Ring` command and the `Metrics` dump report fleet state.
    #[must_use]
    pub fn new(
        service: Arc<SolverService>,
        node_id: impl Into<String>,
        peers: &[String],
        vnodes: Option<usize>,
    ) -> Arc<Self> {
        let node_id = node_id.into();
        let vnodes = vnodes.unwrap_or(DEFAULT_VNODES);
        let members: Vec<String> = std::iter::once(node_id.clone())
            .chain(peers.iter().cloned())
            .collect();
        let router = Arc::new(RingRouter {
            ring: HashRing::new(members, vnodes),
            peers: peers
                .iter()
                .filter(|p| **p != node_id)
                .map(|p| (p.clone(), Peer::new(p.clone())))
                .collect(),
            service,
            node_id,
            hops_received: AtomicU64::new(0),
            owned_served: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
        });
        let ring_view = Arc::downgrade(&router);
        router.service.set_ring_reporter(Box::new(move || {
            ring_view.upgrade().map(|r| r.ring_result())
        }));
        let metrics_view = Arc::downgrade(&router);
        router.service.set_metrics_extension(Box::new(move |out| {
            if let Some(r) = metrics_view.upgrade() {
                r.render_metrics(out);
            }
        }));
        router
    }

    /// This node's ring identity.
    #[must_use]
    pub fn node_id(&self) -> &str {
        &self.node_id
    }

    /// The ring in effect.
    #[must_use]
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// The owning node of a request, when it routes at all. Instance
    /// hashing can panic on structurally broken (deserialized) instances;
    /// those are treated as local so the service reports the structured
    /// error.
    fn owner_of(&self, cmd: &Command) -> Option<String> {
        let key = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| cmd.route_key()))
            .ok()
            .flatten()?;
        self.ring.owner(key).map(str::to_owned)
    }

    /// Forwards `request` to `owner`, falling back to a local solve when
    /// the peer cannot be reached or errors mid-call.
    ///
    /// When the request opted into tracing, this node opens the
    /// **entry-side** trace (root, decode, route, `peer.forward` spans),
    /// ships a [`TraceContext`] inside the hopped request so the owner
    /// collects its spans under the same trace id, then grafts the
    /// owner's subtree (returned on the final response's `meta.trace`)
    /// under the forward span — the client receives one merged trace and
    /// the entry node logs it in its own slow-query ring. On peer failure
    /// the local fallback starts a fresh trace: the entry-side route and
    /// forward spans are lost with the failed call (the fallback is
    /// visible in the `Ring` counters instead).
    fn forward(
        &self,
        owner: &str,
        request: Request,
        received: Instant,
        cancel: Option<&CancelHandle>,
        emit: &mut dyn FnMut(String),
    ) {
        let Some(peer) = self.peers.get(owner) else {
            // The ring names a node this router has no client for — a
            // configuration mismatch; answer locally rather than drop.
            self.fallbacks.fetch_add(1, Ordering::Relaxed);
            self.handle_local(request, received, cancel, emit);
            return;
        };
        let trace = request.trace.unwrap_or(false).then(|| {
            let id = request
                .trace_ctx
                .map_or_else(TraceId::next, |ctx| TraceId(ctx.id));
            let trace = Trace::new(id, received);
            let root = trace.begin_root("request");
            trace.attr(root.index(), "cmd", request.cmd.name());
            trace.attr(root.index(), "node", self.node_id.as_str());
            trace.attr(root.index(), "role", "entry");
            trace.add(
                "decode",
                Some(root.index()),
                0,
                trace.elapsed_us(),
                Vec::new(),
            );
            trace.add(
                "route",
                Some(root.index()),
                trace.elapsed_us(),
                0,
                vec![("owner".to_owned(), owner.to_owned())],
            );
            let forward = trace.begin("peer.forward", Some(root.index()));
            trace.attr(forward.index(), "from", self.node_id.as_str());
            trace.attr(forward.index(), "to", owner);
            (trace, root, forward)
        });
        let mut hopped = request.clone();
        hopped.hop = Some(true);
        if let Some((trace, _, forward)) = &trace {
            hopped.trace_ctx = Some(TraceContext {
                id: trace.id().0,
                parent: forward.index(),
            });
        }
        let line = serde_json::to_string(&hopped).expect("requests always serialize");
        // Bound the wait on the peer: the request's remaining deadline
        // (plus shipping grace) when it has one, a watchdog otherwise. On
        // expiry the local fallback path reports the proper structured
        // timeout through its own budget check.
        let read_timeout = match request.deadline_ms {
            Some(ms) => {
                (received + Duration::from_millis(ms)).saturating_duration_since(Instant::now())
                    + FORWARD_GRACE
            }
            None => FORWARD_WATCHDOG,
        };
        let peer_scope = trace
            .as_ref()
            .map(|(trace, _, forward)| rpwf_core::trace::TraceScope::new(trace, forward.index()));
        match peer.call_traced(&line, read_timeout, peer_scope) {
            Ok(mut lines) => {
                if let Some((trace, root, forward)) = trace {
                    trace.end(&forward);
                    trace.end(&root);
                    self.merge_owner_trace(&trace, forward.index(), &request, &mut lines);
                }
                for line in lines {
                    emit(line);
                }
            }
            Err(_) => {
                // Peer down: degrade to local solving. The answer is
                // byte-identical (same solver, same determinism seed) —
                // only cache placement degrades until the peer returns.
                self.fallbacks.fetch_add(1, Ordering::Relaxed);
                self.handle_local(request, received, cancel, emit);
            }
        }
    }

    /// Rewrites the final forwarded response line so its `meta.trace`
    /// becomes the merged entry+owner tree, and records the merged trace
    /// in this node's slow-query ring. A final line without a parseable
    /// trace (owner predates tracing, or the response is malformed) is
    /// passed through untouched.
    fn merge_owner_trace(
        &self,
        trace: &Trace,
        forward_span: u32,
        request: &Request,
        lines: &mut [String],
    ) {
        let Some(last) = lines.last_mut() else { return };
        let Ok(mut resp) = serde_json::from_str::<Response>(last) else {
            return;
        };
        let Some(owner_tree) = resp.meta.trace.take() else {
            return;
        };
        let mut merged = trace.finish();
        merged.graft(owner_tree, forward_span);
        resp.meta.trace = Some(merged.clone());
        *last = resp.to_line();
        self.service.record_trace(TraceEntryOut {
            id: merged.id.0,
            command: request.cmd.name().to_string(),
            status: resp.status.clone(),
            elapsed_us: merged.root().map_or(0, |span| span.elapsed_us),
            node: Some(self.node_id.clone()),
            spans: merged,
        });
    }

    fn handle_local(
        &self,
        request: Request,
        received: Instant,
        cancel: Option<&CancelHandle>,
        emit: &mut dyn FnMut(String),
    ) {
        self.service
            .handle_request_into(request, received, cancel, &mut |resp| {
                emit(resp.to_line());
            });
    }

    /// The `Ring` introspection payload.
    #[must_use]
    pub fn ring_result(&self) -> RingResult {
        let (owned, foreign) = self.cache_census();
        let mut forwards: Vec<RingPeerOut> = self
            .peers
            .values()
            .map(|p| RingPeerOut {
                peer: p.addr().to_string(),
                forwards: p.forwards(),
                failures: p.failures(),
            })
            .collect();
        forwards.sort_by(|a, b| a.peer.cmp(&b.peer));
        RingResult {
            node: self.node_id.clone(),
            nodes: self.ring.nodes().to_vec(),
            vnodes: self.ring.vnodes() as u64,
            owned_cache_keys: owned,
            foreign_cache_keys: foreign,
            hops_received: self.hops_received.load(Ordering::Relaxed),
            forwards,
        }
    }

    /// Counts this node's cached **front** keys by ring ownership:
    /// `(owned by this node, owned by a peer)`. Only front entries are
    /// counted — they are keyed by the instance hash the ring places;
    /// per-query result entries live in a different hash space where
    /// `ring.owner` is meaningless. Foreign keys are peer-down fallback
    /// artifacts — correct answers, duplicated capacity.
    fn cache_census(&self) -> (u64, u64) {
        let mut owned = 0u64;
        let mut foreign = 0u64;
        for key in self.service.front_cache_keys() {
            if self.ring.owner(key) == Some(self.node_id.as_str()) {
                owned += 1;
            } else {
                foreign += 1;
            }
        }
        (owned, foreign)
    }

    /// Appends the fleet gauges to the Prometheus-style `Metrics` dump.
    pub fn render_metrics(&self, out: &mut String) {
        use std::fmt::Write as _;
        let (owned, foreign) = self.cache_census();
        let node = &self.node_id;
        writeln!(out, "rpwf_ring_nodes {}", self.ring.len()).expect("write");
        writeln!(out, "rpwf_ring_vnodes {}", self.ring.vnodes()).expect("write");
        writeln!(out, "rpwf_ring_owned_cache_keys{{node=\"{node}\"}} {owned}").expect("write");
        writeln!(
            out,
            "rpwf_ring_foreign_cache_keys{{node=\"{node}\"}} {foreign}"
        )
        .expect("write");
        writeln!(
            out,
            "rpwf_ring_hops_received_total{{node=\"{node}\"}} {}",
            self.hops_received.load(Ordering::Relaxed)
        )
        .expect("write");
        writeln!(
            out,
            "rpwf_ring_owned_served_total{{node=\"{node}\"}} {}",
            self.owned_served.load(Ordering::Relaxed)
        )
        .expect("write");
        writeln!(
            out,
            "rpwf_ring_fallbacks_total{{node=\"{node}\"}} {}",
            self.fallbacks.load(Ordering::Relaxed)
        )
        .expect("write");
        let mut peers: Vec<&Peer> = self.peers.values().collect();
        peers.sort_by_key(|p| p.addr().to_string());
        for peer in peers {
            writeln!(
                out,
                "rpwf_ring_forwards_total{{peer=\"{}\"}} {}",
                peer.addr(),
                peer.forwards()
            )
            .expect("write");
            writeln!(
                out,
                "rpwf_ring_forward_failures_total{{peer=\"{}\"}} {}",
                peer.addr(),
                peer.failures()
            )
            .expect("write");
        }
    }
}

impl Router for RingRouter {
    fn service(&self) -> &Arc<SolverService> {
        &self.service
    }

    fn is_sharded(&self) -> bool {
        true
    }

    fn handles_inline(&self, line: &str) -> bool {
        // Substring screen only — forwarders serialize compactly, so a
        // hopped line always contains this byte sequence, and JSON string
        // escaping means no legitimate payload can embed it. Skipping the
        // confirming parse keeps the owner's hot path at one deserialize
        // per forwarded request; a pathological false positive merely
        // runs that request on the reader thread instead of the pool
        // (handle_line still routes it by its parsed content — correct
        // either way).
        line.contains("\"hop\":true")
    }

    fn handle_line(
        &self,
        line: &str,
        received: Instant,
        cancel: Option<&CancelHandle>,
        emit: &mut dyn FnMut(String),
    ) {
        let Ok(request) = serde_json::from_str::<Request>(line.trim()) else {
            // Empty or malformed: the service renders the structured
            // `invalid` error.
            self.service.handle_line_into(line, received, cancel, emit);
            return;
        };
        if request.hop.unwrap_or(false) {
            // Forwarded by a peer: we are the owner (by its ring view);
            // never re-forward.
            self.hops_received.fetch_add(1, Ordering::Relaxed);
            self.handle_local(request, received, cancel, emit);
            return;
        }
        match self.owner_of(&request.cmd) {
            Some(owner) if owner != self.node_id => {
                self.forward(&owner, request, received, cancel, emit);
            }
            Some(_) => {
                self.owned_served.fetch_add(1, Ordering::Relaxed);
                self.handle_local(request, received, cancel, emit);
            }
            None => self.handle_local(request, received, cancel, emit),
        }
    }
}
