//! The routing layer between transports and the solver service.
//!
//! Every decoded request — whatever transport it arrived on — goes
//! through a [`Router`] that decides *which node* answers it:
//!
//! * [`LocalRouter`] — this process answers everything (the single-node
//!   deployment; zero overhead over calling the service directly),
//! * [`RingRouter`] — fleet mode: each instance-bearing request is placed
//!   on the owning node of a consistent-hash ring
//!   ([`rpwf_core::ring::HashRing`]) keyed by the canonical instance hash
//!   ([`Command::route_key`]). Non-owned requests are transparently
//!   forwarded to the owning peer over the ordinary JSON-lines protocol
//!   through pooled connections ([`crate::peer::Peer`]); node-local
//!   commands (`Ping`, `Gen`, `Stats`, `Metrics`, `Ring`) never leave the
//!   entry node.
//!
//! Fleet invariants:
//!
//! * **Replicated cache** — each key has `replicas` distinct owners (the
//!   ring successor list, [`HashRing::owners`]); the primary solves and
//!   pushes complete fronts to the replicas (`CacheFill`), so any single
//!   node's death leaves every front warm somewhere. With `replicas = 1`
//!   this degenerates to the strict partitioned cache (each instance on
//!   exactly one node).
//! * **Entry-node transparency** — a forwarded response carries the
//!   owner's identity and the owner's cached answer, so a request returns
//!   the same payload whichever node the client entered through — dead
//!   primaries included: the entry node fails over down the owner list
//!   and, when every owner is gone, solves locally.
//! * **No forwarding loops** — forwarded requests carry the `hop` flag
//!   and are always answered locally by the receiver, so disagreeing ring
//!   views cost at most one extra hop. `CacheFill` pushes are likewise
//!   hop-flagged and never re-replicated by the receiver, so replication
//!   cannot loop either.
//! * **Graceful degradation** — when every owner of a key is unreachable
//!   the entry node solves locally (flagged in the `Ring`/`Metrics`
//!   counters): answers stay correct, only cache placement degrades. The
//!   per-peer circuit breaker ([`crate::peer`]) makes a dead peer cost
//!   one connect timeout, not one per request.

use crate::cache::CachedFront;
use crate::peer::{Peer, PeerConfig};
use crate::protocol::{
    Command, Request, Response, RingPeerOut, RingResult, TraceContext, TraceEntryOut,
};
use crate::service::{Job, SolverService};
use rpwf_core::budget::CancelHandle;
use rpwf_core::platform::Platform;
use rpwf_core::ring::{HashRing, DEFAULT_VNODES};
use rpwf_core::stage::Pipeline;
use rpwf_core::trace::{Trace, TraceId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, Weak};
use std::time::{Duration, Instant};

/// Slack added to a forwarded request's remaining deadline before the
/// peer read times out — the owner needs a moment to serialize and ship
/// the response after finishing within its own deadline.
const FORWARD_GRACE: Duration = Duration::from_secs(2);

/// Read-timeout watchdog for forwarded requests without a deadline: long
/// enough for any realistic solve, short enough that a wedged peer
/// eventually frees the worker (which then answers locally). Overridable
/// per deployment via [`RingOptions::peer_read`].
const FORWARD_WATCHDOG: Duration = Duration::from_secs(600);

/// Read timeout for background `CacheFill` pushes: generous for a pure
/// cache insert, bounded so a wedged replica cannot pin fill threads.
const CACHE_FILL_TIMEOUT: Duration = Duration::from_secs(30);

/// Default replication factor: every front lives on its primary owner
/// plus one ring successor, so one node death loses no cached work.
pub const DEFAULT_REPLICAS: usize = 2;

/// Fleet tuning knobs for [`RingRouter::with_options`] and
/// [`crate::Server::bind_ring`]. [`Default`] gives the production
/// posture: default vnodes, replication factor [`DEFAULT_REPLICAS`], and
/// the peer client's own timeout defaults.
#[derive(Clone, Debug)]
pub struct RingOptions {
    /// Virtual nodes per ring member (`None` = [`DEFAULT_VNODES`]).
    pub vnodes: Option<usize>,
    /// Distinct owners per key (clamped to at least 1). `1` disables
    /// replication entirely — no fills, no failover candidates.
    pub replicas: usize,
    /// Peer connect timeout (`None` = the [`PeerConfig`] default).
    pub peer_connect: Option<Duration>,
    /// Read timeout for forwarded requests **without a deadline**
    /// (`None` = the 600 s watchdog). Deadline-carrying requests always
    /// use their remaining deadline plus shipping grace.
    pub peer_read: Option<Duration>,
}

impl Default for RingOptions {
    fn default() -> Self {
        RingOptions {
            vnodes: None,
            replicas: DEFAULT_REPLICAS,
            peer_connect: None,
            peer_read: None,
        }
    }
}

/// The request-path abstraction: everything between "a request line
/// arrived" and "response line(s) produced" goes through here.
pub trait Router: Send + Sync {
    /// The solver service answering this node's share of the keyspace.
    fn service(&self) -> &Arc<SolverService>;

    /// `true` when requests may be answered by peer processes. Local
    /// batch-grouping shortcuts (shared front warming, vectorized batch
    /// reads) are disabled on sharded routers — grouping is the owning
    /// node's business.
    fn is_sharded(&self) -> bool {
        false
    }

    /// `true` when the transport should execute this request line inline
    /// on its connection reader thread instead of queueing it on the
    /// worker pool. Fleet routers claim **hopped** (peer-forwarded)
    /// requests: if forwarded work competed for the same bounded worker
    /// pools that block on forwarding, two nodes saturated with
    /// cross-traffic could deadlock — every worker of each waiting on a
    /// hopped job queued behind every worker of the other. Inline
    /// execution keeps forwarded work on the (per-peer-connection)
    /// reader threads, so a `Peer::call` always completes.
    fn handles_inline(&self, _line: &str) -> bool {
        false
    }

    /// Routes one raw request line, emitting each response line (without
    /// trailing newline) as it becomes available.
    fn handle_line(
        &self,
        line: &str,
        received: Instant,
        cancel: Option<&CancelHandle>,
        emit: &mut dyn FnMut(String),
    );

    /// Attempts to convert a queued job into a nonblocking peer forward
    /// for the reactor to drive ([`AsyncForward`]). `Err` returns the job
    /// untouched for ordinary (possibly blocking) handling — the default
    /// for local routers, and the fleet router's answer for hops, traced
    /// requests (whose entry-side span merging stays on the worker), and
    /// locally owned keys.
    fn prepare_async_forward(&self, job: Job) -> Result<AsyncForward, Job> {
        Err(job)
    }
}

/// A worker-prepared peer forward, executed by the reactor as a
/// nonblocking continuation: the hopped request line, the owner list to
/// walk (primary first), and the response consumer — everything the
/// pending-forward table needs to run the failover state machine without
/// occupying a worker or reader thread.
pub struct AsyncForward {
    /// The fleet router that prepared this forward (peer clients,
    /// failover counters, node identity).
    pub(crate) router: Arc<RingRouter>,
    /// Owner list, primary first (this node may appear as a non-primary
    /// replica — the machine answers locally at that rank).
    pub(crate) owners: Vec<String>,
    /// The request re-serialized with the `hop` loop guard set.
    pub(crate) hopped_line: String,
    /// The original line, for the local fallback when every owner is
    /// unreachable.
    pub(crate) original_line: String,
    /// Per-attempt response wait (remaining deadline plus shipping grace,
    /// or the deployment watchdog).
    pub(crate) read_timeout: Duration,
    /// Receipt instant of the underlying request.
    pub(crate) received: Instant,
    /// The originating connection's cancellation handle.
    pub(crate) cancel: Option<CancelHandle>,
    /// Response consumer (one call per response line, in order).
    pub(crate) respond: Box<dyn FnMut(String) + Send>,
}

/// Single-node routing: every request is answered by the local service.
pub struct LocalRouter {
    service: Arc<SolverService>,
}

impl LocalRouter {
    /// Wraps a service.
    #[must_use]
    pub fn new(service: Arc<SolverService>) -> Self {
        LocalRouter { service }
    }
}

impl Router for LocalRouter {
    fn service(&self) -> &Arc<SolverService> {
        &self.service
    }

    fn handle_line(
        &self,
        line: &str,
        received: Instant,
        cancel: Option<&CancelHandle>,
        emit: &mut dyn FnMut(String),
    ) {
        self.service.handle_line_into(line, received, cancel, emit);
    }
}

/// Fleet routing over a consistent-hash ring.
pub struct RingRouter {
    service: Arc<SolverService>,
    node_id: String,
    ring: HashRing,
    peers: HashMap<String, Arc<Peer>>,
    /// Distinct owners per key (≥ 1).
    replicas: usize,
    /// Read-timeout override for deadline-less forwards.
    peer_read: Option<Duration>,
    /// Weak self-handle so [`Router::prepare_async_forward`] can hand the
    /// reactor an owning reference (set once at construction).
    self_ref: OnceLock<Weak<RingRouter>>,
    /// Requests received with the `hop` flag (answered as the owner).
    hops_received: AtomicU64,
    /// Requests this node answered because it owns them (as primary, or
    /// as a surviving replica after a failover walked down to us).
    owned_served: AtomicU64,
    /// Requests answered locally because every owning peer was down.
    fallbacks: AtomicU64,
    /// Forward attempts abandoned for the next owner in the successor
    /// list (peer dead, wedged, or breaker-open).
    failovers: AtomicU64,
}

impl RingRouter {
    /// Builds the fleet router with default [`RingOptions`] except for
    /// `vnodes` — the pre-replication constructor, kept for callers that
    /// only place the ring.
    #[must_use]
    pub fn new(
        service: Arc<SolverService>,
        node_id: impl Into<String>,
        peers: &[String],
        vnodes: Option<usize>,
    ) -> Arc<Self> {
        Self::with_options(
            service,
            node_id,
            peers,
            RingOptions {
                vnodes,
                ..RingOptions::default()
            },
        )
    }

    /// Builds the fleet router: this node (`node_id`, the `host:port` the
    /// peers know it by) plus its `peers`, each hashed onto the ring with
    /// `options.vnodes` virtual nodes. Registers the ring introspection
    /// and metrics extensions on the service, and — when replication is
    /// on (`replicas > 1` with at least one peer) — the front-stored hook
    /// that pushes locally solved complete fronts to the key's ring
    /// successors via `CacheFill`.
    #[must_use]
    pub fn with_options(
        service: Arc<SolverService>,
        node_id: impl Into<String>,
        peers: &[String],
        options: RingOptions,
    ) -> Arc<Self> {
        let node_id = node_id.into();
        let vnodes = options.vnodes.unwrap_or(DEFAULT_VNODES);
        let replicas = options.replicas.max(1);
        let mut peer_config = PeerConfig::default();
        if let Some(timeout) = options.peer_connect {
            peer_config.connect_timeout = timeout;
        }
        let members: Vec<String> = std::iter::once(node_id.clone())
            .chain(peers.iter().cloned())
            .collect();
        let router = Arc::new(RingRouter {
            ring: HashRing::new(members, vnodes),
            peers: peers
                .iter()
                .filter(|p| **p != node_id)
                .map(|p| {
                    (
                        p.clone(),
                        Arc::new(Peer::with_config(p.clone(), peer_config.clone())),
                    )
                })
                .collect(),
            service,
            node_id,
            replicas,
            peer_read: options.peer_read,
            self_ref: OnceLock::new(),
            hops_received: AtomicU64::new(0),
            owned_served: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
        });
        let _ = router.self_ref.set(Arc::downgrade(&router));
        let ring_view = Arc::downgrade(&router);
        router.service.set_ring_reporter(Box::new(move || {
            ring_view.upgrade().map(|r| r.ring_result())
        }));
        let metrics_view = Arc::downgrade(&router);
        router.service.set_metrics_extension(Box::new(move |out| {
            if let Some(r) = metrics_view.upgrade() {
                r.render_metrics(out);
            }
        }));
        if router.replicas > 1 && !router.peers.is_empty() {
            let fill_view = Arc::downgrade(&router);
            router.service.set_front_stored_hook(Box::new(
                move |pipeline, platform, key, entry| {
                    if let Some(r) = fill_view.upgrade() {
                        r.replicate_front(pipeline, platform, key, entry);
                    }
                },
            ));
        }
        router
    }

    /// This node's ring identity.
    #[must_use]
    pub fn node_id(&self) -> &str {
        &self.node_id
    }

    /// The ring in effect.
    #[must_use]
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// The replication factor in effect.
    #[must_use]
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// The pooled client for `owner`, if this router has one.
    pub(crate) fn peer_client(&self, owner: &str) -> Option<&Arc<Peer>> {
        self.peers.get(owner)
    }

    /// Counter hook for the reactor's forward machine: an owner attempt
    /// was abandoned for the next candidate.
    pub(crate) fn note_failover(&self) {
        self.failovers.fetch_add(1, Ordering::Relaxed);
    }

    /// Counter hook: every owner was unreachable and the entry node
    /// solved locally.
    pub(crate) fn note_fallback(&self) {
        self.fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Counter hook: this node answered as an owner (primary or
    /// surviving replica).
    pub(crate) fn note_owned_served(&self) {
        self.owned_served.fetch_add(1, Ordering::Relaxed);
    }

    /// The owner list (primary first) of a request, empty when it routes
    /// locally. Instance hashing can panic on structurally broken
    /// (deserialized) instances; those are treated as local so the
    /// service reports the structured error.
    fn owners_of(&self, cmd: &Command) -> Vec<String> {
        let key = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| cmd.route_key()))
            .ok()
            .flatten();
        match key {
            Some(key) => self
                .ring
                .owners(key, self.replicas)
                .into_iter()
                .map(str::to_owned)
                .collect(),
            None => Vec::new(),
        }
    }

    /// Pushes a locally solved complete front to the key's replica set.
    ///
    /// Only the **primary** owner propagates, and the receiving side
    /// never re-fires the stored hook for a `CacheFill` write — both
    /// guards together keep replication loop-free even when two nodes'
    /// ring views disagree during a membership change. The pushes run on
    /// a detached thread: a dead replica must cost its connect timeout
    /// there, not on the solve path (and its breaker makes repeat fills
    /// nearly free).
    fn replicate_front(
        self: &Arc<Self>,
        pipeline: &Pipeline,
        platform: &Platform,
        key: u128,
        entry: &CachedFront,
    ) {
        let owners = self.ring.owners(key, self.replicas);
        if owners.first().copied() != Some(self.node_id.as_str()) {
            return;
        }
        let targets: Vec<String> = owners
            .into_iter()
            .skip(1)
            .filter(|owner| self.peers.contains_key(*owner))
            .map(str::to_owned)
            .collect();
        if targets.is_empty() {
            return;
        }
        let request = Request {
            id: None,
            deadline_ms: None,
            no_cache: None,
            // Hop-flagged: the replica answers inline and never re-routes
            // (or re-replicates) the fill.
            hop: Some(true),
            trace: None,
            trace_ctx: None,
            explain: None,
            cmd: Command::CacheFill {
                pipeline: pipeline.clone(),
                platform: platform.clone(),
                front: (*entry.front).clone(),
                complete: entry.complete,
                solver: entry.solver,
                exact_capable: entry.exact_capable,
            },
        };
        let line = serde_json::to_string(&request).expect("requests always serialize");
        let router = Arc::clone(self);
        std::thread::spawn(move || {
            for target in &targets {
                if let Some(peer) = router.peers.get(target) {
                    let _ = peer.call(&line, CACHE_FILL_TIMEOUT);
                }
            }
        });
    }

    /// Forwards `request` down the `owners` list (primary first): the
    /// first reachable owner answers; a candidate that is **this node**
    /// answers locally (the surviving-replica path — warm when fills
    /// landed); when every candidate is exhausted the entry node solves
    /// locally.
    ///
    /// When the request opted into tracing, this node opens the
    /// **entry-side** trace (root, decode, route spans), gives every
    /// attempt its own `peer.forward` span (failed attempts additionally
    /// record a `peer.failover` span naming the abandoned owner), ships a
    /// [`TraceContext`] inside the hopped request so the answering owner
    /// collects its spans under the same trace id, then grafts the
    /// owner's subtree (returned on the final response's `meta.trace`)
    /// under the successful forward span — the client receives one merged
    /// trace and the entry node logs it in its own slow-query ring. On
    /// total failure the local fallback starts a fresh trace: the
    /// entry-side spans are lost with the failed calls (the fallback is
    /// visible in the `Ring` counters instead).
    fn forward(
        &self,
        owners: &[String],
        request: Request,
        received: Instant,
        cancel: Option<&CancelHandle>,
        emit: &mut dyn FnMut(String),
    ) {
        let mut trace = request.trace.unwrap_or(false).then(|| {
            let id = request
                .trace_ctx
                .map_or_else(TraceId::next, |ctx| TraceId(ctx.id));
            let trace = Trace::new(id, received);
            let root = trace.begin_root("request");
            trace.attr(root.index(), "cmd", request.cmd.name());
            trace.attr(root.index(), "node", self.node_id.as_str());
            trace.attr(root.index(), "role", "entry");
            trace.add(
                "decode",
                Some(root.index()),
                0,
                trace.elapsed_us(),
                Vec::new(),
            );
            trace.add(
                "route",
                Some(root.index()),
                trace.elapsed_us(),
                0,
                vec![(
                    "owner".to_owned(),
                    owners.first().cloned().unwrap_or_default(),
                )],
            );
            (trace, root)
        });
        let mut hopped = request.clone();
        hopped.hop = Some(true);
        // Bound the wait on each peer: the request's remaining deadline
        // (plus shipping grace) when it has one, the (configurable)
        // watchdog otherwise. On expiry the failover walks on; the local
        // fallback path reports the proper structured timeout through its
        // own budget check.
        let read_timeout = match request.deadline_ms {
            Some(ms) => {
                (received + Duration::from_millis(ms)).saturating_duration_since(Instant::now())
                    + FORWARD_GRACE
            }
            None => self.peer_read.unwrap_or(FORWARD_WATCHDOG),
        };
        for (rank, owner) in owners.iter().enumerate() {
            if *owner == self.node_id {
                // We are the surviving replica for this key: answer
                // locally. Warm when the primary's fills landed; a fresh
                // solve otherwise — correct either way.
                self.owned_served.fetch_add(1, Ordering::Relaxed);
                self.handle_local(request, received, cancel, emit);
                return;
            }
            let Some(peer) = self.peers.get(owner) else {
                // The ring names a node this router has no client for — a
                // configuration mismatch; try the next owner.
                continue;
            };
            let span = trace.as_ref().map(|(trace, root)| {
                let span = trace.begin("peer.forward", Some(root.index()));
                trace.attr(span.index(), "from", self.node_id.as_str());
                trace.attr(span.index(), "to", owner.as_str());
                span
            });
            if let (Some((trace, _)), Some(span)) = (&trace, &span) {
                hopped.trace_ctx = Some(TraceContext {
                    id: trace.id().0,
                    parent: span.index(),
                });
            }
            let line = serde_json::to_string(&hopped).expect("requests always serialize");
            let peer_scope = trace
                .as_ref()
                .zip(span.as_ref())
                .map(|((trace, _), span)| rpwf_core::trace::TraceScope::new(trace, span.index()));
            match peer.call_traced(&line, read_timeout, peer_scope) {
                Ok(mut lines) => {
                    if let (Some((trace, root)), Some(span)) = (trace.take(), span) {
                        trace.end(&span);
                        trace.end(&root);
                        self.merge_owner_trace(&trace, span.index(), &request, &mut lines);
                    }
                    for line in lines {
                        emit(line);
                    }
                    return;
                }
                Err(_) => {
                    if let (Some((trace, root)), Some(span)) = (&trace, &span) {
                        trace.end(span);
                        trace.add(
                            "peer.failover",
                            Some(root.index()),
                            trace.elapsed_us(),
                            0,
                            vec![("abandoned".to_owned(), owner.clone())],
                        );
                    }
                    if rank + 1 < owners.len() {
                        self.failovers.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        // Every owner unreachable: degrade to local solving. The answer
        // is byte-identical (same solver, same determinism seed) — only
        // cache placement degrades until an owner returns.
        self.fallbacks.fetch_add(1, Ordering::Relaxed);
        self.handle_local(request, received, cancel, emit);
    }

    /// Rewrites the final forwarded response line so its `meta.trace`
    /// becomes the merged entry+owner tree, and records the merged trace
    /// in this node's slow-query ring. A final line without a parseable
    /// trace (owner predates tracing, or the response is malformed) is
    /// passed through untouched.
    fn merge_owner_trace(
        &self,
        trace: &Trace,
        forward_span: u32,
        request: &Request,
        lines: &mut [String],
    ) {
        let Some(last) = lines.last_mut() else { return };
        let Ok(mut resp) = serde_json::from_str::<Response>(last) else {
            return;
        };
        let Some(owner_tree) = resp.meta.trace.take() else {
            return;
        };
        let mut merged = trace.finish();
        merged.graft(owner_tree, forward_span);
        resp.meta.trace = Some(merged.clone());
        *last = resp.to_line();
        self.service.record_trace(TraceEntryOut {
            id: merged.id.0,
            command: request.cmd.name().to_string(),
            status: resp.status.clone(),
            elapsed_us: merged.root().map_or(0, |span| span.elapsed_us),
            node: Some(self.node_id.clone()),
            spans: merged,
        });
    }

    fn handle_local(
        &self,
        request: Request,
        received: Instant,
        cancel: Option<&CancelHandle>,
        emit: &mut dyn FnMut(String),
    ) {
        self.service
            .handle_request_into(request, received, cancel, &mut |resp| {
                emit(resp.to_line());
            });
    }

    /// The `Ring` introspection payload.
    #[must_use]
    pub fn ring_result(&self) -> RingResult {
        let (owned, replica, foreign) = self.cache_census();
        let mut forwards: Vec<RingPeerOut> = self
            .peers
            .values()
            .map(|p| RingPeerOut {
                peer: p.addr().to_string(),
                forwards: p.forwards(),
                failures: p.failures(),
                timeouts: p.timeouts(),
                breaker_skips: p.breaker_skips(),
                breaker_state: p.breaker_state().to_string(),
            })
            .collect();
        forwards.sort_by(|a, b| a.peer.cmp(&b.peer));
        RingResult {
            node: self.node_id.clone(),
            nodes: self.ring.nodes().to_vec(),
            vnodes: self.ring.vnodes() as u64,
            replicas: self.replicas as u64,
            owned_cache_keys: owned,
            replica_cache_keys: replica,
            foreign_cache_keys: foreign,
            hops_received: self.hops_received.load(Ordering::Relaxed),
            failovers: self.failovers.load(Ordering::Relaxed),
            forwards,
        }
    }

    /// Counts this node's cached **front** keys by ring role: `(primary
    /// owner, replica owner, neither)`. Only front entries are counted —
    /// they are keyed by the instance hash the ring places; per-query
    /// result entries live in a different hash space where ring ownership
    /// is meaningless. Replica keys are `CacheFill` products (or survived
    /// a membership change); foreign keys are peer-down fallback
    /// artifacts — correct answers, duplicated capacity.
    fn cache_census(&self) -> (u64, u64, u64) {
        let mut owned = 0u64;
        let mut replica = 0u64;
        let mut foreign = 0u64;
        for key in self.service.front_cache_keys() {
            let owners = self.ring.owners(key, self.replicas);
            match owners.iter().position(|o| *o == self.node_id) {
                Some(0) => owned += 1,
                Some(_) => replica += 1,
                None => foreign += 1,
            }
        }
        (owned, replica, foreign)
    }

    /// Appends the fleet gauges to the Prometheus-style `Metrics` dump.
    pub fn render_metrics(&self, out: &mut String) {
        use std::fmt::Write as _;
        let (owned, replica, foreign) = self.cache_census();
        let node = &self.node_id;
        writeln!(out, "rpwf_ring_nodes {}", self.ring.len()).expect("write");
        writeln!(out, "rpwf_ring_vnodes {}", self.ring.vnodes()).expect("write");
        writeln!(out, "rpwf_ring_replicas {}", self.replicas).expect("write");
        writeln!(out, "rpwf_ring_owned_cache_keys{{node=\"{node}\"}} {owned}").expect("write");
        writeln!(
            out,
            "rpwf_ring_replica_cache_keys{{node=\"{node}\"}} {replica}"
        )
        .expect("write");
        writeln!(
            out,
            "rpwf_ring_foreign_cache_keys{{node=\"{node}\"}} {foreign}"
        )
        .expect("write");
        writeln!(
            out,
            "rpwf_ring_hops_received_total{{node=\"{node}\"}} {}",
            self.hops_received.load(Ordering::Relaxed)
        )
        .expect("write");
        writeln!(
            out,
            "rpwf_ring_owned_served_total{{node=\"{node}\"}} {}",
            self.owned_served.load(Ordering::Relaxed)
        )
        .expect("write");
        writeln!(
            out,
            "rpwf_ring_fallbacks_total{{node=\"{node}\"}} {}",
            self.fallbacks.load(Ordering::Relaxed)
        )
        .expect("write");
        writeln!(
            out,
            "rpwf_ring_failovers_total{{node=\"{node}\"}} {}",
            self.failovers.load(Ordering::Relaxed)
        )
        .expect("write");
        let mut peers: Vec<&Peer> = self.peers.values().map(AsRef::as_ref).collect();
        peers.sort_by_key(|p| p.addr().to_string());
        for peer in peers {
            writeln!(
                out,
                "rpwf_ring_forwards_total{{peer=\"{}\"}} {}",
                peer.addr(),
                peer.forwards()
            )
            .expect("write");
            writeln!(
                out,
                "rpwf_ring_forward_failures_total{{peer=\"{}\"}} {}",
                peer.addr(),
                peer.failures()
            )
            .expect("write");
            writeln!(
                out,
                "rpwf_ring_forward_timeouts_total{{peer=\"{}\"}} {}",
                peer.addr(),
                peer.timeouts()
            )
            .expect("write");
            writeln!(
                out,
                "rpwf_ring_breaker_skips_total{{peer=\"{}\"}} {}",
                peer.addr(),
                peer.breaker_skips()
            )
            .expect("write");
            // 0 = closed, 1 = half-open, 2 = open.
            writeln!(
                out,
                "rpwf_peer_breaker_state{{peer=\"{}\"}} {}",
                peer.addr(),
                peer.breaker_gauge()
            )
            .expect("write");
        }
    }
}

impl Router for RingRouter {
    fn service(&self) -> &Arc<SolverService> {
        &self.service
    }

    fn is_sharded(&self) -> bool {
        true
    }

    fn handles_inline(&self, line: &str) -> bool {
        // Substring screen only — forwarders serialize compactly, so a
        // hopped line always contains this byte sequence, and JSON string
        // escaping means no legitimate payload can embed it. Skipping the
        // confirming parse keeps the owner's hot path at one deserialize
        // per forwarded request; a pathological false positive merely
        // runs that request on the reader thread instead of the pool
        // (handle_line still routes it by its parsed content — correct
        // either way).
        line.contains("\"hop\":true")
    }

    fn handle_line(
        &self,
        line: &str,
        received: Instant,
        cancel: Option<&CancelHandle>,
        emit: &mut dyn FnMut(String),
    ) {
        let Ok(request) = serde_json::from_str::<Request>(line.trim()) else {
            // Empty or malformed: the service renders the structured
            // `invalid` error.
            self.service.handle_line_into(line, received, cancel, emit);
            return;
        };
        if request.hop.unwrap_or(false) {
            // Forwarded by a peer: we are an owner (by its ring view);
            // never re-forward.
            self.hops_received.fetch_add(1, Ordering::Relaxed);
            self.handle_local(request, received, cancel, emit);
            return;
        }
        let owners = self.owners_of(&request.cmd);
        match owners.first() {
            Some(primary) if *primary == self.node_id => {
                self.owned_served.fetch_add(1, Ordering::Relaxed);
                self.handle_local(request, received, cancel, emit);
            }
            Some(_) => self.forward(&owners, request, received, cancel, emit),
            None => self.handle_local(request, received, cancel, emit),
        }
    }

    fn prepare_async_forward(&self, job: Job) -> Result<AsyncForward, Job> {
        let Some(router) = self.self_ref.get().and_then(Weak::upgrade) else {
            return Err(job);
        };
        let Ok(request) = serde_json::from_str::<Request>(job.line.trim()) else {
            return Err(job); // malformed: the sync path renders the error
        };
        if request.hop.unwrap_or(false) || request.trace.unwrap_or(false) {
            // Hops are answered locally; traced requests keep the
            // blocking path, whose entry-side span bookkeeping (failover
            // spans, owner-subtree grafting) lives on the worker.
            return Err(job);
        }
        let owners = self.owners_of(&request.cmd);
        match owners.first() {
            Some(primary) if *primary != self.node_id => {}
            _ => return Err(job), // local command or locally owned key
        }
        let mut hopped = request.clone();
        hopped.hop = Some(true);
        let hopped_line = serde_json::to_string(&hopped).expect("requests always serialize");
        // Same wait bound as the synchronous `forward` path.
        let read_timeout = match request.deadline_ms {
            Some(ms) => {
                (job.received + Duration::from_millis(ms)).saturating_duration_since(Instant::now())
                    + FORWARD_GRACE
            }
            None => self.peer_read.unwrap_or(FORWARD_WATCHDOG),
        };
        Ok(AsyncForward {
            router,
            owners,
            hopped_line,
            original_line: job.line,
            read_timeout,
            received: job.received,
            cancel: job.cancel,
            respond: job.respond,
        })
    }
}
