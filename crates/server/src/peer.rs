//! Pooled JSON-lines clients for fleet peers.
//!
//! A [`Peer`] wraps one remote `rpwf serve` instance behind a small pool
//! of reusable TCP connections. Forwarding a request checks a connection
//! out (connecting lazily with a short timeout when the pool is dry),
//! writes the request line, reads every response line of that request
//! (`part` lines until the closing `ok`/`error`), and parks the
//! connection for reuse. A connection that errors mid-call is dropped,
//! and a call that failed on a *pooled* connection is retried once on a
//! fresh one — a parked socket may have died with the peer and come back.
//!
//! Calls are whole-request: the forwarded response lines are buffered and
//! only handed to the caller when the request completed, so a mid-stream
//! peer failure can still fall back to a clean local solve without the
//! client ever seeing a half-answered request. (The cost: a forwarded
//! chunked `Pareto` buffers at the forwarding node; owner-routed clients
//! keep the end-to-end streaming bound.)

use crate::protocol::Response;
use rpwf_core::trace::TraceScope;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// How long a dry-pool connect may take before the peer counts as down.
const CONNECT_TIMEOUT: Duration = Duration::from_millis(500);

/// Idle connections parked per peer (excess sockets are dropped).
const MAX_IDLE: usize = 8;

/// A read-timeout error (platform-dependent kind).
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// A pooled client for one fleet peer.
pub struct Peer {
    addr: String,
    idle: Mutex<Vec<BufReader<TcpStream>>>,
    forwards: AtomicU64,
    failures: AtomicU64,
}

impl Peer {
    /// A client for the peer at `addr` (`host:port`). No connection is
    /// opened until the first call.
    #[must_use]
    pub fn new(addr: impl Into<String>) -> Self {
        Peer {
            addr: addr.into(),
            idle: Mutex::new(Vec::new()),
            forwards: AtomicU64::new(0),
            failures: AtomicU64::new(0),
        }
    }

    /// The peer's address (also its ring identity).
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Requests successfully answered by this peer.
    #[must_use]
    pub fn forwards(&self) -> u64 {
        self.forwards.load(Ordering::Relaxed)
    }

    /// Calls that failed (after the one pooled-connection retry) and fell
    /// back to the caller.
    #[must_use]
    pub fn failures(&self) -> u64 {
        self.failures.load(Ordering::Relaxed)
    }

    /// Sends one request line and returns every response line of that
    /// request, in order (zero or more `part` lines, then the closing
    /// `ok`/`error` line). `read_timeout` bounds each response-line read
    /// (the forwarding layer derives it from the request deadline, with a
    /// long watchdog for deadline-free requests), so a peer that accepts
    /// but never answers — partitioned, paused, wedged — cannot pin the
    /// calling worker forever; the timeout surfaces as an error and the
    /// caller falls back to a local solve.
    ///
    /// # Errors
    /// Propagates connect/write/read failures and read timeouts — the
    /// caller treats any error as "peer down" and solves locally.
    pub fn call(&self, line: &str, read_timeout: Duration) -> std::io::Result<Vec<String>> {
        self.call_traced(line, read_timeout, None)
    }

    /// [`call`](Self::call) recording connection-level spans into `scope`
    /// (`peer.connect` around the checkout, `peer.retry` when a stale
    /// pooled socket forces a fresh attempt, `peer.roundtrip` around the
    /// write-and-read exchange). With `scope: None` this *is* `call`.
    ///
    /// # Errors
    /// Same contract as [`call`](Self::call).
    pub fn call_traced(
        &self,
        line: &str,
        read_timeout: Duration,
        scope: Option<TraceScope<'_>>,
    ) -> std::io::Result<Vec<String>> {
        let outcome = self.try_call(line, read_timeout, scope);
        match &outcome {
            Ok(_) => self.forwards.fetch_add(1, Ordering::Relaxed),
            Err(_) => self.failures.fetch_add(1, Ordering::Relaxed),
        };
        outcome
    }

    fn try_call(
        &self,
        line: &str,
        read_timeout: Duration,
        scope: Option<TraceScope<'_>>,
    ) -> std::io::Result<Vec<String>> {
        let read_timeout = read_timeout.max(Duration::from_millis(1));
        let connect_span = scope.map(|s| s.trace.begin("peer.connect", Some(s.parent)));
        let checked = self.checkout();
        if let (Some(s), Some(handle)) = (scope, connect_span.as_ref()) {
            s.trace.end(handle);
            let pooled = checked.as_ref().is_ok_and(|&(_, pooled)| pooled);
            s.trace.attr(handle.index(), "pooled", pooled.to_string());
            s.trace
                .attr(handle.index(), "ok", checked.is_ok().to_string());
        }
        let (mut conn, pooled) = checked?;
        conn.get_ref().set_read_timeout(Some(read_timeout))?;
        let roundtrip_span = scope.map(|s| s.trace.begin("peer.roundtrip", Some(s.parent)));
        let mut outcome = Self::roundtrip(&mut conn, line);
        if pooled && outcome.as_ref().is_err_and(|e| !is_timeout(e)) {
            // The parked socket may simply be stale (instant write error
            // or EOF); one fresh attempt. A *timeout* is different: the
            // peer is up but not answering — retrying would double the
            // client's wait and re-run the solve, so fail to the local
            // fallback immediately.
            if let Some(s) = scope {
                s.trace.add(
                    "peer.retry",
                    Some(s.parent),
                    s.trace.elapsed_us(),
                    0,
                    vec![("reason".to_owned(), "stale-pooled-connection".to_owned())],
                );
            }
            if let Ok(fresh) = Self::connect(&self.addr) {
                conn = fresh;
                conn.get_ref().set_read_timeout(Some(read_timeout))?;
                outcome = Self::roundtrip(&mut conn, line);
            }
        }
        if let (Some(s), Some(handle)) = (scope, roundtrip_span.as_ref()) {
            s.trace.end(handle);
            s.trace
                .attr(handle.index(), "ok", outcome.is_ok().to_string());
            if let Ok(lines) = &outcome {
                s.trace
                    .attr(handle.index(), "lines", lines.len().to_string());
            }
        }
        if outcome.is_ok() {
            self.park(conn);
        }
        outcome
    }

    /// A connection from the pool (flagged `true`) or a fresh one.
    fn checkout(&self) -> std::io::Result<(BufReader<TcpStream>, bool)> {
        if let Some(conn) = self.idle.lock().expect("peer pool lock").pop() {
            return Ok((conn, true));
        }
        Ok((Self::connect(&self.addr)?, false))
    }

    fn connect(addr: &str) -> std::io::Result<BufReader<TcpStream>> {
        let resolved = addr.to_socket_addrs()?.next().ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::AddrNotAvailable,
                format!("peer address {addr:?} resolves to nothing"),
            )
        })?;
        let stream = TcpStream::connect_timeout(&resolved, CONNECT_TIMEOUT)?;
        stream.set_nodelay(true)?;
        Ok(BufReader::new(stream))
    }

    fn park(&self, conn: BufReader<TcpStream>) {
        let mut idle = self.idle.lock().expect("peer pool lock");
        if idle.len() < MAX_IDLE {
            idle.push(conn);
        }
    }

    /// One request/response exchange on an exclusive connection.
    fn roundtrip(conn: &mut BufReader<TcpStream>, line: &str) -> std::io::Result<Vec<String>> {
        let stream = conn.get_mut();
        stream.write_all(line.as_bytes())?;
        stream.write_all(b"\n")?;
        stream.flush()?;
        let mut lines = Vec::with_capacity(1);
        loop {
            let mut buf = String::new();
            if conn.read_line(&mut buf)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "peer closed the connection mid-request",
                ));
            }
            let response = buf.trim_end_matches(['\n', '\r']).to_string();
            // `part` lines continue the same request; anything else (ok,
            // error, or unparseable garbage) terminates it.
            let done = serde_json::from_str::<Response>(&response)
                .map_or(true, |parsed| parsed.status != "part");
            lines.push(response);
            if done {
                return Ok(lines);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unreachable_peer_fails_fast_and_counts() {
        // A port from the TEST-NET-3 doc range: nothing listens there.
        let peer = Peer::new("127.0.0.1:1");
        let err = peer.call("{\"cmd\":\"Ping\"}", Duration::from_secs(1));
        assert!(err.is_err());
        assert_eq!(peer.failures(), 1);
        assert_eq!(peer.forwards(), 0);
    }

    #[test]
    fn call_roundtrips_and_reuses_the_connection() {
        use std::net::TcpListener;
        // A tiny hand-rolled echo server answering one ok-line per line.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let mut stream = stream;
            for _ in 0..2 {
                let mut line = String::new();
                reader.read_line(&mut line).expect("read");
                writeln!(
                    stream,
                    "{{\"id\":1,\"status\":\"ok\",\"result\":null,\"error\":null,\
                     \"meta\":{{\"cache_hit\":false,\"solver\":null,\
                     \"exact_complete\":null,\"elapsed_us\":1,\"node\":null}}}}"
                )
                .expect("write");
            }
            // Count distinct connections: exactly one accept handled both
            // calls, so reaching here twice proves pooling.
        });
        let peer = Peer::new(addr.to_string());
        for _ in 0..2 {
            let lines = peer
                .call("{\"cmd\":\"Ping\"}", Duration::from_secs(5))
                .expect("call");
            assert_eq!(lines.len(), 1);
            assert!(lines[0].contains("\"status\":\"ok\""), "{}", lines[0]);
        }
        assert_eq!(peer.forwards(), 2);
        server.join().expect("server thread");
    }
}
