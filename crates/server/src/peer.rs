//! Pooled JSON-lines clients for fleet peers, with per-peer circuit
//! breakers.
//!
//! A [`Peer`] wraps one remote `rpwf serve` instance behind a small pool
//! of reusable TCP connections. Forwarding a request checks a connection
//! out (connecting lazily with a short timeout when the pool is dry),
//! writes the request line, reads every response line of that request
//! (`part` lines until the closing `ok`/`error`), and parks the
//! connection for reuse. A connection that errors mid-call is dropped,
//! and a call that failed on a *pooled* connection is retried once on a
//! fresh one — a parked socket may have died with the peer and come back.
//!
//! Calls are whole-request: the forwarded response lines are buffered and
//! only handed to the caller when the request completed, so a mid-stream
//! peer failure can still fall back to a clean local solve without the
//! client ever seeing a half-answered request. (The cost: a forwarded
//! chunked `Pareto` buffers at the forwarding node; owner-routed clients
//! keep the end-to-end streaming bound.)
//!
//! ## Circuit breaker
//!
//! Every peer carries a three-state breaker so a dead node costs the
//! connect timeout **once**, not on every forwarded request:
//!
//! * **closed** — calls flow normally. [`BreakerConfig::threshold`]
//!   *consecutive* failed calls (connect/IO errors and read timeouts
//!   alike) trip it open.
//! * **open** — calls are rejected instantly (no connect attempt) until
//!   a seeded jittered-exponential delay
//!   ([`rpwf_core::backoff::JitteredBackoff`]) expires. Rejections are
//!   counted in [`Peer::breaker_skips`] and spanned as
//!   `peer.breaker_open`; the router treats them like any peer failure
//!   (failover/fallback), so after the first trip a dead primary adds
//!   ~0 latency.
//! * **half-open** — the first call after the delay goes through as a
//!   lone probe (concurrent calls are still rejected). Success closes
//!   the breaker and resets the backoff; failure re-opens it with the
//!   next (longer) delay.

use crate::protocol::Response;
use rpwf_core::backoff::JitteredBackoff;
use rpwf_core::hash::CanonicalHasher;
use rpwf_core::trace::TraceScope;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Idle connections parked per peer (excess sockets are dropped).
const MAX_IDLE: usize = 8;

/// A read-timeout error (platform-dependent kind).
pub(crate) fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Circuit-breaker tuning.
#[derive(Clone, Debug)]
pub struct BreakerConfig {
    /// Consecutive failed calls that trip the breaker open.
    pub threshold: u32,
    /// First open-state delay (the jittered-backoff base).
    pub backoff_base: Duration,
    /// Largest open-state delay (the jittered-backoff cap).
    pub backoff_cap: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            threshold: 3,
            backoff_base: Duration::from_millis(250),
            backoff_cap: Duration::from_secs(15),
        }
    }
}

/// Peer-client tuning. [`Default`] preserves the pre-configurable
/// behavior (500 ms connect timeout).
#[derive(Clone, Debug)]
pub struct PeerConfig {
    /// How long a dry-pool connect may take before the peer counts as
    /// down.
    pub connect_timeout: Duration,
    /// Circuit-breaker thresholds and backoff window.
    pub breaker: BreakerConfig,
    /// Seed for the breaker's jittered backoff (mixed with the peer
    /// address so peers never share a jitter stream).
    pub seed: u64,
}

impl Default for PeerConfig {
    fn default() -> Self {
        PeerConfig {
            connect_timeout: Duration::from_millis(500),
            breaker: BreakerConfig::default(),
            seed: 0xCAFE,
        }
    }
}

/// Breaker state machine (behind the peer's mutex).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BreakerPhase {
    Closed,
    Open { until: Instant },
    HalfOpen,
}

struct BreakerInner {
    phase: BreakerPhase,
    consecutive_failures: u32,
    backoff: JitteredBackoff,
}

/// A pooled client for one fleet peer.
pub struct Peer {
    addr: String,
    config: PeerConfig,
    idle: Mutex<Vec<BufReader<TcpStream>>>,
    breaker: Mutex<BreakerInner>,
    forwards: AtomicU64,
    failures: AtomicU64,
    timeouts: AtomicU64,
    breaker_skips: AtomicU64,
}

impl Peer {
    /// A client for the peer at `addr` (`host:port`) with default
    /// tuning. No connection is opened until the first call.
    #[must_use]
    pub fn new(addr: impl Into<String>) -> Self {
        Self::with_config(addr, PeerConfig::default())
    }

    /// A client with explicit tuning.
    #[must_use]
    pub fn with_config(addr: impl Into<String>, config: PeerConfig) -> Self {
        let addr = addr.into();
        // Decorrelate jitter across peers sharing one configured seed.
        let mut hasher = CanonicalHasher::new();
        hasher.write_str("peer-backoff");
        hasher.write_str(&addr);
        let seed = config.seed ^ (hasher.finish() as u64);
        let backoff = JitteredBackoff::new(
            config.breaker.backoff_base,
            config.breaker.backoff_cap,
            seed,
        );
        Peer {
            addr,
            config,
            idle: Mutex::new(Vec::new()),
            breaker: Mutex::new(BreakerInner {
                phase: BreakerPhase::Closed,
                consecutive_failures: 0,
                backoff,
            }),
            forwards: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            breaker_skips: AtomicU64::new(0),
        }
    }

    /// The peer's address (also its ring identity).
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The tuning in effect.
    #[must_use]
    pub fn config(&self) -> &PeerConfig {
        &self.config
    }

    /// Requests successfully answered by this peer.
    #[must_use]
    pub fn forwards(&self) -> u64 {
        self.forwards.load(Ordering::Relaxed)
    }

    /// Calls that failed with a connect or I/O error (after the one
    /// pooled-connection retry) and fell back to the caller. Read
    /// timeouts are counted separately in [`timeouts`](Self::timeouts) —
    /// a refused connect means the peer is *down*, a timeout means it is
    /// up but not answering, and the two call for different operator
    /// responses.
    #[must_use]
    pub fn failures(&self) -> u64 {
        self.failures.load(Ordering::Relaxed)
    }

    /// Calls that timed out waiting for a response line.
    #[must_use]
    pub fn timeouts(&self) -> u64 {
        self.timeouts.load(Ordering::Relaxed)
    }

    /// Calls rejected instantly because the breaker was open (no connect
    /// was attempted).
    #[must_use]
    pub fn breaker_skips(&self) -> u64 {
        self.breaker_skips.load(Ordering::Relaxed)
    }

    /// The breaker's current state: `"closed"`, `"open"`, or
    /// `"half-open"`. An expired open delay still reads `"open"` until
    /// the next call promotes it to the half-open probe.
    #[must_use]
    pub fn breaker_state(&self) -> &'static str {
        match self.breaker.lock().expect("peer breaker lock").phase {
            BreakerPhase::Closed => "closed",
            BreakerPhase::Open { .. } => "open",
            BreakerPhase::HalfOpen => "half-open",
        }
    }

    /// [`breaker_state`](Self::breaker_state) as a metrics gauge:
    /// 0 = closed, 1 = half-open, 2 = open.
    #[must_use]
    pub fn breaker_gauge(&self) -> u8 {
        match self.breaker.lock().expect("peer breaker lock").phase {
            BreakerPhase::Closed => 0,
            BreakerPhase::HalfOpen => 1,
            BreakerPhase::Open { .. } => 2,
        }
    }

    /// Admission control: `Ok` when the call may proceed (possibly as
    /// the half-open probe), `Err` when the breaker rejects it.
    fn admit(&self) -> std::io::Result<()> {
        let mut breaker = self.breaker.lock().expect("peer breaker lock");
        match breaker.phase {
            BreakerPhase::Closed => Ok(()),
            BreakerPhase::Open { until } => {
                if Instant::now() >= until {
                    // This call is the probe; concurrent calls keep
                    // seeing a non-closed phase and are rejected.
                    breaker.phase = BreakerPhase::HalfOpen;
                    Ok(())
                } else {
                    Err(std::io::Error::new(
                        std::io::ErrorKind::ConnectionRefused,
                        format!("breaker open for peer {}", self.addr),
                    ))
                }
            }
            BreakerPhase::HalfOpen => Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionRefused,
                format!("breaker half-open for peer {} (probe in flight)", self.addr),
            )),
        }
    }

    /// Reactor-path admission: `true` when a call may proceed. A
    /// rejection is counted in [`breaker_skips`](Self::breaker_skips),
    /// exactly like the synchronous path's breaker rejection.
    pub(crate) fn try_admit(&self) -> bool {
        if self.admit().is_ok() {
            true
        } else {
            self.breaker_skips.fetch_add(1, Ordering::Relaxed);
            false
        }
    }

    /// Reactor-path checkout of an idle pooled connection, converted to
    /// nonblocking for the poll loop. `None` when the pool is dry (the
    /// reactor then connects on a helper thread). Any bytes buffered in
    /// the parked reader would have to be protocol garbage from a
    /// misbehaving peer; the conversion drops them.
    pub(crate) fn take_idle_nonblocking(&self) -> Option<TcpStream> {
        let conn = self.idle.lock().expect("peer pool lock").pop()?;
        let stream = conn.into_inner();
        stream.set_read_timeout(None).ok()?;
        stream.set_nonblocking(true).ok()?;
        Some(stream)
    }

    /// Reactor-path fresh connect (blocking, bounded by the configured
    /// connect timeout — the reactor runs it on a helper thread). The
    /// returned stream is nonblocking.
    ///
    /// # Errors
    /// Propagates resolution and connect failures.
    pub(crate) fn connect_nonblocking(&self) -> std::io::Result<TcpStream> {
        let stream = Self::connect(&self.addr, self.config.connect_timeout)?.into_inner();
        stream.set_nonblocking(true)?;
        Ok(stream)
    }

    /// Returns a reactor-checked-out connection to the idle pool,
    /// restored to blocking mode for the synchronous callers.
    pub(crate) fn park_nonblocking(&self, stream: TcpStream) {
        if stream.set_nonblocking(false).is_ok() {
            self.park(BufReader::new(stream));
        }
    }

    /// Reactor-path outcome recording: success. Mirrors the counter and
    /// breaker bookkeeping of [`call`](Self::call).
    pub(crate) fn record_async_success(&self) {
        self.forwards.fetch_add(1, Ordering::Relaxed);
        self.record_outcome(true);
    }

    /// Reactor-path outcome recording: failure, split by timeout-ness
    /// like the synchronous path.
    pub(crate) fn record_async_failure(&self, timeout: bool) {
        if timeout {
            self.timeouts.fetch_add(1, Ordering::Relaxed);
        } else {
            self.failures.fetch_add(1, Ordering::Relaxed);
        }
        self.record_outcome(false);
    }

    /// Feeds a call outcome into the breaker state machine.
    fn record_outcome(&self, ok: bool) {
        let mut breaker = self.breaker.lock().expect("peer breaker lock");
        if ok {
            breaker.phase = BreakerPhase::Closed;
            breaker.consecutive_failures = 0;
            breaker.backoff.reset();
            return;
        }
        breaker.consecutive_failures = breaker.consecutive_failures.saturating_add(1);
        let trip = match breaker.phase {
            // A failed probe re-opens immediately with a longer delay.
            BreakerPhase::HalfOpen => true,
            BreakerPhase::Closed => breaker.consecutive_failures >= self.config.breaker.threshold,
            BreakerPhase::Open { .. } => false,
        };
        if trip {
            let delay = breaker.backoff.next_delay();
            breaker.phase = BreakerPhase::Open {
                until: Instant::now() + delay,
            };
        }
    }

    /// Sends one request line and returns every response line of that
    /// request, in order (zero or more `part` lines, then the closing
    /// `ok`/`error` line). `read_timeout` bounds each response-line read
    /// (the forwarding layer derives it from the request deadline, with a
    /// long watchdog for deadline-free requests), so a peer that accepts
    /// but never answers — partitioned, paused, wedged — cannot pin the
    /// calling worker forever; the timeout surfaces as an error and the
    /// caller falls back to a local solve.
    ///
    /// # Errors
    /// Propagates connect/write/read failures, read timeouts, and
    /// breaker rejections — the caller treats any error as "peer down"
    /// and fails over or solves locally.
    pub fn call(&self, line: &str, read_timeout: Duration) -> std::io::Result<Vec<String>> {
        self.call_traced(line, read_timeout, None)
    }

    /// [`call`](Self::call) recording connection-level spans into `scope`
    /// (`peer.breaker_open` when the breaker rejects the call outright,
    /// `peer.connect` around the checkout, `peer.retry` when a stale
    /// pooled socket forces a fresh attempt, `peer.roundtrip` around the
    /// write-and-read exchange). With `scope: None` this *is* `call`.
    ///
    /// # Errors
    /// Same contract as [`call`](Self::call).
    pub fn call_traced(
        &self,
        line: &str,
        read_timeout: Duration,
        scope: Option<TraceScope<'_>>,
    ) -> std::io::Result<Vec<String>> {
        if let Err(rejected) = self.admit() {
            self.breaker_skips.fetch_add(1, Ordering::Relaxed);
            if let Some(s) = scope {
                s.trace.add(
                    "peer.breaker_open",
                    Some(s.parent),
                    s.trace.elapsed_us(),
                    0,
                    vec![("peer".to_owned(), self.addr.clone())],
                );
            }
            return Err(rejected);
        }
        let outcome = self.try_call(line, read_timeout, scope);
        match &outcome {
            Ok(_) => {
                self.forwards.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) if is_timeout(e) => {
                self.timeouts.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.failures.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.record_outcome(outcome.is_ok());
        outcome
    }

    fn try_call(
        &self,
        line: &str,
        read_timeout: Duration,
        scope: Option<TraceScope<'_>>,
    ) -> std::io::Result<Vec<String>> {
        let read_timeout = read_timeout.max(Duration::from_millis(1));
        let connect_span = scope.map(|s| s.trace.begin("peer.connect", Some(s.parent)));
        let checked = self.checkout();
        if let (Some(s), Some(handle)) = (scope, connect_span.as_ref()) {
            s.trace.end(handle);
            let pooled = checked.as_ref().is_ok_and(|&(_, pooled)| pooled);
            s.trace.attr(handle.index(), "pooled", pooled.to_string());
            s.trace
                .attr(handle.index(), "ok", checked.is_ok().to_string());
        }
        let (mut conn, pooled) = checked?;
        conn.get_ref().set_read_timeout(Some(read_timeout))?;
        let roundtrip_span = scope.map(|s| s.trace.begin("peer.roundtrip", Some(s.parent)));
        let mut outcome = Self::roundtrip(&mut conn, line);
        if pooled && outcome.as_ref().is_err_and(|e| !is_timeout(e)) {
            // The parked socket may simply be stale (instant write error
            // or EOF); one fresh attempt. A *timeout* is different: the
            // peer is up but not answering — retrying would double the
            // client's wait and re-run the solve, so fail to the local
            // fallback immediately.
            if let Some(s) = scope {
                s.trace.add(
                    "peer.retry",
                    Some(s.parent),
                    s.trace.elapsed_us(),
                    0,
                    vec![("reason".to_owned(), "stale-pooled-connection".to_owned())],
                );
            }
            if let Ok(fresh) = Self::connect(&self.addr, self.config.connect_timeout) {
                conn = fresh;
                conn.get_ref().set_read_timeout(Some(read_timeout))?;
                outcome = Self::roundtrip(&mut conn, line);
            }
        }
        if let (Some(s), Some(handle)) = (scope, roundtrip_span.as_ref()) {
            s.trace.end(handle);
            s.trace
                .attr(handle.index(), "ok", outcome.is_ok().to_string());
            if let Ok(lines) = &outcome {
                s.trace
                    .attr(handle.index(), "lines", lines.len().to_string());
            }
        }
        if outcome.is_ok() {
            self.park(conn);
        }
        outcome
    }

    /// A connection from the pool (flagged `true`) or a fresh one.
    fn checkout(&self) -> std::io::Result<(BufReader<TcpStream>, bool)> {
        if let Some(conn) = self.idle.lock().expect("peer pool lock").pop() {
            return Ok((conn, true));
        }
        Ok((
            Self::connect(&self.addr, self.config.connect_timeout)?,
            false,
        ))
    }

    fn connect(addr: &str, timeout: Duration) -> std::io::Result<BufReader<TcpStream>> {
        let resolved = addr.to_socket_addrs()?.next().ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::AddrNotAvailable,
                format!("peer address {addr:?} resolves to nothing"),
            )
        })?;
        let stream = TcpStream::connect_timeout(&resolved, timeout)?;
        stream.set_nodelay(true)?;
        Ok(BufReader::new(stream))
    }

    fn park(&self, conn: BufReader<TcpStream>) {
        let mut idle = self.idle.lock().expect("peer pool lock");
        if idle.len() < MAX_IDLE {
            idle.push(conn);
        }
    }

    /// One request/response exchange on an exclusive connection.
    fn roundtrip(conn: &mut BufReader<TcpStream>, line: &str) -> std::io::Result<Vec<String>> {
        let stream = conn.get_mut();
        stream.write_all(line.as_bytes())?;
        stream.write_all(b"\n")?;
        stream.flush()?;
        let mut lines = Vec::with_capacity(1);
        loop {
            let mut buf = String::new();
            if conn.read_line(&mut buf)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "peer closed the connection mid-request",
                ));
            }
            let response = buf.trim_end_matches(['\n', '\r']).to_string();
            // `part` lines continue the same request, `ok`/`error` lines
            // terminate it. A line that does not parse as a response at
            // all is a *protocol* failure (corrupted or misbehaving
            // peer): surface it as an error so the caller fails over or
            // falls back instead of relaying garbage to the client.
            let Ok(parsed) = serde_json::from_str::<Response>(&response) else {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "peer returned an unparseable response line",
                ));
            };
            let done = parsed.status != "part";
            lines.push(response);
            if done {
                return Ok(lines);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unreachable_peer_fails_fast_and_counts() {
        // A port from the TEST-NET-3 doc range: nothing listens there.
        let peer = Peer::new("127.0.0.1:1");
        let err = peer.call("{\"cmd\":\"Ping\"}", Duration::from_secs(1));
        assert!(err.is_err());
        assert_eq!(peer.failures(), 1);
        assert_eq!(peer.timeouts(), 0);
        assert_eq!(peer.forwards(), 0);
        assert_eq!(peer.breaker_state(), "closed", "one failure must not trip");
    }

    #[test]
    fn breaker_opens_after_threshold_and_skips_connects() {
        let peer = Peer::with_config(
            "127.0.0.1:1",
            PeerConfig {
                breaker: BreakerConfig {
                    threshold: 3,
                    backoff_base: Duration::from_secs(60),
                    backoff_cap: Duration::from_secs(120),
                },
                ..Default::default()
            },
        );
        for _ in 0..3 {
            assert!(peer
                .call("{\"cmd\":\"Ping\"}", Duration::from_secs(1))
                .is_err());
        }
        assert_eq!(peer.breaker_state(), "open");
        assert_eq!(peer.failures(), 3);
        // With a 60 s backoff the next calls are rejected without any
        // connect attempt: the failure counter must not move.
        let start = Instant::now();
        for _ in 0..5 {
            assert!(peer
                .call("{\"cmd\":\"Ping\"}", Duration::from_secs(1))
                .is_err());
        }
        assert!(
            start.elapsed() < Duration::from_millis(200),
            "open-breaker calls must be instant, took {:?}",
            start.elapsed()
        );
        assert_eq!(peer.failures(), 3, "skipped calls are not failures");
        assert_eq!(peer.breaker_skips(), 5);
    }

    #[test]
    fn breaker_recovers_through_half_open_probe() {
        use std::net::TcpListener;
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let peer = Peer::with_config(
            addr.to_string(),
            PeerConfig {
                breaker: BreakerConfig {
                    threshold: 1,
                    backoff_base: Duration::from_millis(1),
                    backoff_cap: Duration::from_millis(2),
                },
                ..Default::default()
            },
        );
        // Trip the breaker: nothing is accepting yet, and the listener's
        // backlog is bypassed by dropping the pending connection.
        drop(listener);
        assert!(peer
            .call("{\"cmd\":\"Ping\"}", Duration::from_secs(1))
            .is_err());
        assert_eq!(peer.breaker_state(), "open");
        // Bring the peer back on the same port.
        let listener = TcpListener::bind(addr).expect("rebind");
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let mut stream = stream;
            let mut line = String::new();
            reader.read_line(&mut line).expect("read");
            writeln!(
                stream,
                "{{\"id\":1,\"status\":\"ok\",\"result\":null,\"error\":null,\
                 \"meta\":{{\"cache_hit\":false,\"solver\":null,\
                 \"exact_complete\":null,\"elapsed_us\":1,\"node\":null}}}}"
            )
            .expect("write");
        });
        // Wait out the (tiny) open delay, then probe: success closes.
        std::thread::sleep(Duration::from_millis(10));
        let lines = peer
            .call("{\"cmd\":\"Ping\"}", Duration::from_secs(5))
            .expect("probe succeeds");
        assert_eq!(lines.len(), 1);
        assert_eq!(peer.breaker_state(), "closed");
        server.join().expect("server thread");
    }

    #[test]
    fn call_roundtrips_and_reuses_the_connection() {
        use std::net::TcpListener;
        // A tiny hand-rolled echo server answering one ok-line per line.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let mut stream = stream;
            for _ in 0..2 {
                let mut line = String::new();
                reader.read_line(&mut line).expect("read");
                writeln!(
                    stream,
                    "{{\"id\":1,\"status\":\"ok\",\"result\":null,\"error\":null,\
                     \"meta\":{{\"cache_hit\":false,\"solver\":null,\
                     \"exact_complete\":null,\"elapsed_us\":1,\"node\":null}}}}"
                )
                .expect("write");
            }
            // Count distinct connections: exactly one accept handled both
            // calls, so reaching here twice proves pooling.
        });
        let peer = Peer::new(addr.to_string());
        for _ in 0..2 {
            let lines = peer
                .call("{\"cmd\":\"Ping\"}", Duration::from_secs(5))
                .expect("call");
            assert_eq!(lines.len(), 1);
            assert!(lines[0].contains("\"status\":\"ok\""), "{}", lines[0]);
        }
        assert_eq!(peer.forwards(), 2);
        server.join().expect("server thread");
    }

    #[test]
    fn corrupt_response_line_is_an_error_not_a_relay() {
        use std::net::TcpListener;
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let mut stream = stream;
            let mut line = String::new();
            reader.read_line(&mut line).expect("read");
            writeln!(stream, "!!corrupted-bytes!!").expect("write");
        });
        let peer = Peer::new(addr.to_string());
        let err = peer
            .call("{\"cmd\":\"Ping\"}", Duration::from_secs(5))
            .expect_err("garbage must not be relayed");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert_eq!(peer.failures(), 1);
        server.join().expect("server thread");
    }
}
