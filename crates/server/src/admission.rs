//! Deadline-aware admission control over the bounded solve queue.
//!
//! Under overload a server has exactly two honest choices: queue a
//! request it can still finish in time, or reject it *immediately* with
//! a [`retry_after`](crate::protocol::WireError::retry_after_ms) hint.
//! Queueing past either bound converts overload into late timeouts — the
//! client waits its full deadline and still gets nothing, and the worker
//! that eventually dequeues the request burns time on an answer nobody
//! is waiting for. The `Admission` controller sheds in two cases:
//!
//! * **queue full** — the solve queue holds
//!   [`ServingOptions::max_queue`] requests already,
//! * **deadline unmeetable** — the request carries a deadline (or the
//!   deployment set [`ServingOptions::admission_deadline`] as a default
//!   for deadline-less traffic) and the predicted queue wait —
//!   `(queued + busy) × EWMA(service time) / workers` — already exceeds
//!   the remaining budget.
//!
//! Both rejections are produced on the reactor's event thread *before*
//! the request touches the pool, so the shed path costs a queue-depth
//! read and one envelope sniff — microseconds, which is what makes the
//! `retry_after` hint honest: by the time a well-behaved client retries,
//! the backlog it was quoted has drained.
//!
//! The controller deliberately runs *before* the cache: under real
//! overload a cache-hit request can be shed even though it would have
//! answered instantly. That trade keeps the admission decision O(1) and
//! the event loop unstallable; the lost hits only occur while the node
//! is saturated, exactly when shedding load is the point.

use crate::metrics::LatencyHistogram;
use crate::protocol::ServingStatsOut;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Serving-plane tuning for the reactor transport: event threads, the
/// bounded solve queue, and the admission controller's default deadline.
///
/// Kept separate from [`ServiceConfig`](crate::ServiceConfig) so
/// existing exhaustive `ServiceConfig` literals stay source-compatible;
/// transports take it through [`Server::bind_tuned`](crate::Server::bind_tuned)
/// and [`Server::bind_ring_tuned`](crate::Server::bind_ring_tuned).
#[derive(Clone, Debug, Default)]
pub struct ServingOptions {
    /// Reactor event threads multiplexing all connections
    /// (0 = the default, 2 — one thread drives thousands of idle
    /// connections; a second isolates a pathological client).
    pub event_threads: usize,
    /// Solve-queue bound: requests beyond this are shed with
    /// `overloaded` + `retry_after_ms` instead of queueing (0 = the
    /// default, 1024).
    pub max_queue: usize,
    /// Default deadline the admission controller assumes for requests
    /// that carry none — `None` means deadline-less requests are only
    /// shed by the queue bound, never by wait prediction.
    pub admission_deadline: Option<Duration>,
}

/// Default event threads when [`ServingOptions::event_threads`] is 0.
pub(crate) const DEFAULT_EVENT_THREADS: usize = 2;

/// Default solve-queue bound when [`ServingOptions::max_queue`] is 0.
pub(crate) const DEFAULT_MAX_QUEUE: usize = 1024;

impl ServingOptions {
    /// The effective event-thread count (resolving 0 to the default).
    #[must_use]
    pub fn effective_event_threads(&self) -> usize {
        if self.event_threads == 0 {
            DEFAULT_EVENT_THREADS
        } else {
            self.event_threads
        }
    }

    /// The effective solve-queue bound (resolving 0 to the default).
    #[must_use]
    pub fn effective_max_queue(&self) -> usize {
        if self.max_queue == 0 {
            DEFAULT_MAX_QUEUE
        } else {
            self.max_queue
        }
    }
}

/// Why a request was shed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ShedReason {
    /// The solve queue is at capacity.
    QueueFull,
    /// The predicted queue wait exceeds the request's remaining deadline.
    DeadlineUnmeetable,
}

/// The admission verdict for one request.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Verdict {
    /// Enqueue it.
    Admit,
    /// Reject fast with the given retry hint.
    Shed {
        /// Predicted milliseconds until a retry would be admitted.
        retry_after_ms: u64,
        /// Which bound fired.
        reason: ShedReason,
    },
}

/// Shared admission state: the queue/busy gauges the worker pool keeps
/// current, the service-time EWMA fed by completed jobs, and the shed
/// counters the metrics surfaces report.
#[derive(Debug)]
pub(crate) struct Admission {
    max_queue: u64,
    workers: u64,
    default_deadline: Option<Duration>,
    /// Requests sitting in the solve queue (incremented on submit,
    /// decremented when a worker dequeues).
    queued: AtomicU64,
    /// Workers currently executing a request.
    busy: AtomicU64,
    /// Exponentially weighted moving average of per-request service
    /// time, microseconds (α = 1/8; seeded by the first sample).
    ewma_service_us: AtomicU64,
    admitted: AtomicU64,
    shed_queue_full: AtomicU64,
    shed_deadline: AtomicU64,
    /// Latency of the shed path itself (receipt → reject emitted).
    shed_latency: LatencyHistogram,
}

impl Admission {
    /// A controller for a pool of `workers` threads behind a
    /// `max_queue`-bounded queue.
    pub(crate) fn new(
        max_queue: usize,
        workers: usize,
        default_deadline: Option<Duration>,
    ) -> Self {
        Admission {
            max_queue: max_queue.max(1) as u64,
            workers: workers.max(1) as u64,
            default_deadline,
            queued: AtomicU64::new(0),
            busy: AtomicU64::new(0),
            ewma_service_us: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            shed_queue_full: AtomicU64::new(0),
            shed_deadline: AtomicU64::new(0),
            shed_latency: LatencyHistogram::default(),
        }
    }

    /// Current solve-queue depth.
    pub(crate) fn queue_depth(&self) -> u64 {
        self.queued.load(Ordering::Relaxed)
    }

    /// Workers currently executing.
    pub(crate) fn busy_workers(&self) -> u64 {
        self.busy.load(Ordering::Relaxed)
    }

    /// Pool bookkeeping: a job entered the queue.
    pub(crate) fn on_enqueue(&self) {
        self.queued.fetch_add(1, Ordering::Relaxed);
    }

    /// Pool bookkeeping: a worker dequeued a job and starts executing.
    pub(crate) fn on_dequeue(&self) {
        self.queued.fetch_sub(1, Ordering::Relaxed);
        self.busy.fetch_add(1, Ordering::Relaxed);
    }

    /// Pool bookkeeping: the job finished after `service_us` of work.
    pub(crate) fn on_complete(&self, service_us: u64) {
        self.busy.fetch_sub(1, Ordering::Relaxed);
        // Lossy-but-lock-free EWMA: a concurrent update can drop one
        // sample's weight, which the next sample repairs.
        let old = self.ewma_service_us.load(Ordering::Relaxed);
        let new = if old == 0 {
            service_us
        } else {
            old - old / 8 + service_us / 8
        };
        self.ewma_service_us.store(new.max(1), Ordering::Relaxed);
    }

    /// Predicted queue wait for a request entering now, microseconds:
    /// everything ahead of it (queued + in execution), divided across
    /// the workers, at the observed per-request service time. Zero until
    /// the first completed request seeds the EWMA — a cold controller
    /// admits everything and lets the queue bound protect it.
    pub(crate) fn estimated_wait_us(&self) -> u64 {
        let ahead = self
            .queued
            .load(Ordering::Relaxed)
            .saturating_add(self.busy.load(Ordering::Relaxed));
        let ewma = self.ewma_service_us.load(Ordering::Relaxed);
        ahead.saturating_mul(ewma) / self.workers
    }

    /// The admission decision for a sheddable request with
    /// `deadline_remaining` budget left (`None` = the request carries no
    /// deadline; the configured default applies, if any).
    pub(crate) fn decide(&self, deadline_remaining: Option<Duration>) -> Verdict {
        let est_us = self.estimated_wait_us();
        if self.queued.load(Ordering::Relaxed) >= self.max_queue {
            self.shed_queue_full.fetch_add(1, Ordering::Relaxed);
            return Verdict::Shed {
                retry_after_ms: (est_us / 1000).max(1),
                reason: ShedReason::QueueFull,
            };
        }
        let budget = deadline_remaining.or(self.default_deadline);
        if let Some(remaining) = budget {
            if u128::from(est_us) > remaining.as_micros() {
                self.shed_deadline.fetch_add(1, Ordering::Relaxed);
                return Verdict::Shed {
                    retry_after_ms: (est_us / 1000).max(1),
                    reason: ShedReason::DeadlineUnmeetable,
                };
            }
        }
        self.admitted.fetch_add(1, Ordering::Relaxed);
        Verdict::Admit
    }

    /// Records how long one shed took from receipt to reject.
    pub(crate) fn record_shed_latency(&self, us: u64) {
        self.shed_latency.record(us);
    }

    /// p99 of the shed path, microseconds.
    pub(crate) fn shed_latency_p99_us(&self) -> u64 {
        self.shed_latency.quantile_us(0.99)
    }

    /// Fills the admission half of the `Stats` serving payload.
    pub(crate) fn fill_stats(&self, out: &mut ServingStatsOut) {
        out.queue_depth = self.queue_depth();
        out.queue_limit = self.max_queue;
        out.busy_workers = self.busy_workers();
        out.admitted = self.admitted.load(Ordering::Relaxed);
        out.shed_queue_full = self.shed_queue_full.load(Ordering::Relaxed);
        out.shed_deadline = self.shed_deadline.load(Ordering::Relaxed);
        out.shed_latency_p99_us = self.shed_latency_p99_us();
    }

    /// Appends the `rpwf_admission_*` series to the Prometheus dump.
    pub(crate) fn render_prometheus(&self, out: &mut String) {
        use std::fmt::Write as _;
        writeln!(out, "rpwf_admission_queue_depth {}", self.queue_depth()).expect("write");
        writeln!(out, "rpwf_admission_queue_limit {}", self.max_queue).expect("write");
        writeln!(out, "rpwf_admission_busy_workers {}", self.busy_workers()).expect("write");
        writeln!(
            out,
            "rpwf_admission_estimated_wait_us {}",
            self.estimated_wait_us()
        )
        .expect("write");
        writeln!(
            out,
            "rpwf_admission_admitted_total {}",
            self.admitted.load(Ordering::Relaxed)
        )
        .expect("write");
        writeln!(
            out,
            "rpwf_admission_shed_queue_full_total {}",
            self.shed_queue_full.load(Ordering::Relaxed)
        )
        .expect("write");
        writeln!(
            out,
            "rpwf_admission_shed_deadline_total {}",
            self.shed_deadline.load(Ordering::Relaxed)
        )
        .expect("write");
        self.shed_latency
            .render_prometheus_series("rpwf_admission_shed_latency_us", out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_controller_admits_everything() {
        let a = Admission::new(4, 2, None);
        for _ in 0..4 {
            assert!(matches!(a.decide(None), Verdict::Admit));
            a.on_enqueue();
        }
        // Queue now at capacity: the bound fires regardless of EWMA.
        match a.decide(None) {
            Verdict::Shed {
                reason,
                retry_after_ms,
            } => {
                assert_eq!(reason, ShedReason::QueueFull);
                assert!(retry_after_ms >= 1, "retry hint is always positive");
            }
            Verdict::Admit => panic!("full queue must shed"),
        }
    }

    #[test]
    fn deadline_shedding_uses_the_service_ewma() {
        let a = Admission::new(1024, 1, None);
        // Seed the EWMA: one request took 100 ms.
        a.on_enqueue();
        a.on_dequeue();
        a.on_complete(100_000);
        // Two requests ahead (one queued, one executing) at ~100 ms each
        // predicts ~200 ms of wait.
        a.on_enqueue();
        a.on_enqueue();
        a.on_dequeue();
        assert!(a.estimated_wait_us() > 150_000);
        // 10 ms of remaining budget is hopeless: shed with a retry hint.
        match a.decide(Some(Duration::from_millis(10))) {
            Verdict::Shed { reason, .. } => assert_eq!(reason, ShedReason::DeadlineUnmeetable),
            Verdict::Admit => panic!("unmeetable deadline must shed"),
        }
        // A deadline that clears the backlog is admitted.
        assert!(matches!(
            a.decide(Some(Duration::from_secs(5))),
            Verdict::Admit
        ));
        // No deadline and no configured default: only the queue bound.
        assert!(matches!(a.decide(None), Verdict::Admit));
    }

    #[test]
    fn configured_default_deadline_governs_deadline_less_requests() {
        let a = Admission::new(1024, 1, Some(Duration::from_millis(10)));
        a.on_enqueue();
        a.on_dequeue();
        a.on_complete(100_000);
        a.on_enqueue();
        match a.decide(None) {
            Verdict::Shed { reason, .. } => assert_eq!(reason, ShedReason::DeadlineUnmeetable),
            Verdict::Admit => panic!("default admission deadline must apply"),
        }
    }

    #[test]
    fn stats_and_prometheus_report_the_counters() {
        let a = Admission::new(2, 1, None);
        assert!(matches!(a.decide(None), Verdict::Admit));
        a.on_enqueue();
        a.on_enqueue();
        let _ = a.decide(None); // sheds: queue full
        a.record_shed_latency(50);
        let mut stats = crate::protocol::ServingStatsOut {
            event_threads: 0,
            open_connections: 0,
            queue_depth: 0,
            queue_limit: 0,
            busy_workers: 0,
            admitted: 0,
            shed_queue_full: 0,
            shed_deadline: 0,
            shed_latency_p99_us: 0,
            reactor_loop_p99_us: 0,
            pending_forwards: 0,
            slow_client_disconnects: 0,
        };
        a.fill_stats(&mut stats);
        assert_eq!(stats.admitted, 1);
        assert_eq!(stats.shed_queue_full, 1);
        assert_eq!(stats.queue_depth, 2);
        assert_eq!(stats.queue_limit, 2);
        assert!(stats.shed_latency_p99_us >= 50);
        let mut text = String::new();
        a.render_prometheus(&mut text);
        assert!(text.contains("rpwf_admission_queue_depth 2"), "{text}");
        assert!(
            text.contains("rpwf_admission_shed_queue_full_total 1"),
            "{text}"
        );
        assert!(
            text.contains("rpwf_admission_shed_latency_us_count 1"),
            "{text}"
        );
    }
}
