//! The poll-based serving reactor: the server's entire I/O plane.
//!
//! A small, fixed set of **event threads** multiplexes every client
//! connection and every in-flight peer forward over nonblocking sockets
//! with a raw `poll(2)` readiness loop (no async runtime — the shim in
//! [`sys`] is ~30 lines over the libc the binary already links). The
//! division of labor:
//!
//! * **Event threads** own the sockets. They decode request lines, run
//!   the admission controller ([`crate::admission`]) on solve-shaped
//!   requests, dispatch admitted work to the shared [`WorkerPool`], and
//!   drain per-connection write buffers with backpressure (a client that
//!   stops reading accumulates output up to [`OUTBOX_CAP`] and is then
//!   disconnected — it cannot stall the loop or other clients).
//! * **Workers** solve. A worker that picks up a request owned by a peer
//!   converts it into an [`AsyncForward`] and hands it straight back to
//!   the reactor ([`WorkerPool::set_forward_sink`]) — the forward then
//!   lives in the event thread's **pending-forward table** as a
//!   nonblocking continuation (connect → write → read → failover walk)
//!   instead of occupying a worker or reader thread for its round trip.
//! * **Hop executors** answer peer-forwarded (`hop`) requests on their
//!   own small thread set. Hopped work is always local and never blocks
//!   on another node, but it must not share the solve pool: two
//!   saturated nodes forwarding to each other could otherwise deadlock,
//!   every worker of each waiting behind the other's queue.
//!
//! Responses are produced on whatever thread computes them and pushed
//! into the connection's outbox ([`ConnShared::push_line`]); the event
//! thread is woken through a self-pipe and flushes opportunistically.
//! Scripted fault injection ([`crate::fault`]) is applied at decode
//! (drop/kill) and at response delivery (corrupt), and an injected
//! response delay is a **reactor timer**, not a sleeping thread — the
//! worker that produced the response is freed immediately.

use crate::admission::{Admission, ServingOptions, Verdict};
use crate::fault::{FaultAction, FaultPlan};
use crate::metrics::LatencyHistogram;
use crate::peer::Peer;
use crate::protocol::{Meta, Request, Response, ServingStatsOut};
use crate::router::AsyncForward;
use crate::service::{Job, WorkerPool};
use crossbeam::channel::{self, Sender};
use rpwf_core::budget::CancelHandle;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Per-connection write-buffer cap. A connection whose client reads too
/// slowly to keep its pending output under this bound is severed (and
/// counted in `slow_client_disconnects`) — bounded memory per client,
/// and a slow consumer can never wedge an event thread.
const OUTBOX_CAP: usize = 4 << 20;

/// Hard cap on buffered, not-yet-terminated request-line bytes per
/// connection — a line longer than this is a protocol violation (or an
/// attack) and closes the connection.
const MAX_LINE_BYTES: usize = 16 << 20;

/// Accept bound: beyond this many open connections new sockets are
/// dropped at accept (counted in `connections_rejected_total`).
const MAX_OPEN_CONNS: u64 = 4096;

/// Read/write chunk size on the event loop.
const CHUNK: usize = 16 * 1024;

/// Idle poll timeout: an upper bound on how stale a shutdown check can
/// get even if every wake-up is missed.
const IDLE_POLL_MS: i32 = 250;

/// Raw, dependency-free `poll(2)` shim. `std` already links the
/// platform C library; declaring the one symbol we need avoids both an
/// async runtime and a libc crate.
#[cfg(unix)]
mod sys {
    /// One fd's interest/readiness record, ABI-matching `struct pollfd`.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;

    extern "C" {
        #[link_name = "poll"]
        fn c_poll(
            fds: *mut PollFd,
            nfds: std::os::raw::c_ulong,
            timeout: std::os::raw::c_int,
        ) -> std::os::raw::c_int;
    }

    /// Blocks until readiness or `timeout_ms`, retrying on `EINTR`.
    /// Fills `revents` in place; a negative return is a hard error the
    /// caller treats as "nothing ready".
    pub fn poll(fds: &mut [PollFd], timeout_ms: i32) -> i32 {
        loop {
            let rc = unsafe {
                c_poll(
                    fds.as_mut_ptr(),
                    fds.len() as std::os::raw::c_ulong,
                    timeout_ms,
                )
            };
            if rc >= 0 {
                return rc;
            }
            if std::io::Error::last_os_error().kind() != std::io::ErrorKind::Interrupted {
                return -1;
            }
        }
    }
}

/// Cross-thread wake-up for one event thread: a nonblocking self-pipe
/// (socketpair) with a pending-flag dedupe so a burst of wakes costs one
/// write. On non-unix targets the loop falls back to short timed polls
/// and the handle only sets the flag.
#[derive(Clone)]
pub(crate) struct WakeHandle {
    pending: Arc<AtomicBool>,
    #[cfg(unix)]
    writer: Arc<std::os::unix::net::UnixStream>,
}

impl WakeHandle {
    pub(crate) fn wake(&self) {
        if !self.pending.swap(true, Ordering::SeqCst) {
            #[cfg(unix)]
            {
                let _ = (&*self.writer).write(&[1u8]);
            }
        }
    }
}

/// The read half of an event thread's self-pipe.
struct WakeReader {
    pending: Arc<AtomicBool>,
    #[cfg(unix)]
    reader: std::os::unix::net::UnixStream,
}

impl WakeReader {
    /// Drains the pipe and clears the pending flag. Clearing *before*
    /// the caller drains its inbox keeps the classic race safe: a
    /// producer that enqueues after the drain sees the cleared flag and
    /// writes a fresh byte, so the next poll returns immediately.
    fn drain(&mut self) {
        self.pending.store(false, Ordering::SeqCst);
        #[cfg(unix)]
        {
            let mut buf = [0u8; 64];
            while matches!(self.reader.read(&mut buf), Ok(n) if n > 0) {}
        }
    }
}

fn wake_pair() -> std::io::Result<(WakeReader, WakeHandle)> {
    let pending = Arc::new(AtomicBool::new(false));
    #[cfg(unix)]
    {
        let (reader, writer) = std::os::unix::net::UnixStream::pair()?;
        reader.set_nonblocking(true)?;
        writer.set_nonblocking(true)?;
        Ok((
            WakeReader {
                pending: Arc::clone(&pending),
                reader,
            },
            WakeHandle {
                pending,
                writer: Arc::new(writer),
            },
        ))
    }
    #[cfg(not(unix))]
    {
        Ok((
            WakeReader {
                pending: Arc::clone(&pending),
            },
            WakeHandle { pending },
        ))
    }
}

/// Messages delivered to one event thread (always paired with a wake).
enum Msg {
    /// A freshly accepted client connection to adopt.
    NewConn(TcpStream),
    /// A worker-prepared peer forward to drive.
    Forward(Box<AsyncForward>),
    /// A helper thread finished a blocking peer connect for forward
    /// `fwd`'s attempt number `attempt` (stale attempts are dropped).
    Checkout {
        fwd: u64,
        attempt: u64,
        result: std::io::Result<TcpStream>,
    },
    /// A fault-injected response delay matured into a timer: deliver
    /// `line` to connection `conn` at `due`.
    DelayLine {
        conn: u64,
        line: String,
        due: Instant,
    },
    /// A producer appended to connection `conn`'s outbox (or completed a
    /// request): flush and run the GC check.
    Flush(u64),
}

/// One event thread's mailbox.
struct Inbox {
    msgs: Mutex<Vec<Msg>>,
}

impl Inbox {
    fn push(&self, msg: Msg) {
        self.msgs.lock().expect("reactor inbox lock").push(msg);
    }

    fn drain(&self) -> Vec<Msg> {
        std::mem::take(&mut *self.msgs.lock().expect("reactor inbox lock"))
    }
}

/// Reactor-plane counters behind `Stats.serving` and the
/// `rpwf_reactor_*` Prometheus series.
pub(crate) struct ReactorMetrics {
    event_threads: AtomicU64,
    open_connections: AtomicU64,
    connections_accepted: AtomicU64,
    connections_rejected: AtomicU64,
    pending_forwards: AtomicU64,
    slow_client_disconnects: AtomicU64,
    wakeups: AtomicU64,
    /// Work-phase duration of each loop iteration (poll wait excluded):
    /// the latency a ready event waits behind the loop's other work.
    loop_latency: LatencyHistogram,
}

impl ReactorMetrics {
    fn new() -> Self {
        ReactorMetrics {
            event_threads: AtomicU64::new(0),
            open_connections: AtomicU64::new(0),
            connections_accepted: AtomicU64::new(0),
            connections_rejected: AtomicU64::new(0),
            pending_forwards: AtomicU64::new(0),
            slow_client_disconnects: AtomicU64::new(0),
            wakeups: AtomicU64::new(0),
            loop_latency: LatencyHistogram::default(),
        }
    }

    pub(crate) fn fill_stats(&self, out: &mut ServingStatsOut) {
        out.event_threads = self.event_threads.load(Ordering::Relaxed);
        out.open_connections = self.open_connections.load(Ordering::Relaxed);
        out.reactor_loop_p99_us = self.loop_latency.quantile_us(0.99);
        out.pending_forwards = self.pending_forwards.load(Ordering::Relaxed);
        out.slow_client_disconnects = self.slow_client_disconnects.load(Ordering::Relaxed);
    }

    pub(crate) fn render_prometheus(&self, out: &mut String) {
        use std::fmt::Write as _;
        writeln!(
            out,
            "rpwf_reactor_event_threads {}",
            self.event_threads.load(Ordering::Relaxed)
        )
        .expect("write");
        writeln!(
            out,
            "rpwf_reactor_open_connections {}",
            self.open_connections.load(Ordering::Relaxed)
        )
        .expect("write");
        writeln!(
            out,
            "rpwf_reactor_connections_accepted_total {}",
            self.connections_accepted.load(Ordering::Relaxed)
        )
        .expect("write");
        writeln!(
            out,
            "rpwf_reactor_connections_rejected_total {}",
            self.connections_rejected.load(Ordering::Relaxed)
        )
        .expect("write");
        writeln!(
            out,
            "rpwf_reactor_pending_forwards {}",
            self.pending_forwards.load(Ordering::Relaxed)
        )
        .expect("write");
        writeln!(
            out,
            "rpwf_reactor_slow_client_disconnects_total {}",
            self.slow_client_disconnects.load(Ordering::Relaxed)
        )
        .expect("write");
        writeln!(
            out,
            "rpwf_reactor_wakeups_total {}",
            self.wakeups.load(Ordering::Relaxed)
        )
        .expect("write");
        self.loop_latency
            .render_prometheus_series("rpwf_reactor_loop_us", out);
    }
}

/// The address of one event thread: its mailbox plus its wake handle.
struct ThreadHandle {
    inbox: Arc<Inbox>,
    wake: WakeHandle,
}

/// Shared reactor state: what accept threads, worker threads, response
/// producers, and fault hooks need to reach the event threads.
pub(crate) struct ReactorCtx {
    shutdown: AtomicBool,
    pool: Arc<WorkerPool>,
    admission: Arc<Admission>,
    pub(crate) metrics: Arc<ReactorMetrics>,
    faults: Option<Arc<FaultPlan>>,
    threads: Vec<ThreadHandle>,
    /// Hop-lane sender; taken (closing the lane) at shutdown.
    hop_tx: Mutex<Option<Sender<Job>>>,
    /// This node's identity for shed-response metadata.
    node_id: Option<String>,
    next_thread: AtomicUsize,
    next_conn: AtomicU64,
}

impl ReactorCtx {
    /// Round-robins a message across the event threads.
    fn dispatch(&self, msg: Msg) {
        let i = self.next_thread.fetch_add(1, Ordering::Relaxed) % self.threads.len();
        self.threads[i].inbox.push(msg);
        self.threads[i].wake.wake();
    }

    fn submit_hop(&self, job: Job) {
        if let Some(tx) = &*self.hop_tx.lock().expect("hop lane lock") {
            let _ = tx.send(job);
        }
    }

    /// Flips the shutdown flag and wakes everyone: event threads exit
    /// their loops (severing their connections on the way out), the hop
    /// lane disconnects, the accept loop stops within its poll tick.
    fn signal_shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
        *self.hop_tx.lock().expect("hop lane lock") = None;
        for t in &self.threads {
            t.wake.wake();
        }
    }

    /// Executes an injected `KillNode`: mark the plan, then go dark
    /// exactly like [`crate::Server::shutdown`] — stop accepting, sever
    /// every connection.
    fn kill(&self) {
        if let Some(plan) = &self.faults {
            plan.mark_killed();
        }
        self.signal_shutdown();
    }
}

/// The running reactor: accept thread + event threads + hop lane.
pub(crate) struct Reactor {
    ctx: Arc<ReactorCtx>,
    accept: Option<JoinHandle<()>>,
    events: Vec<JoinHandle<()>>,
    hops: Vec<JoinHandle<()>>,
}

impl Reactor {
    /// Spawns the full serving plane over an already-bound nonblocking
    /// listener and installs the reactor's service hooks (serving stats,
    /// Prometheus extension, async-forward sink).
    pub(crate) fn start(
        listener: TcpListener,
        pool: Arc<WorkerPool>,
        faults: Option<Arc<FaultPlan>>,
        options: &ServingOptions,
    ) -> std::io::Result<Reactor> {
        let event_threads = options.effective_event_threads();
        let metrics = Arc::new(ReactorMetrics::new());
        metrics
            .event_threads
            .store(event_threads as u64, Ordering::Relaxed);

        let mut handles = Vec::with_capacity(event_threads);
        let mut readers = Vec::with_capacity(event_threads);
        for _ in 0..event_threads {
            let (reader, wake) = wake_pair()?;
            let inbox = Arc::new(Inbox {
                msgs: Mutex::new(Vec::new()),
            });
            handles.push(ThreadHandle { inbox, wake });
            readers.push(reader);
        }

        // Hop executors: sized like the solve pool, but a separate lane
        // (see the module docs for the cross-node deadlock argument).
        let hop_count = pool.service().config().effective_workers().max(1);
        let (hop_tx, hop_rx) = channel::unbounded::<Job>();

        let ctx = Arc::new(ReactorCtx {
            shutdown: AtomicBool::new(false),
            admission: Arc::clone(pool.admission()),
            metrics: Arc::clone(&metrics),
            faults,
            threads: handles,
            hop_tx: Mutex::new(Some(hop_tx)),
            node_id: pool.service().config().node_id.clone(),
            next_thread: AtomicUsize::new(0),
            next_conn: AtomicU64::new(0),
            pool: Arc::clone(&pool),
        });

        // Service hooks. All captures are leaf state (admission gauges,
        // reactor counters, a weak ctx) — never anything that owns the
        // service, so no Arc cycle can form.
        let admission = Arc::clone(pool.admission());
        let stats_metrics = Arc::clone(&metrics);
        pool.service().set_serving_stats(Box::new(move || {
            let mut out = ServingStatsOut {
                event_threads: 0,
                open_connections: 0,
                queue_depth: 0,
                queue_limit: 0,
                busy_workers: 0,
                admitted: 0,
                shed_queue_full: 0,
                shed_deadline: 0,
                shed_latency_p99_us: 0,
                reactor_loop_p99_us: 0,
                pending_forwards: 0,
                slow_client_disconnects: 0,
            };
            admission.fill_stats(&mut out);
            stats_metrics.fill_stats(&mut out);
            out
        }));
        let prom_admission = Arc::clone(pool.admission());
        let prom_metrics = Arc::clone(&metrics);
        pool.service().set_metrics_extension(Box::new(move |out| {
            prom_admission.render_prometheus(out);
            prom_metrics.render_prometheus(out);
        }));
        let sink_ctx = Arc::downgrade(&ctx);
        pool.set_forward_sink(Box::new(move |forward| {
            if let Some(ctx) = sink_ctx.upgrade() {
                ctx.dispatch(Msg::Forward(Box::new(forward)));
            }
            // Reactor gone: dropping the forward drops its respond
            // closure, whose completion guard settles the connection.
        }));

        let mut events = Vec::with_capacity(event_threads);
        for (index, wake_reader) in readers.into_iter().enumerate() {
            let thread = EventThread {
                ctx: Arc::clone(&ctx),
                inbox: Arc::clone(&ctx.threads[index].inbox),
                wake: ctx.threads[index].wake.clone(),
                wake_reader,
                conns: HashMap::new(),
                forwards: HashMap::new(),
                timers: BinaryHeap::new(),
                next_forward: 0,
                timer_seq: 0,
            };
            events.push(
                std::thread::Builder::new()
                    .name(format!("rpwf-reactor-{index}"))
                    .spawn(move || thread.run())
                    .expect("spawn reactor event thread"),
            );
        }

        let mut hops = Vec::with_capacity(hop_count);
        for index in 0..hop_count {
            let rx = hop_rx.clone();
            let router = Arc::clone(pool.router());
            hops.push(
                std::thread::Builder::new()
                    .name(format!("rpwf-hop-{index}"))
                    .spawn(move || {
                        while let Ok(mut job) = rx.recv() {
                            router.handle_line(
                                &job.line,
                                job.received,
                                job.cancel.as_ref(),
                                &mut job.respond,
                            );
                        }
                    })
                    .expect("spawn hop executor"),
            );
        }
        drop(hop_rx);

        let accept_ctx = Arc::clone(&ctx);
        let accept = std::thread::Builder::new()
            .name("rpwf-accept".into())
            .spawn(move || accept_loop(&listener, &accept_ctx))
            .expect("spawn accept thread");

        Ok(Reactor {
            ctx,
            accept: Some(accept),
            events,
            hops,
        })
    }

    /// Full stop: signal, then join every thread. Idempotent.
    pub(crate) fn shutdown(&mut self) {
        self.ctx.signal_shutdown();
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        for handle in self.events.drain(..) {
            let _ = handle.join();
        }
        for handle in self.hops.drain(..) {
            let _ = handle.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, ctx: &Arc<ReactorCtx>) {
    while !ctx.shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Re-check after the accept: a shutdown — operator or
                // injected KillNode — must not hand out connections to a
                // node that is supposed to be dark.
                if ctx.shutdown.load(Ordering::Relaxed) {
                    let _ = stream.shutdown(Shutdown::Both);
                    break;
                }
                if ctx.metrics.open_connections.load(Ordering::Relaxed) >= MAX_OPEN_CONNS {
                    ctx.metrics
                        .connections_rejected
                        .fetch_add(1, Ordering::Relaxed);
                    let _ = stream.shutdown(Shutdown::Both);
                    continue;
                }
                ctx.metrics
                    .connections_accepted
                    .fetch_add(1, Ordering::Relaxed);
                ctx.dispatch(Msg::NewConn(stream));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => {
                // Transient accept errors (EMFILE, ECONNABORTED, EINTR,
                // …) must not kill the listener: back off and keep
                // accepting. Shutdown still exits via the loop condition.
                eprintln!("rpwf-server: accept error (retrying): {e}");
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

/// The response-side state of one connection, shared with every respond
/// closure its requests spawned (and thus with worker / hop / forward
/// threads).
struct ConnShared {
    id: u64,
    inbox: Arc<Inbox>,
    wake: WakeHandle,
    outbox: Mutex<Outbox>,
    /// Requests decoded from this connection whose respond closure has
    /// not been dropped yet (a dropped closure means the request fully
    /// answered — or was abandoned, which counts the same for GC).
    outstanding: AtomicU64,
    /// Fault-delayed response lines parked on the timer heap.
    pending_delayed: AtomicU64,
    /// Set when the reactor severed the connection: late producers drop
    /// their lines instead of growing a dead buffer.
    dead: AtomicBool,
}

struct Outbox {
    buf: Vec<u8>,
    pos: usize,
    /// The client fell further behind than [`OUTBOX_CAP`]; the event
    /// thread severs the connection at the next flush.
    overflow: bool,
}

impl ConnShared {
    /// Appends one response line (newline added here) and nudges the
    /// owning event thread to flush.
    fn push_line(&self, line: &str) {
        if self.dead.load(Ordering::Relaxed) {
            return;
        }
        {
            let mut out = self.outbox.lock().expect("conn outbox lock");
            if out.buf.len() - out.pos + line.len() + 1 > OUTBOX_CAP {
                out.overflow = true;
            } else {
                out.buf.extend_from_slice(line.as_bytes());
                out.buf.push(b'\n');
            }
        }
        self.notify();
    }

    /// Parks one response line on the reactor's timer heap for `delay`
    /// (the fault-injected response delay, without blocking a thread).
    fn push_line_delayed(&self, line: String, delay: Duration) {
        if self.dead.load(Ordering::Relaxed) {
            return;
        }
        self.pending_delayed.fetch_add(1, Ordering::Relaxed);
        self.inbox.push(Msg::DelayLine {
            conn: self.id,
            line,
            due: Instant::now() + delay,
        });
        self.wake.wake();
    }

    fn notify(&self) {
        self.inbox.push(Msg::Flush(self.id));
        self.wake.wake();
    }
}

/// Drop guard inside every respond closure: when the closure is dropped
/// — request fully answered, job abandoned, forward cancelled — the
/// connection's outstanding count settles and the event thread gets a
/// GC nudge.
struct Completion(Arc<ConnShared>);

impl Drop for Completion {
    fn drop(&mut self) {
        self.0.outstanding.fetch_sub(1, Ordering::Relaxed);
        self.0.notify();
    }
}

/// One live client connection, owned by its event thread.
struct Conn {
    stream: TcpStream,
    shared: Arc<ConnShared>,
    cancel: CancelHandle,
    inbuf: Vec<u8>,
    read_closed: bool,
}

/// A pending peer forward: the nonblocking continuation of one
/// [`AsyncForward`] as it walks the owner list.
struct ForwardState {
    fwd: AsyncForward,
    /// Index into `fwd.owners` currently being tried.
    rank: usize,
    /// Attempt generation: bumped on every (re)connect and failover, so
    /// stale `Checkout` results and expired deadline timers for an
    /// abandoned attempt fall on the floor.
    attempt: u64,
    phase: FwdPhase,
    /// Response lines received so far in this attempt (streamed `part`
    /// lines buffer here until the terminal line arrives — failover
    /// restarts cleanly, exactly like the synchronous path).
    lines: Vec<String>,
    got_bytes: bool,
    pooled: bool,
    retried_stale: bool,
}

enum FwdPhase {
    /// A helper thread is connecting; the socket arrives via
    /// [`Msg::Checkout`].
    Connecting,
    /// Writing the hopped line / reading the response.
    Active {
        stream: TcpStream,
        out: Vec<u8>,
        pos: usize,
        inbuf: Vec<u8>,
    },
}

impl ForwardState {
    fn cancelled(&self) -> bool {
        self.fwd
            .cancel
            .as_ref()
            .is_some_and(CancelHandle::is_cancelled)
    }
}

enum FwdIo {
    Pending { progressed: bool },
    Done,
    Failed(std::io::Error),
}

/// Timer heap entry, ordered by `(due, seq)` so the heap is stable.
struct TimerEntry {
    due: Instant,
    seq: u64,
    kind: TimerKind,
}

enum TimerKind {
    /// Deliver a fault-delayed response line.
    DeliverLine { conn: u64, line: String },
    /// Per-attempt response deadline of a pending forward.
    ForwardDeadline { fwd: u64, gen: u64 },
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.seq).cmp(&(other.due, other.seq))
    }
}

/// What one poll round reported for a registered fd.
struct Ready {
    tag: Tag,
    readable: bool,
    writable: bool,
}

#[derive(Clone, Copy)]
enum Tag {
    Conn(u64),
    Fwd(u64),
}

/// One event thread: the poll loop plus all state it owns.
struct EventThread {
    ctx: Arc<ReactorCtx>,
    inbox: Arc<Inbox>,
    wake: WakeHandle,
    wake_reader: WakeReader,
    conns: HashMap<u64, Conn>,
    forwards: HashMap<u64, ForwardState>,
    timers: BinaryHeap<Reverse<TimerEntry>>,
    next_forward: u64,
    timer_seq: u64,
}

impl EventThread {
    fn run(mut self) {
        while !self.ctx.shutdown.load(Ordering::Relaxed) {
            let timeout = self.poll_timeout_ms();
            let ready = self.wait_ready(timeout);
            let work_start = Instant::now();
            self.ctx.metrics.wakeups.fetch_add(1, Ordering::Relaxed);
            for msg in self.inbox.drain() {
                self.handle_msg(msg);
            }
            self.fire_due_timers();
            for item in ready {
                match item.tag {
                    Tag::Conn(id) => {
                        if item.readable {
                            for line in self.read_conn(id) {
                                self.handle_decoded(id, line);
                            }
                        }
                        if item.readable || item.writable {
                            self.flush_conn(id);
                        }
                        self.gc_conn(id);
                    }
                    Tag::Fwd(id) => self.advance_forward(id),
                }
            }
            self.ctx
                .metrics
                .loop_latency
                .record(work_start.elapsed().as_micros() as u64);
        }
        // Going dark: sever every connection this thread owns, exactly
        // like a killed process as observed from the network.
        for (_, conn) in self.conns.drain() {
            conn.shared.dead.store(true, Ordering::Relaxed);
            conn.cancel.cancel();
            let _ = conn.stream.shutdown(Shutdown::Both);
            self.ctx
                .metrics
                .open_connections
                .fetch_sub(1, Ordering::Relaxed);
        }
        for (_, st) in self.forwards.drain() {
            drop(st);
            self.ctx
                .metrics
                .pending_forwards
                .fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Milliseconds until the nearest timer (capped at the idle tick).
    fn poll_timeout_ms(&self) -> i32 {
        match self.timers.peek() {
            Some(Reverse(entry)) => {
                let now = Instant::now();
                if entry.due <= now {
                    0
                } else {
                    let ms = entry.due.duration_since(now).as_millis();
                    // +1: round up so we don't busy-spin just short of due.
                    (ms.min(i32::MAX as u128 - 1) as i32 + 1).min(IDLE_POLL_MS)
                }
            }
            None => IDLE_POLL_MS,
        }
    }

    /// Polls every registered fd (wake pipe, client sockets with
    /// read/write interest, active forward sockets) and returns the
    /// ready set. On non-unix targets: a short sleep, then every fd is
    /// reported ready and the nonblocking ops sort out reality.
    #[cfg(unix)]
    fn wait_ready(&mut self, timeout_ms: i32) -> Vec<Ready> {
        use std::os::unix::io::AsRawFd;
        let mut fds: Vec<sys::PollFd> = Vec::with_capacity(1 + self.conns.len());
        let mut tags: Vec<Option<Tag>> = Vec::with_capacity(fds.capacity());
        fds.push(sys::PollFd {
            fd: self.wake_reader.reader.as_raw_fd(),
            events: sys::POLLIN,
            revents: 0,
        });
        tags.push(None);
        for (&id, conn) in &self.conns {
            let mut events = 0i16;
            if !conn.read_closed {
                events |= sys::POLLIN;
            }
            let wants_write = {
                let out = conn.shared.outbox.lock().expect("conn outbox lock");
                out.pos < out.buf.len() || out.overflow
            };
            if wants_write {
                events |= sys::POLLOUT;
            }
            if events != 0 {
                fds.push(sys::PollFd {
                    fd: conn.stream.as_raw_fd(),
                    events,
                    revents: 0,
                });
                tags.push(Some(Tag::Conn(id)));
            }
        }
        for (&id, st) in &self.forwards {
            if let FwdPhase::Active {
                stream, out, pos, ..
            } = &st.phase
            {
                let events = if *pos < out.len() {
                    sys::POLLIN | sys::POLLOUT
                } else {
                    sys::POLLIN
                };
                fds.push(sys::PollFd {
                    fd: stream.as_raw_fd(),
                    events,
                    revents: 0,
                });
                tags.push(Some(Tag::Fwd(id)));
            }
        }
        let rc = sys::poll(&mut fds, timeout_ms);
        let mut ready = Vec::new();
        if rc > 0 {
            for (fd, tag) in fds.iter().zip(&tags) {
                if fd.revents == 0 {
                    continue;
                }
                let readable = fd.revents & (sys::POLLIN | sys::POLLERR | sys::POLLHUP) != 0;
                let writable = fd.revents & (sys::POLLOUT | sys::POLLERR | sys::POLLHUP) != 0;
                match tag {
                    None => self.wake_reader.drain(),
                    Some(tag) => ready.push(Ready {
                        tag: *tag,
                        readable,
                        writable,
                    }),
                }
            }
        }
        ready
    }

    #[cfg(not(unix))]
    fn wait_ready(&mut self, timeout_ms: i32) -> Vec<Ready> {
        std::thread::sleep(Duration::from_millis(timeout_ms.clamp(1, 5) as u64));
        self.wake_reader.drain();
        let mut ready = Vec::new();
        for &id in self.conns.keys() {
            ready.push(Ready {
                tag: Tag::Conn(id),
                readable: true,
                writable: true,
            });
        }
        for (&id, st) in &self.forwards {
            if matches!(st.phase, FwdPhase::Active { .. }) {
                ready.push(Ready {
                    tag: Tag::Fwd(id),
                    readable: true,
                    writable: true,
                });
            }
        }
        ready
    }

    fn handle_msg(&mut self, msg: Msg) {
        match msg {
            Msg::NewConn(stream) => self.install_conn(stream),
            Msg::Forward(forward) => self.register_forward(*forward),
            Msg::Checkout {
                fwd,
                attempt,
                result,
            } => self.on_checkout(fwd, attempt, result),
            Msg::DelayLine { conn, line, due } => {
                self.timer_seq += 1;
                self.timers.push(Reverse(TimerEntry {
                    due,
                    seq: self.timer_seq,
                    kind: TimerKind::DeliverLine { conn, line },
                }));
            }
            Msg::Flush(id) => {
                self.flush_conn(id);
                self.gc_conn(id);
            }
        }
    }

    fn install_conn(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let id = self.ctx.next_conn.fetch_add(1, Ordering::Relaxed);
        let shared = Arc::new(ConnShared {
            id,
            inbox: Arc::clone(&self.inbox),
            wake: self.wake.clone(),
            outbox: Mutex::new(Outbox {
                buf: Vec::new(),
                pos: 0,
                overflow: false,
            }),
            outstanding: AtomicU64::new(0),
            pending_delayed: AtomicU64::new(0),
            dead: AtomicBool::new(false),
        });
        self.conns.insert(
            id,
            Conn {
                stream,
                shared,
                cancel: CancelHandle::new(),
                inbuf: Vec::new(),
                read_closed: false,
            },
        );
        self.ctx
            .metrics
            .open_connections
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Drains the socket and returns every complete line (CR stripped).
    /// EOF or a read error half-closes the connection and fires its
    /// cancel handle — queued responses still flush before GC.
    fn read_conn(&mut self, id: u64) -> Vec<String> {
        let mut lines = Vec::new();
        let Some(conn) = self.conns.get_mut(&id) else {
            return lines;
        };
        let mut buf = [0u8; CHUNK];
        loop {
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    conn.read_closed = true;
                    conn.cancel.cancel();
                    break;
                }
                Ok(n) => {
                    conn.inbuf.extend_from_slice(&buf[..n]);
                    if conn.inbuf.len() > MAX_LINE_BYTES {
                        // A single unterminated line this large is not a
                        // client we serve.
                        conn.read_closed = true;
                        conn.cancel.cancel();
                        conn.shared.dead.store(true, Ordering::Relaxed);
                        conn.inbuf.clear();
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    conn.read_closed = true;
                    conn.cancel.cancel();
                    break;
                }
            }
        }
        let mut consumed = 0;
        for i in 0..conn.inbuf.len() {
            if conn.inbuf[i] == b'\n' {
                let mut line = String::from_utf8_lossy(&conn.inbuf[consumed..i]).into_owned();
                if line.ends_with('\r') {
                    line.pop();
                }
                lines.push(line);
                consumed = i + 1;
            }
        }
        if consumed > 0 {
            conn.inbuf.drain(..consumed);
        }
        lines
    }

    /// One decoded request line: fault hooks, hop lane, admission,
    /// worker dispatch.
    fn handle_decoded(&mut self, conn_id: u64, line: String) {
        if line.trim().is_empty() {
            // Blank keep-alives never advance the fault script.
            return;
        }
        if self.ctx.shutdown.load(Ordering::Relaxed) {
            // A KillNode earlier in this batch took the node dark:
            // later buffered lines are never processed (matching a real
            // process kill mid-read).
            return;
        }
        let Some(conn) = self.conns.get(&conn_id) else {
            return;
        };
        let (shared, cancel) = (Arc::clone(&conn.shared), conn.cancel.clone());
        let received = Instant::now();
        let fault = self.ctx.faults.as_ref().and_then(|p| p.on_request());
        match fault {
            Some(FaultAction::DropConnection) => {
                self.sever_conn(conn_id);
                return;
            }
            Some(FaultAction::KillNode) => {
                self.ctx.kill();
                return;
            }
            _ => {}
        }
        if self.ctx.pool.router().handles_inline(&line) {
            // Peer-forwarded (hopped) work: already admitted at its entry
            // node; runs on the dedicated hop lane (module docs).
            let respond = make_respond(&shared, fault);
            self.ctx.submit_hop(Job {
                line,
                received,
                respond,
                cancel: Some(cancel),
                local: false,
            });
            return;
        }
        if is_solve_shaped(&line) {
            let remaining = sniff_u64(&line, "\"deadline_ms\":").map(Duration::from_millis);
            if let Verdict::Shed {
                retry_after_ms,
                reason,
            } = self.ctx.admission.decide(remaining)
            {
                // Slow path is fine here: sheds are the rare outcome of
                // the fast gauge check, and only they pay a full parse
                // (for the exact request id).
                let id = serde_json::from_str::<Request>(line.trim())
                    .ok()
                    .and_then(|r| r.id);
                let message = match reason {
                    crate::admission::ShedReason::QueueFull => {
                        "solve queue full; retry after the hinted delay"
                    }
                    crate::admission::ShedReason::DeadlineUnmeetable => {
                        "predicted queue wait exceeds the deadline; retry after the hinted delay"
                    }
                };
                let response = Response::overloaded(
                    id,
                    retry_after_ms,
                    message,
                    Meta {
                        cache_hit: false,
                        solver: None,
                        exact_complete: None,
                        elapsed_us: received.elapsed().as_micros() as u64,
                        node: self.ctx.node_id.clone(),
                        trace: None,
                        explain: None,
                    },
                );
                let mut respond = make_respond(&shared, fault);
                respond(response.to_line());
                drop(respond);
                self.ctx
                    .admission
                    .record_shed_latency(received.elapsed().as_micros() as u64);
                self.flush_conn(conn_id);
                return;
            }
        }
        let respond = make_respond(&shared, fault);
        self.ctx.pool.submit_job(Job {
            line,
            received,
            respond,
            cancel: Some(cancel),
            local: false,
        });
    }

    fn flush_conn(&mut self, id: u64) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        let sever = {
            let mut out = conn.shared.outbox.lock().expect("conn outbox lock");
            if out.overflow {
                Some(true)
            } else {
                let mut failed = false;
                while out.pos < out.buf.len() {
                    match conn.stream.write(&out.buf[out.pos..]) {
                        Ok(0) => {
                            failed = true;
                            break;
                        }
                        Ok(n) => out.pos += n,
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                        Err(_) => {
                            failed = true;
                            break;
                        }
                    }
                }
                if out.pos == out.buf.len() {
                    out.buf.clear();
                    out.pos = 0;
                } else if out.pos > CHUNK {
                    // Compact occasionally so a long-lived streaming
                    // connection doesn't hold its high-water mark.
                    let pos = out.pos;
                    out.buf.drain(..pos);
                    out.pos = 0;
                }
                failed.then_some(false)
            }
        };
        match sever {
            Some(true) => {
                self.ctx
                    .metrics
                    .slow_client_disconnects
                    .fetch_add(1, Ordering::Relaxed);
                self.sever_conn(id);
            }
            Some(false) => self.sever_conn(id),
            None => {}
        }
    }

    /// Removes a connection whose client is gone and whose pipeline has
    /// fully drained — half-closed clients keep receiving queued
    /// responses until then.
    fn gc_conn(&mut self, id: u64) {
        let done = match self.conns.get(&id) {
            Some(conn) => {
                conn.read_closed
                    && conn.shared.outstanding.load(Ordering::Relaxed) == 0
                    && conn.shared.pending_delayed.load(Ordering::Relaxed) == 0
                    && {
                        let out = conn.shared.outbox.lock().expect("conn outbox lock");
                        out.pos >= out.buf.len()
                    }
            }
            None => false,
        };
        if done {
            self.sever_conn(id);
        }
    }

    fn sever_conn(&mut self, id: u64) {
        if let Some(conn) = self.conns.remove(&id) {
            conn.shared.dead.store(true, Ordering::Relaxed);
            conn.cancel.cancel();
            let _ = conn.stream.shutdown(Shutdown::Both);
            self.ctx
                .metrics
                .open_connections
                .fetch_sub(1, Ordering::Relaxed);
        }
    }

    fn fire_due_timers(&mut self) {
        let now = Instant::now();
        while matches!(self.timers.peek(), Some(Reverse(e)) if e.due <= now) {
            let Some(Reverse(entry)) = self.timers.pop() else {
                break;
            };
            match entry.kind {
                TimerKind::DeliverLine { conn, line } => {
                    if let Some(c) = self.conns.get(&conn) {
                        let shared = Arc::clone(&c.shared);
                        shared.pending_delayed.fetch_sub(1, Ordering::Relaxed);
                        shared.push_line(&line);
                        self.flush_conn(conn);
                        self.gc_conn(conn);
                    }
                }
                TimerKind::ForwardDeadline { fwd, gen } => {
                    let Some(st) = self.forwards.remove(&fwd) else {
                        continue;
                    };
                    if st.attempt != gen {
                        self.forwards.insert(fwd, st);
                        continue;
                    }
                    let err = std::io::Error::new(std::io::ErrorKind::TimedOut, "forward deadline");
                    self.forward_attempt_failed(fwd, st, &err);
                }
            }
        }
    }

    // ---- pending-forward state machine -------------------------------

    fn register_forward(&mut self, fwd: AsyncForward) {
        self.next_forward += 1;
        let id = self.next_forward;
        self.ctx
            .metrics
            .pending_forwards
            .fetch_add(1, Ordering::Relaxed);
        let st = ForwardState {
            fwd,
            rank: 0,
            attempt: 0,
            phase: FwdPhase::Connecting,
            lines: Vec::new(),
            got_bytes: false,
            pooled: false,
            retried_stale: false,
        };
        self.start_attempt(id, st);
    }

    /// Walks the owner list from `st.rank`: a self-entry answers
    /// locally, a missing client is skipped, a breaker-open peer counts
    /// a failover, a live peer gets a pooled or fresh socket. Exhausting
    /// the list degrades to the local fallback solve.
    fn start_attempt(&mut self, id: u64, mut st: ForwardState) {
        if st.cancelled() {
            self.finish_forward(st);
            return;
        }
        loop {
            let Some(owner) = st.fwd.owners.get(st.rank).cloned() else {
                // Every owner unreachable: degrade to local solving. The
                // answer is byte-identical (same solver, same determinism
                // seed) — only cache placement degrades.
                st.fwd.router.note_fallback();
                self.submit_local(st);
                return;
            };
            if owner == st.fwd.router.node_id() {
                // We are the surviving replica for this key: answer
                // locally (warm when the primary's fills landed).
                st.fwd.router.note_owned_served();
                self.submit_local(st);
                return;
            }
            let Some(peer) = st.fwd.router.peer_client(&owner).cloned() else {
                // The ring names a node this router has no client for — a
                // configuration mismatch; try the next owner.
                st.rank += 1;
                continue;
            };
            if !peer.try_admit() {
                // Breaker open: abandon this owner like a failed call.
                if st.rank + 1 < st.fwd.owners.len() {
                    st.fwd.router.note_failover();
                }
                st.rank += 1;
                continue;
            }
            st.lines.clear();
            st.got_bytes = false;
            st.attempt += 1;
            if let Some(stream) = peer.take_idle_nonblocking() {
                st.pooled = true;
                st.retried_stale = false;
                st.phase = FwdPhase::Active {
                    stream,
                    out: hopped_bytes(&st.fwd.hopped_line),
                    pos: 0,
                    inbuf: Vec::new(),
                };
                self.arm_forward_deadline(id, &st);
                self.forwards.insert(id, st);
                // The socket is almost certainly writable right now.
                self.advance_forward(id);
            } else {
                st.pooled = false;
                st.retried_stale = false;
                self.spawn_checkout(id, st.attempt, peer);
                self.arm_forward_deadline(id, &st);
                self.forwards.insert(id, st);
            }
            return;
        }
    }

    /// Fresh connects block (bounded by the peer's connect timeout), so
    /// they run on a short-lived helper thread that posts the result
    /// back as a [`Msg::Checkout`].
    fn spawn_checkout(&self, id: u64, attempt: u64, peer: Arc<Peer>) {
        let inbox = Arc::clone(&self.inbox);
        let wake = self.wake.clone();
        std::thread::Builder::new()
            .name("rpwf-fwd-connect".into())
            .spawn(move || {
                let result = peer.connect_nonblocking();
                inbox.push(Msg::Checkout {
                    fwd: id,
                    attempt,
                    result,
                });
                wake.wake();
            })
            .expect("spawn forward connect helper");
    }

    fn on_checkout(&mut self, fwd: u64, attempt: u64, result: std::io::Result<TcpStream>) {
        let Some(mut st) = self.forwards.remove(&fwd) else {
            return; // Forward already settled; drop the late socket.
        };
        if st.attempt != attempt || !matches!(st.phase, FwdPhase::Connecting) {
            self.forwards.insert(fwd, st);
            return;
        }
        if st.cancelled() {
            self.finish_forward(st);
            return;
        }
        match result {
            Ok(stream) => {
                st.phase = FwdPhase::Active {
                    stream,
                    out: hopped_bytes(&st.fwd.hopped_line),
                    pos: 0,
                    inbuf: Vec::new(),
                };
                self.forwards.insert(fwd, st);
                self.advance_forward(fwd);
            }
            Err(e) => self.forward_attempt_failed(fwd, st, &e),
        }
    }

    fn advance_forward(&mut self, id: u64) {
        let Some(mut st) = self.forwards.remove(&id) else {
            return;
        };
        if st.cancelled() {
            self.finish_forward(st);
            return;
        }
        match drive_forward_io(&mut st) {
            FwdIo::Pending { progressed } => {
                if progressed {
                    // A `part` line arrived: the peer is alive, so the
                    // response clock restarts (the synchronous path's
                    // per-read timeout has the same per-line semantics).
                    st.attempt += 1;
                    self.arm_forward_deadline(id, &st);
                }
                self.forwards.insert(id, st);
            }
            FwdIo::Done => self.forward_success(st),
            FwdIo::Failed(e) => self.forward_attempt_failed(id, st, &e),
        }
    }

    fn forward_success(&mut self, mut st: ForwardState) {
        let owner = st.fwd.owners[st.rank].clone();
        if let Some(peer) = st.fwd.router.peer_client(&owner).cloned() {
            peer.record_async_success();
            if let FwdPhase::Active { stream, inbuf, .. } =
                std::mem::replace(&mut st.phase, FwdPhase::Connecting)
            {
                if inbuf.is_empty() {
                    peer.park_nonblocking(stream);
                }
                // Trailing bytes past the terminal line would poison the
                // pool; drop the socket instead.
            }
        }
        for line in std::mem::take(&mut st.lines) {
            (st.fwd.respond)(line);
        }
        self.finish_forward(st);
    }

    fn forward_attempt_failed(&mut self, id: u64, mut st: ForwardState, err: &std::io::Error) {
        let timeout = crate::peer::is_timeout(err);
        let owner = st.fwd.owners[st.rank].clone();
        let peer = st.fwd.router.peer_client(&owner).cloned();
        if st.pooled && !st.got_bytes && !timeout && !st.retried_stale {
            // A parked connection the peer closed while it idled: not a
            // peer failure. Retry once on a fresh socket before judging.
            if let Some(peer) = peer {
                st.retried_stale = true;
                st.pooled = false;
                st.lines.clear();
                st.attempt += 1;
                st.phase = FwdPhase::Connecting;
                self.spawn_checkout(id, st.attempt, peer);
                self.arm_forward_deadline(id, &st);
                self.forwards.insert(id, st);
                return;
            }
        }
        if let Some(peer) = peer {
            peer.record_async_failure(timeout);
        }
        if st.rank + 1 < st.fwd.owners.len() {
            st.fwd.router.note_failover();
        }
        st.rank += 1;
        st.phase = FwdPhase::Connecting;
        self.start_attempt(id, st);
    }

    /// Hands the request to the solve pool for local handling (the
    /// replica and fallback exits of the owner walk). `local: true`
    /// pins it against re-entering the forward path.
    fn submit_local(&mut self, mut st: ForwardState) {
        let job = Job {
            line: std::mem::take(&mut st.fwd.original_line),
            received: st.fwd.received,
            respond: std::mem::replace(&mut st.fwd.respond, Box::new(|_| {})),
            cancel: st.fwd.cancel.take(),
            local: true,
        };
        self.ctx.pool.submit_job(job);
        self.finish_forward(st);
    }

    fn finish_forward(&mut self, st: ForwardState) {
        drop(st);
        self.ctx
            .metrics
            .pending_forwards
            .fetch_sub(1, Ordering::Relaxed);
    }

    fn arm_forward_deadline(&mut self, id: u64, st: &ForwardState) {
        self.timer_seq += 1;
        self.timers.push(Reverse(TimerEntry {
            due: Instant::now() + st.fwd.read_timeout,
            seq: self.timer_seq,
            kind: TimerKind::ForwardDeadline {
                fwd: id,
                gen: st.attempt,
            },
        }));
    }
}

/// Builds a respond closure for one request: fault wrapping (corrupt /
/// delayed delivery) around the connection outbox, with a [`Completion`]
/// guard so dropping the closure settles the connection's outstanding
/// count whatever happened to the request. The count is incremented
/// here, paired with the guard's decrement.
fn make_respond(
    shared: &Arc<ConnShared>,
    fault: Option<FaultAction>,
) -> Box<dyn FnMut(String) + Send> {
    shared.outstanding.fetch_add(1, Ordering::Relaxed);
    let guard = Completion(Arc::clone(shared));
    match fault {
        Some(FaultAction::DelayResponse(delay)) => Box::new(move |line: String| {
            guard.0.push_line_delayed(line, delay);
        }),
        Some(FaultAction::CorruptLine) => Box::new(move |line: String| {
            guard.0.push_line(&FaultPlan::corrupt(&line));
        }),
        _ => Box::new(move |line: String| {
            guard.0.push_line(&line);
        }),
    }
}

/// Nonblocking write/read pump for one active forward attempt. Returns
/// `Done` when the terminal response line (status ≠ `part`) arrived,
/// `Pending` (with a progress flag when new complete lines landed) on
/// `WouldBlock`, `Failed` on socket errors, EOF, or an unparseable
/// response line.
fn drive_forward_io(st: &mut ForwardState) -> FwdIo {
    let ForwardState {
        phase,
        lines,
        got_bytes,
        ..
    } = st;
    let FwdPhase::Active {
        stream,
        out,
        pos,
        inbuf,
    } = phase
    else {
        return FwdIo::Pending { progressed: false };
    };
    while *pos < out.len() {
        match stream.write(&out[*pos..]) {
            Ok(0) => {
                return FwdIo::Failed(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "peer closed while writing",
                ))
            }
            Ok(n) => *pos += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return FwdIo::Failed(e),
        }
    }
    let before = lines.len();
    let mut buf = [0u8; CHUNK];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => {
                return FwdIo::Failed(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "peer closed mid-response",
                ))
            }
            Ok(n) => {
                *got_bytes = true;
                inbuf.extend_from_slice(&buf[..n]);
                let mut consumed = 0;
                let mut i = 0;
                while i < inbuf.len() {
                    if inbuf[i] == b'\n' {
                        let mut text = String::from_utf8_lossy(&inbuf[consumed..i]).into_owned();
                        if text.ends_with('\r') {
                            text.pop();
                        }
                        consumed = i + 1;
                        let Ok(parsed) = serde_json::from_str::<Response>(text.trim()) else {
                            return FwdIo::Failed(std::io::Error::new(
                                std::io::ErrorKind::InvalidData,
                                "peer sent an unparseable response",
                            ));
                        };
                        let terminal = parsed.status != "part";
                        lines.push(text);
                        if terminal {
                            inbuf.drain(..consumed);
                            return FwdIo::Done;
                        }
                    }
                    i += 1;
                }
                if consumed > 0 {
                    inbuf.drain(..consumed);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                return FwdIo::Pending {
                    progressed: lines.len() > before,
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return FwdIo::Failed(e),
        }
    }
}

fn hopped_bytes(line: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(line.len() + 1);
    out.extend_from_slice(line.as_bytes());
    out.push(b'\n');
    out
}

/// Envelope sniff: is this line plausibly one of the expensive,
/// sheddable solve commands (`Solve` / `Pareto` / `Simulate`)? Cheap
/// commands (`Ping`, `Stats`, `Metrics`, `Ring`, …) are always admitted
/// so monitoring keeps working under overload; a false positive merely
/// runs one cheap request through the admission gauges.
fn is_solve_shaped(line: &str) -> bool {
    line.contains("\"Solve\"") || line.contains("\"Pareto\"") || line.contains("\"Simulate\"")
}

/// Extracts the non-negative integer following `key` in a JSON line
/// without a full parse (`None` when absent, null, or malformed).
fn sniff_u64(line: &str, key: &str) -> Option<u64> {
    let at = line.find(key)? + key.len();
    let rest = line[at..].trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    if end == 0 {
        return None;
    }
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_sniff_matches_full_parse() {
        let line = r#"{"id":7,"deadline_ms":2500,"cmd":{"Solve":{}}}"#;
        assert_eq!(sniff_u64(line, "\"deadline_ms\":"), Some(2500));
        assert_eq!(
            sniff_u64(r#"{"deadline_ms":null}"#, "\"deadline_ms\":"),
            None
        );
        assert_eq!(sniff_u64(r#"{"id":1}"#, "\"deadline_ms\":"), None);
        assert_eq!(
            sniff_u64(r#"{"deadline_ms": 40}"#, "\"deadline_ms\":"),
            Some(40),
            "whitespace after the colon is legal JSON"
        );
    }

    #[test]
    fn solve_shape_sniff_screens_cheap_commands() {
        assert!(is_solve_shaped(r#"{"cmd":{"Solve":{"pipeline":{}}}}"#));
        assert!(is_solve_shaped(r#"{"cmd":{"Pareto":{"chunk":10}}}"#));
        assert!(is_solve_shaped(r#"{"cmd":{"Simulate":{}}}"#));
        assert!(!is_solve_shaped(r#"{"cmd":"Ping"}"#));
        assert!(!is_solve_shaped(r#"{"cmd":"Stats"}"#));
        assert!(!is_solve_shaped(r#"{"cmd":"Metrics"}"#));
    }

    #[test]
    fn timer_heap_orders_by_due_then_seq() {
        let now = Instant::now();
        let mut heap: BinaryHeap<Reverse<TimerEntry>> = BinaryHeap::new();
        heap.push(Reverse(TimerEntry {
            due: now + Duration::from_millis(20),
            seq: 1,
            kind: TimerKind::ForwardDeadline { fwd: 1, gen: 0 },
        }));
        heap.push(Reverse(TimerEntry {
            due: now + Duration::from_millis(5),
            seq: 2,
            kind: TimerKind::ForwardDeadline { fwd: 2, gen: 0 },
        }));
        heap.push(Reverse(TimerEntry {
            due: now + Duration::from_millis(5),
            seq: 3,
            kind: TimerKind::ForwardDeadline { fwd: 3, gen: 0 },
        }));
        let order: Vec<u64> = std::iter::from_fn(|| heap.pop())
            .map(|Reverse(e)| match e.kind {
                TimerKind::ForwardDeadline { fwd, .. } => fwd,
                TimerKind::DeliverLine { .. } => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![2, 3, 1]);
    }

    #[test]
    fn outbox_overflow_flags_instead_of_growing() {
        let inbox = Arc::new(Inbox {
            msgs: Mutex::new(Vec::new()),
        });
        let (_reader, wake) = wake_pair().expect("wake pair");
        let shared = ConnShared {
            id: 0,
            inbox,
            wake,
            outbox: Mutex::new(Outbox {
                buf: Vec::new(),
                pos: 0,
                overflow: false,
            }),
            outstanding: AtomicU64::new(0),
            pending_delayed: AtomicU64::new(0),
            dead: AtomicBool::new(false),
        };
        let big = "x".repeat(OUTBOX_CAP / 2);
        shared.push_line(&big);
        shared.push_line(&big);
        // The second line crosses the cap: flagged, not buffered.
        let out = shared.outbox.lock().expect("outbox");
        assert!(out.overflow, "crossing the cap must flag overflow");
        assert!(out.buf.len() <= OUTBOX_CAP);
    }
}
