//! Sharded, content-addressed LRU cache — fronts first.
//!
//! The unit of caching is the **Pareto front**: entries are keyed by the
//! canonical hash of the `(pipeline, platform)` instance alone
//! ([`rpwf_core::hash::instance_key`]), so every threshold query and every
//! `Pareto` request over the same instance shares one entry, and a point
//! answer is a read off the cached front. Cached fronts are
//! completeness-aware: a budget-cutoff front is stored flagged incomplete
//! — reusable as a best-effort answer for deadline-bound requests, but it
//! never masquerades as exact and never overwrites a complete front.
//! Non-front results (Monte Carlo simulation) are cached per query as
//! opaque serialized trees, as before.
//!
//! Sharding by the key's low bits keeps lock contention negligible under
//! concurrent workers; each shard is a small `HashMap` with recency ticks
//! and evicts its least-recently-used entry when full (linear scan —
//! shards are small by construction).

use rpwf_algo::Provenance;
use rpwf_core::mapping::IntervalMapping;
use rpwf_core::pareto::ParetoFront;
use serde::Value;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// A cached Pareto front and how it was produced. The front itself is
/// behind an [`Arc`] so a cache hit is a refcount bump, not a deep copy
/// of every point and mapping under the shard lock.
#[derive(Clone, Debug)]
pub struct CachedFront {
    /// The front (mappings included, so point answers replay exactly).
    pub front: Arc<ParetoFront<IntervalMapping>>,
    /// `true` when the front is proven exact. Incomplete fronts are sound
    /// under-approximations (budget cutoffs or heuristic sweeps) and must
    /// be reported with `exact_complete: false`.
    pub complete: bool,
    /// Who produced it (wire `meta.solver`, replayed verbatim on hits).
    pub solver: Provenance,
    /// Whether any exact front backend applies to the instance at all.
    /// When `false`, an incomplete front is the best any rerun could do,
    /// so it is served even to requests without a deadline.
    pub exact_capable: bool,
}

/// A cached per-query result: the response payload and how it was produced.
#[derive(Clone, Debug)]
pub struct CachedResult {
    /// Serialized result tree (replayed verbatim into responses, so a hit
    /// is byte-identical to the original result).
    pub result: Value,
    /// Solver tier that produced it, when applicable.
    pub solver: Option<Provenance>,
    /// Whether the exact solver completed.
    pub exact_complete: Option<bool>,
}

/// What a cache slot holds.
#[derive(Clone, Debug)]
pub enum CachedEntry {
    /// A Pareto front keyed by instance hash.
    Front(CachedFront),
    /// An opaque per-query result keyed by `(command, instance, query)`.
    Result(CachedResult),
}

struct Entry<V> {
    value: V,
    tick: u64,
}

struct Shard<V> {
    map: HashMap<u128, Entry<V>>,
    clock: u64,
    // Counters live inside the shard (they are only touched under its
    // lock anyway), so observability can report per-shard skew instead of
    // a fleet-blind aggregate.
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Cache counters — per shard or aggregated across shards.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookup hits.
    pub hits: u64,
    /// Lookup misses.
    pub misses: u64,
    /// Evictions to stay under capacity.
    pub evictions: u64,
    /// Live entries.
    pub entries: usize,
}

/// The sharded LRU cache, generic in what a slot holds.
pub struct ShardedLru<V> {
    shards: Vec<Mutex<Shard<V>>>,
    per_shard_capacity: usize,
}

/// The service's cache type: fronts plus per-query results.
pub type SolutionCache = ShardedLru<CachedEntry>;

impl<V: Clone> ShardedLru<V> {
    /// A cache of roughly `capacity` entries across `shards` shards.
    /// Zero `capacity` disables caching (every lookup misses).
    #[must_use]
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.clamp(1, 1024);
        let per_shard_capacity = capacity.div_ceil(shards);
        ShardedLru {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        clock: 0,
                        hits: 0,
                        misses: 0,
                        evictions: 0,
                    })
                })
                .collect(),
            per_shard_capacity,
        }
    }

    /// Shard count.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.per_shard_capacity * self.shards.len()
    }

    fn shard(&self, key: u128) -> &Mutex<Shard<V>> {
        // Low bits of the FNV digest are well mixed.
        &self.shards[(key as usize) % self.shards.len()]
    }

    /// Looks up a key, refreshing its recency on hit.
    #[must_use]
    pub fn get(&self, key: u128) -> Option<V> {
        let mut shard = self.shard(key).lock().expect("cache shard lock");
        shard.clock += 1;
        let tick = shard.clock;
        let value = shard.map.get_mut(&key).map(|entry| {
            entry.tick = tick;
            entry.value.clone()
        });
        match &value {
            Some(_) => shard.hits += 1,
            None => shard.misses += 1,
        }
        value
    }

    /// Inserts (or refreshes) a key, evicting the shard's LRU entry when
    /// full. No-op when the cache has zero capacity.
    pub fn insert(&self, key: u128, value: V) {
        let _ = self.insert_if(key, value, |_| true);
    }

    /// Inserts; when the key is already occupied, only if
    /// `replace(existing)` allows it — evaluated under the shard lock, so
    /// the check-and-replace is atomic. Used by the front cache to never
    /// let an incomplete front overwrite a complete one. Returns whether
    /// the value was stored (`false`: zero capacity, or the incumbent
    /// was kept) — the fleet layer uses this to report replica-fill
    /// outcomes and to replicate only writes that actually landed.
    pub fn insert_if(&self, key: u128, value: V, replace: impl FnOnce(&V) -> bool) -> bool {
        if self.per_shard_capacity == 0 {
            return false;
        }
        let mut shard = self.shard(key).lock().expect("cache shard lock");
        shard.clock += 1;
        let tick = shard.clock;
        if let Some(existing) = shard.map.get(&key) {
            if !replace(&existing.value) {
                return false;
            }
        } else if shard.map.len() >= self.per_shard_capacity {
            if let Some((&lru, _)) = shard.map.iter().min_by_key(|(_, e)| e.tick) {
                shard.map.remove(&lru);
                shard.evictions += 1;
            }
        }
        shard.map.insert(key, Entry { value, tick });
        true
    }

    /// Aggregate counters across all shards.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.shard_stats()
            .into_iter()
            .fold(CacheStats::default(), |acc, s| CacheStats {
                hits: acc.hits + s.hits,
                misses: acc.misses + s.misses,
                evictions: acc.evictions + s.evictions,
                entries: acc.entries + s.entries,
            })
    }

    /// Per-shard counters, in shard order (the `Metrics` dump renders one
    /// line per shard so hot-shard skew is visible).
    #[must_use]
    pub fn shard_stats(&self) -> Vec<CacheStats> {
        self.shards
            .iter()
            .map(|s| {
                let shard = s.lock().expect("cache shard lock");
                CacheStats {
                    hits: shard.hits,
                    misses: shard.misses,
                    evictions: shard.evictions,
                    entries: shard.map.len(),
                }
            })
            .collect()
    }

    /// Snapshot of every live key (across shards, no particular order).
    #[must_use]
    pub fn keys(&self) -> Vec<u128> {
        self.keys_where(|_| true)
    }

    /// Snapshot of the keys whose entries satisfy `keep`. Fleet nodes use
    /// this to census *front* entries — the ones keyed by the canonical
    /// instance hash the ring places — against ring ownership (per-query
    /// result entries are keyed by `cache_key`, a different hash space).
    #[must_use]
    pub fn keys_where(&self, mut keep: impl FnMut(&V) -> bool) -> Vec<u128> {
        self.shards
            .iter()
            .flat_map(|s| {
                s.lock()
                    .expect("cache shard lock")
                    .map
                    .iter()
                    .filter(|(_, entry)| keep(&entry.value))
                    .map(|(&k, _)| k)
                    .collect::<Vec<_>>()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn value(tag: i64) -> CachedEntry {
        CachedEntry::Result(CachedResult {
            result: Value::Int(tag),
            solver: None,
            exact_complete: None,
        })
    }

    fn tag_of(entry: &CachedEntry) -> i64 {
        match entry {
            CachedEntry::Result(r) => match r.result {
                Value::Int(i) => i,
                _ => panic!("test values are ints"),
            },
            CachedEntry::Front(_) => panic!("test values are results"),
        }
    }

    #[test]
    fn hit_and_miss_counting() {
        let cache = SolutionCache::new(8, 2);
        assert!(cache.get(1).is_none());
        cache.insert(1, value(10));
        let got = cache.get(1).expect("hit");
        assert_eq!(tag_of(&got), 10);
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn evicts_least_recently_used_within_shard() {
        // One shard, capacity 2: touching `a` keeps it alive, `b` dies.
        let cache = SolutionCache::new(2, 1);
        cache.insert(1, value(1));
        cache.insert(2, value(2));
        let _ = cache.get(1);
        cache.insert(3, value(3));
        assert!(cache.get(1).is_some(), "recently used must survive");
        assert!(cache.get(2).is_none(), "LRU entry must be evicted");
        assert!(cache.get(3).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn zero_capacity_disables() {
        let cache = SolutionCache::new(0, 4);
        cache.insert(9, value(9));
        assert!(cache.get(9).is_none());
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn insert_if_protects_the_incumbent() {
        let cache = SolutionCache::new(8, 1);
        cache.insert(1, value(1));
        cache.insert_if(1, value(2), |existing| tag_of(existing) != 1);
        assert_eq!(tag_of(&cache.get(1).expect("present")), 1, "incumbent kept");
        cache.insert_if(1, value(3), |_| true);
        assert_eq!(tag_of(&cache.get(1).expect("present")), 3, "replaced");
    }

    #[test]
    fn keys_spread_across_shards() {
        let cache = SolutionCache::new(64, 8);
        for k in 0u128..64 {
            cache.insert(k, value(k as i64));
        }
        assert_eq!(cache.stats().entries, 64);
        for k in 0u128..64 {
            assert!(cache.get(k).is_some(), "key {k} must be present");
        }
    }

    #[test]
    fn per_shard_stats_sum_to_the_aggregate() {
        let cache = SolutionCache::new(8, 4);
        for k in 0u128..8 {
            cache.insert(k, value(k as i64));
            let _ = cache.get(k);
            let _ = cache.get(k + 100);
        }
        let per_shard = cache.shard_stats();
        assert_eq!(per_shard.len(), 4);
        let total = cache.stats();
        assert_eq!(per_shard.iter().map(|s| s.hits).sum::<u64>(), total.hits);
        assert_eq!(
            per_shard.iter().map(|s| s.misses).sum::<u64>(),
            total.misses
        );
        assert_eq!(
            per_shard.iter().map(|s| s.entries).sum::<usize>(),
            total.entries
        );
        let mut keys = cache.keys();
        keys.sort_unstable();
        assert_eq!(keys, (0u128..8).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache = std::sync::Arc::new(SolutionCache::new(128, 8));
        std::thread::scope(|s| {
            for t in 0..8u128 {
                let cache = std::sync::Arc::clone(&cache);
                s.spawn(move || {
                    for i in 0..200u128 {
                        let key = t * 1000 + (i % 50);
                        cache.insert(key, value(i as i64));
                        let _ = cache.get(key);
                    }
                });
            }
        });
        let stats = cache.stats();
        assert!(stats.hits > 0);
        assert!(stats.entries <= cache.capacity());
    }
}
