//! The JSON-lines wire protocol.
//!
//! One request per line, one response per line, in any order (responses
//! carry the request's `id`). Shapes:
//!
//! ```json
//! {"id": 7, "deadline_ms": 250, "cmd": {"Solve": {
//!     "pipeline": {...}, "platform": {...},
//!     "objective": {"MinFpUnderLatency": 22.0}}}}
//! ```
//!
//! ```json
//! {"id": 7, "status": "ok", "result": {"Solve": {...}},
//!  "meta": {"cache_hit": false, "solver": "exact",
//!           "exact_complete": true, "elapsed_us": 1234}}
//! ```
//!
//! Errors are structured: `{"status": "error", "error": {"kind":
//! "timeout", "message": "..."}}` with kinds `timeout`, `infeasible`,
//! `invalid`, `internal`, and `overloaded`. An `infeasible` error also
//! carries the violated bound as structured data (`error.bound`:
//! `{"axis": "latency", "value": 22.0}`) next to the legacy message
//! string, so clients stop matching on substrings; an `overloaded`
//! error carries `retry_after_ms`.
//!
//! The [`Command::Explain`] command answers *why* a threshold query is
//! infeasible: a MUS/MCS enumeration over the query's constraint
//! universe plus the nearest-feasible what-if ([`ExplainResult`]). A
//! `Solve` request may instead set `"explain": true` to get the same
//! payload attached as `meta.explain` when (and only when) the solve
//! comes back infeasible.
//!
//! A `Pareto` request with `"chunk": k` streams its front as several
//! response lines sharing the request id: zero or more `status: "part"`
//! lines each carrying at most `k` points ([`FrontPartResult`]), closed
//! by one `status: "ok"` line ([`FrontEndResult`]) with the completeness
//! flag. Concatenating the part points in `seq` order reassembles the
//! unstreamed front exactly.
//!
//! Fleet mode adds three wire elements: requests carry an optional
//! `"hop": true` flag (set by a forwarding peer; a hopped request is
//! always answered locally — the forwarding-loop guard), response
//! metadata carries `"node"` (the identity of the node that answered,
//! identical whichever node the client entered through), and the
//! [`Command::Ring`] introspection command returns the answering node's
//! topology view ([`RingResult`]).
//!
//! Tracing adds two more: a request with `"trace": true` gets the full
//! span tree of its handling attached to `meta.trace` (decode → route →
//! peer forward → engine planning → per-solver execution → cache access),
//! and a forwarding node propagates a compact [`TraceContext`]
//! (`trace_ctx`) so the owner's spans come back under the same trace id
//! and the entry node can return **one merged trace**. The
//! [`Command::Trace`] command dumps the node's slow-query ring — the
//! slowest recently traced requests ([`TraceResult`]).

use rpwf_algo::{Objective, Provenance};
use rpwf_core::hash::{CanonicalDigest, CanonicalHasher};
use rpwf_core::mapping::IntervalMapping;
use rpwf_core::pareto::ParetoFront;
use rpwf_core::platform::Platform;
use rpwf_core::stage::Pipeline;
use rpwf_core::trace::SpanTree;
use serde::{Deserialize, Serialize, Value};

/// A single request line.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Request {
    /// Client-chosen correlation id, echoed on the response.
    pub id: Option<u64>,
    /// Deadline in milliseconds, measured from request receipt. The
    /// exact solvers and Monte Carlo poll it cooperatively and unwind at
    /// expiry; the best answer produced so far (or a `timeout` error) is
    /// returned. The heuristic portfolio does not poll yet (it is
    /// bounded polynomial work; see ROADMAP "Budgeted heuristics"), so
    /// responses may overshoot the deadline by one heuristic pass.
    pub deadline_ms: Option<u64>,
    /// Opt out of the solution cache for this request.
    pub no_cache: Option<bool>,
    /// Forwarding-loop guard for fleet mode: set by a `RingRouter` when it
    /// forwards a request to the owning peer. A hopped request is always
    /// answered locally, so disagreeing ring views (e.g. mid-rollout
    /// membership skew) can cost one extra hop but never a loop.
    pub hop: Option<bool>,
    /// Opt into structured tracing: the response's `meta.trace` carries
    /// the span tree of the request's handling, and the request enters
    /// the node's slow-query ring ([`Command::Trace`]).
    pub trace: Option<bool>,
    /// Compact trace context set by a forwarding node next to `hop`, so
    /// the owner records its spans under the entry node's trace id and
    /// the entry node returns one merged trace.
    pub trace_ctx: Option<TraceContext>,
    /// Opt into automatic explanation: when a `Solve` comes back
    /// infeasible, the response's `meta.explain` carries the full
    /// [`ExplainResult`] the equivalent [`Command::Explain`] would have
    /// returned. Ignored on feasible answers and on other commands
    /// (`Pareto` is never infeasible — the reliability extreme always
    /// exists).
    pub explain: Option<bool>,
    /// The command to execute.
    pub cmd: Command,
}

/// The compact trace context a forwarding node propagates in the wire
/// [`Request`]: enough for the owner to continue the entry node's trace
/// (shared id) and for the entry node to graft the owner's subtree back
/// under its `forward` span.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceContext {
    /// The entry node's trace id (raw [`rpwf_core::trace::TraceId`] bits).
    pub id: u64,
    /// Index of the entry node's `forward` span — where the owner's
    /// subtree is grafted on return.
    pub parent: u32,
}

/// The operations the service answers.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Command {
    /// Liveness check.
    Ping,
    /// Threshold solve (portfolio racing the exact solver).
    Solve {
        /// The application.
        pipeline: Pipeline,
        /// The platform.
        platform: Platform,
        /// The threshold objective.
        objective: Objective,
    },
    /// Bi-objective Pareto front (exact where a backend applies, best
    /// heuristic front beyond — check `complete` / `meta.solver`).
    Pareto {
        /// The application.
        pipeline: Pipeline,
        /// The platform.
        platform: Platform,
        /// Stream the front as `front_part` chunks of at most this many
        /// points (followed by a closing `front_end` line) instead of one
        /// `ParetoResult` line. Bounds per-response memory by the chunk
        /// size rather than the front size. `None` = single response.
        chunk: Option<usize>,
    },
    /// Infeasibility explanation for a threshold query: MUS/MCS
    /// enumeration over the query's constraint universe plus the
    /// nearest-feasible what-if ([`ExplainResult`]). Routed by instance
    /// key exactly like `Solve`, so fleet forwarding, replication and
    /// the front cache apply unchanged — and the answer is
    /// byte-identical whichever node the client entered through.
    Explain {
        /// The application.
        pipeline: Pipeline,
        /// The platform.
        platform: Platform,
        /// The threshold objective to explain.
        objective: Objective,
    },
    /// Monte Carlo validation of the min-FP mapping.
    Simulate {
        /// The application.
        pipeline: Pipeline,
        /// The platform.
        platform: Platform,
        /// Trial count (default 10 000).
        trials: Option<usize>,
    },
    /// Generate a random instance.
    Gen {
        /// Platform class tag (`fh`, `ch`, `het`).
        class: String,
        /// Failure class tag (`hom`, `het`).
        failure: String,
        /// Stages.
        n: usize,
        /// Processors.
        m: usize,
        /// Seed.
        seed: u64,
    },
    /// Service counters (workers, cache hits/misses/evictions) plus
    /// per-command latency histograms.
    Stats,
    /// Plain-text metrics dump (Prometheus exposition style).
    Metrics,
    /// Fleet-topology introspection: ring membership, per-peer forward
    /// counters and this node's owned-key census ([`RingResult`]). Always
    /// answered by the node that received it (never forwarded).
    Ring,
    /// Slow-query log dump: the slowest recently traced requests on the
    /// answering node, each with its full span tree ([`TraceResult`]).
    /// Only requests that opted in with `"trace": true` enter the ring.
    /// Always answered locally, like [`Command::Ring`].
    Trace {
        /// Return at most this many entries (default 16).
        limit: Option<usize>,
    },
    /// **Internal fleet command**: push a solved Pareto front into the
    /// receiver's cache, warming a *replica* of the sending node. After a
    /// primary owner freshly solves and caches a **complete** front, it
    /// ships the front to the key's ring successor(s) with this command,
    /// so a single-node death leaves every front warm on the surviving
    /// replica. Always answered by the receiving node (`route_key` is
    /// `None`, and senders set the `hop` flag), and subject to the same
    /// completeness-aware insert policy as local writes — a fill can
    /// never downgrade a richer cached entry. Answers
    /// [`CacheFillResult`].
    CacheFill {
        /// The application of the cached instance.
        pipeline: Pipeline,
        /// The platform of the cached instance.
        platform: Platform,
        /// The solved front (the replicated payload).
        front: ParetoFront<IntervalMapping>,
        /// Whether the front is exact/complete (only complete fronts are
        /// propagated by the fleet layer, but the command accepts both).
        complete: bool,
        /// Which solver tier produced the front.
        solver: Provenance,
        /// Whether an exact front backend applies to the instance.
        exact_capable: bool,
    },
}

impl Command {
    /// Stable name for logs and metrics.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Command::Ping => "ping",
            Command::Solve { .. } => "solve",
            Command::Pareto { .. } => "pareto",
            Command::Explain { .. } => "explain",
            Command::Simulate { .. } => "simulate",
            Command::Gen { .. } => "gen",
            Command::Stats => "stats",
            Command::Metrics => "metrics",
            Command::Ring => "ring",
            Command::Trace { .. } => "trace",
            Command::CacheFill { .. } => "cache_fill",
        }
    }

    /// All command names, in a stable order (for metrics registries).
    #[must_use]
    pub fn all_names() -> &'static [&'static str] {
        &[
            "ping",
            "solve",
            "pareto",
            "explain",
            "simulate",
            "gen",
            "stats",
            "metrics",
            "ring",
            "trace",
            "cache_fill",
        ]
    }

    /// Canonical key of the *instance* behind a front-shaped command —
    /// the `(pipeline, platform)` content alone, shared by every threshold
    /// objective and by the `Pareto` command over the same instance. This
    /// is the key of the front cache and of batch grouping. `None` for
    /// commands that are not answered from a front.
    #[must_use]
    pub fn front_key(&self) -> Option<u128> {
        match self {
            Command::Solve {
                pipeline, platform, ..
            }
            | Command::Pareto {
                pipeline, platform, ..
            }
            | Command::Explain {
                pipeline, platform, ..
            } => Some(rpwf_core::hash::instance_key(pipeline, platform)),
            _ => None,
        }
    }

    /// Canonical *placement* key for fleet routing — the instance hash of
    /// any instance-bearing command ([`Command::front_key`] plus
    /// `Simulate`, whose per-query results partition by instance just as
    /// fronts do). `None` for node-local commands (`Ping`, `Gen`, `Stats`,
    /// `Metrics`, `Ring`), which every node answers itself.
    #[must_use]
    pub fn route_key(&self) -> Option<u128> {
        match self {
            Command::Simulate {
                pipeline, platform, ..
            } => Some(rpwf_core::hash::instance_key(pipeline, platform)),
            _ => self.front_key(),
        }
    }

    /// Canonical content key for the solution cache; `None` for commands
    /// that are not worth caching (`Ping`, `Gen`, `Stats`).
    #[must_use]
    pub fn cache_key(&self) -> Option<u128> {
        let mut hasher = CanonicalHasher::new();
        match self {
            Command::Solve {
                pipeline,
                platform,
                objective,
            } => {
                hasher.write_str("solve");
                pipeline.digest(&mut hasher);
                platform.digest(&mut hasher);
                match *objective {
                    Objective::MinFpUnderLatency(l) => {
                        hasher.write_str("min-fp");
                        hasher.write_f64(l);
                    }
                    Objective::MinLatencyUnderFp(f) => {
                        hasher.write_str("min-lat");
                        hasher.write_f64(f);
                    }
                }
            }
            // `chunk` is a rendering option, not part of the front's
            // identity.
            Command::Pareto {
                pipeline, platform, ..
            } => {
                hasher.write_str("pareto");
                pipeline.digest(&mut hasher);
                platform.digest(&mut hasher);
            }
            Command::Simulate {
                pipeline,
                platform,
                trials,
            } => {
                hasher.write_str("simulate");
                pipeline.digest(&mut hasher);
                platform.digest(&mut hasher);
                hasher.write_u64(trials.unwrap_or(10_000) as u64);
            }
            // `Explain` is answered from the same cached fronts the
            // threshold reads use; the assembled explanation itself is
            // cheap to rebuild and is not separately cached.
            Command::Ping
            | Command::Explain { .. }
            | Command::Gen { .. }
            | Command::Stats
            | Command::Metrics
            | Command::Ring
            | Command::Trace { .. }
            | Command::CacheFill { .. } => return None,
        }
        Some(hasher.finish())
    }
}

/// Error kinds a response can carry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// The deadline expired before any answer was produced.
    Timeout,
    /// The instance has no feasible solution for the objective.
    Infeasible,
    /// The request was malformed or unsupported for the instance.
    Invalid,
    /// Unexpected server-side failure.
    Internal,
    /// The admission controller shed the request before it entered the
    /// solve queue — the node is overloaded (queue full, or the
    /// predicted queue wait would blow the request's deadline). The
    /// error payload carries `retry_after_ms`: the predicted time until
    /// the backlog drains enough for a retry to be admitted.
    Overloaded,
}

impl ErrorKind {
    /// Wire name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ErrorKind::Timeout => "timeout",
            ErrorKind::Infeasible => "infeasible",
            ErrorKind::Invalid => "invalid",
            ErrorKind::Internal => "internal",
            ErrorKind::Overloaded => "overloaded",
        }
    }
}

/// Structured error payload.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WireError {
    /// One of `timeout`, `infeasible`, `invalid`, `internal`,
    /// `overloaded`.
    pub kind: String,
    /// Human-readable detail.
    pub message: String,
    /// For `overloaded` rejections: how long (milliseconds) a client
    /// should wait before retrying — the admission controller's estimate
    /// of the time until the solve backlog drains enough to admit the
    /// retry. Absent on every other error kind (and on responses from
    /// servers predating admission control).
    pub retry_after_ms: Option<u64>,
    /// For `infeasible` rejections: the violated bound, as structured
    /// data. Old clients keep reading the message string; new clients
    /// (and the `Explain` machinery) anchor on this field. Absent on
    /// every other error kind and on responses from older servers.
    pub bound: Option<ViolatedBound>,
}

/// The bound an infeasible threshold query violated, echoed back in
/// structured form on `infeasible` errors.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ViolatedBound {
    /// The bounded axis: `"latency"` ([`Objective::MinFpUnderLatency`])
    /// or `"failure_prob"` ([`Objective::MinLatencyUnderFp`]).
    pub axis: String,
    /// The bound's value as the client posed it (no slack applied).
    pub value: f64,
}

impl ViolatedBound {
    /// The bound of a threshold objective.
    #[must_use]
    pub fn of(objective: Objective) -> Self {
        match objective {
            Objective::MinFpUnderLatency(l) => ViolatedBound {
                axis: "latency".into(),
                value: l,
            },
            Objective::MinLatencyUnderFp(f) => ViolatedBound {
                axis: "failure_prob".into(),
                value: f,
            },
        }
    }
}

/// Per-response metadata.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Meta {
    /// Whether the result came from the solution cache.
    pub cache_hit: bool,
    /// Which solver tier produced the result, when applicable. Derived
    /// from the engine's [`Provenance`] everywhere — fresh solves, cache
    /// hits, and fleet forwards all serialize the same enum (wire strings
    /// `"exact"` / `"heuristic"`).
    pub solver: Option<Provenance>,
    /// Whether the exact solver completed (result proven optimal), when
    /// applicable.
    pub exact_complete: Option<bool>,
    /// Wall-clock handling time in microseconds (for cache hits: the
    /// lookup time, not the original compute time).
    pub elapsed_us: u64,
    /// Identity of the fleet node that *answered* (its `--node-id`).
    /// Forwarded requests carry the owning node's identity, so a response
    /// is identical whichever node the client entered through. `None`
    /// outside fleet mode.
    pub node: Option<String>,
    /// The span tree of the request's handling, attached when the request
    /// set `"trace": true`. On a fleet hop this is the **merged** trace:
    /// the entry node's decode/route/forward spans with the owner's
    /// subtree grafted under the forward span.
    pub trace: Option<SpanTree>,
    /// The infeasibility explanation, attached when the request opted in
    /// with `"explain": true` and the answer came back infeasible
    /// (identical to the payload [`Command::Explain`] would return).
    pub explain: Option<ExplainResult>,
}

/// A single response line.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Response {
    /// Echo of the request id.
    pub id: Option<u64>,
    /// `"ok"` or `"error"`.
    pub status: String,
    /// The result payload (shape depends on the command), for `ok`.
    pub result: Option<Value>,
    /// The error payload, for `error`.
    pub error: Option<WireError>,
    /// Handling metadata.
    pub meta: Meta,
}

impl Response {
    /// An `ok` response.
    #[must_use]
    pub fn ok(id: Option<u64>, result: Value, meta: Meta) -> Self {
        Response {
            id,
            status: "ok".into(),
            result: Some(result),
            error: None,
            meta,
        }
    }

    /// A `part` response — one chunk of a streamed result. The request is
    /// only fulfilled by the closing `ok` (or `error`) line that follows.
    #[must_use]
    pub fn part(id: Option<u64>, result: Value, meta: Meta) -> Self {
        Response {
            id,
            status: "part".into(),
            result: Some(result),
            error: None,
            meta,
        }
    }

    /// An `error` response.
    #[must_use]
    pub fn error(id: Option<u64>, kind: ErrorKind, message: impl Into<String>, meta: Meta) -> Self {
        Response {
            id,
            status: "error".into(),
            result: None,
            error: Some(WireError {
                kind: kind.name().into(),
                message: message.into(),
                retry_after_ms: None,
                bound: None,
            }),
            meta,
        }
    }

    /// An `infeasible` error response carrying the violated bound as
    /// structured data next to the legacy message string.
    #[must_use]
    pub fn infeasible(
        id: Option<u64>,
        objective: Objective,
        message: impl Into<String>,
        meta: Meta,
    ) -> Self {
        Response {
            id,
            status: "error".into(),
            result: None,
            error: Some(WireError {
                kind: ErrorKind::Infeasible.name().into(),
                message: message.into(),
                retry_after_ms: None,
                bound: Some(ViolatedBound::of(objective)),
            }),
            meta,
        }
    }

    /// An `overloaded` fast-reject response carrying the structured
    /// `retry_after_ms` hint — the admission controller's answer when it
    /// sheds a request instead of letting it time out late in the queue.
    #[must_use]
    pub fn overloaded(
        id: Option<u64>,
        retry_after_ms: u64,
        message: impl Into<String>,
        meta: Meta,
    ) -> Self {
        Response {
            id,
            status: "error".into(),
            result: None,
            error: Some(WireError {
                kind: ErrorKind::Overloaded.name().into(),
                message: message.into(),
                retry_after_ms: Some(retry_after_ms),
                bound: None,
            }),
            meta,
        }
    }

    /// Serializes to one wire line (compact JSON, no trailing newline).
    #[must_use]
    pub fn to_line(&self) -> String {
        serde_json::to_string(self).expect("responses always serialize")
    }
}

/// `Explain` result payload (also attached as `meta.explain` on
/// infeasible `Solve` responses that opted in with `"explain": true`).
///
/// Deliberately excludes effort counters (oracle calls, cache hits):
/// those differ between a warm and a cold node and would break the
/// fleet's byte-identical-from-any-entry-node contract. They surface in
/// the `rpwf_explain_*` metrics instead.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExplainResult {
    /// The explained objective.
    pub objective: Objective,
    /// Whether the query is feasible as posed (then there is nothing to
    /// explain and the MUS/MCS lists are empty).
    pub feasible: bool,
    /// The constraint universe; MUS/MCS members index into this list.
    pub universe: Vec<ExplainConstraint>,
    /// Minimal unsatisfiable subsets — each a sorted list of indices
    /// into `universe`; dropping any member makes the subset satisfiable.
    pub muses: Vec<Vec<usize>>,
    /// Minimal correction sets — relax all members of any one and the
    /// query becomes feasible.
    pub mcses: Vec<Vec<usize>>,
    /// The nearest-feasible what-if (absent when feasible).
    pub relaxation: Option<ExplainRelaxation>,
    /// Whether every infeasibility verdict was proven on an exact front.
    /// `false` marks a best-effort explanation (budget-cut or heuristic
    /// fronts): MUSes are candidates, never claimed minimal-proven.
    pub proven: bool,
}

/// One constraint of an [`ExplainResult`]'s universe.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExplainConstraint {
    /// Stable lowercase label (`bound`, `speed-limit`, `link-limit`,
    /// `platform-size`).
    pub label: String,
    /// The constraint instantiated on this query, e.g. `latency <= 1`.
    pub detail: String,
}

/// The nearest-feasible what-if of an [`ExplainResult`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExplainRelaxation {
    /// The bounded axis (`latency` or `failure_prob`).
    pub axis: String,
    /// Latency of the adjacent feasible point past the bound (absent
    /// when the front had nothing to suggest).
    pub latency: Option<f64>,
    /// Failure probability of that point.
    pub failure_prob: Option<f64>,
    /// Whether the front read was proven exact.
    pub proven: bool,
}

impl ExplainResult {
    /// Shapes an engine [`Explanation`](rpwf_algo::Explanation) for the
    /// wire, dropping the effort counters (metrics-only — see the type
    /// docs).
    #[must_use]
    pub fn from_explanation(explanation: &rpwf_algo::Explanation) -> Self {
        ExplainResult {
            objective: explanation.objective,
            feasible: explanation.feasible,
            universe: explanation
                .universe
                .iter()
                .map(|c| ExplainConstraint {
                    label: c.label.to_owned(),
                    detail: c.detail.clone(),
                })
                .collect(),
            muses: explanation.muses.clone(),
            mcses: explanation.mcses.clone(),
            relaxation: explanation.relaxation.map(|r| ExplainRelaxation {
                axis: r.axis.to_owned(),
                latency: r.nearest.map(|p| p.latency),
                failure_prob: r.nearest.map(|p| p.failure_prob),
                proven: r.proven,
            }),
            proven: explanation.proven,
        }
    }
}

/// `Solve` result payload.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SolveResult {
    /// The winning mapping.
    pub mapping: IntervalMapping,
    /// Human-readable mapping.
    pub mapping_display: String,
    /// Worst-case latency of the mapping.
    pub latency: f64,
    /// Failure probability of the mapping.
    pub failure_prob: f64,
}

/// One Pareto point on the wire.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ParetoPointOut {
    /// Worst-case latency.
    pub latency: f64,
    /// Failure probability.
    pub failure_prob: f64,
    /// The achieving mapping, rendered.
    pub mapping_display: String,
}

/// `Pareto` result payload.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ParetoResult {
    /// Non-dominated points by increasing latency.
    pub points: Vec<ParetoPointOut>,
    /// Whether the front is exact (`false`: budget cut the sweep short,
    /// the points are a sound under-approximation).
    pub complete: bool,
}

/// One chunk of a streamed Pareto front (response `status: "part"`).
/// Chunks carry consecutive points in increasing-latency order;
/// concatenating the `points` of all parts in `seq` order reproduces the
/// unstreamed [`ParetoResult::points`] exactly.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FrontPartResult {
    /// 0-based chunk index.
    pub seq: u64,
    /// The points of this chunk.
    pub points: Vec<ParetoPointOut>,
}

/// Closing line of a streamed Pareto front (response `status: "ok"`).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FrontEndResult {
    /// Whether the streamed front is exact (same meaning as
    /// [`ParetoResult::complete`]).
    pub complete: bool,
    /// Number of `front_part` lines that preceded this one.
    pub parts: u64,
    /// Total points across all parts.
    pub points_total: u64,
}

/// `Simulate` result payload.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimulateResult {
    /// The mapping validated (Theorem 1 min-FP mapping), rendered.
    pub mapping_display: String,
    /// Analytic failure probability.
    pub analytic_fp: f64,
    /// Monte Carlo failure rate.
    pub mc_failure_rate: f64,
    /// Wilson 95% interval on the success rate.
    pub wilson95: (f64, f64),
    /// Trials run.
    pub trials: usize,
    /// Observed latency minimum.
    pub latency_min: f64,
    /// Observed latency mean.
    pub latency_mean: f64,
    /// Observed latency maximum.
    pub latency_max: f64,
}

/// `Gen` result payload.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GenResult {
    /// The generated application.
    pub pipeline: Pipeline,
    /// The generated platform.
    pub platform: Platform,
}

/// `CacheFill` result payload.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CacheFillResult {
    /// Whether the front was stored (`false` when the insert policy kept
    /// a richer incumbent, or when caching is disabled).
    pub stored: bool,
    /// Points in the shipped front.
    pub points: u64,
}

/// Cache counters inside [`StatsResult`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CacheStatsOut {
    /// Shard count.
    pub shards: usize,
    /// Total capacity across shards.
    pub capacity: usize,
    /// Live entries.
    pub entries: usize,
    /// Lookup hits.
    pub hits: u64,
    /// Lookup misses.
    pub misses: u64,
    /// Evictions to stay under capacity.
    pub evictions: u64,
}

/// Per-command latency summary inside [`StatsResult`], derived from the
/// service's log-scale histogram (quantiles are bucket upper bounds, so
/// they over-estimate by at most one bucket width).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CommandStatsOut {
    /// Command name (`solve`, `pareto`, …).
    pub command: String,
    /// Requests handled.
    pub count: u64,
    /// Mean handling time in microseconds.
    pub mean_us: f64,
    /// Median handling time (µs, bucket upper bound).
    pub p50_us: u64,
    /// 90th-percentile handling time (µs, bucket upper bound).
    pub p90_us: u64,
    /// 99th-percentile handling time (µs, bucket upper bound).
    pub p99_us: u64,
    /// Largest observed handling time (µs, exact).
    pub max_us: u64,
}

/// Per-solver counters inside [`StatsResult`] — the engine's solver mix,
/// aggregated from every [`rpwf_algo::engine::SolverStat`] the node's
/// solves produced.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SolverStatsOut {
    /// Backend registry name (`bitmask-dp`, `branch-bound`, …).
    pub solver: String,
    /// Executions of this backend.
    pub calls: u64,
    /// Cumulative wall-clock time across executions, in microseconds.
    pub elapsed_us: u64,
    /// Executions that ran to completion within budget (the completeness
    /// tier: `complete / calls` is the backend's proof rate).
    pub complete: u64,
    /// Executions that produced an answer.
    pub produced: u64,
}

/// Serving-plane counters inside [`StatsResult`]: reactor, queue, and
/// admission-control state. Only TCP servers report it (`None` from the
/// stdin loop and from in-process services without a transport).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ServingStatsOut {
    /// Reactor event threads multiplexing the connections.
    pub event_threads: u64,
    /// Connections currently registered with the reactor.
    pub open_connections: u64,
    /// Requests sitting in the bounded solve queue right now.
    pub queue_depth: u64,
    /// Solve-queue capacity (admission sheds beyond this).
    pub queue_limit: u64,
    /// Workers currently executing a request.
    pub busy_workers: u64,
    /// Requests admitted past the admission controller.
    pub admitted: u64,
    /// Requests shed because the solve queue was full.
    pub shed_queue_full: u64,
    /// Requests shed because the predicted queue wait would blow their
    /// deadline.
    pub shed_deadline: u64,
    /// p99 of the shed path itself, microseconds (a reject must be fast —
    /// that is its entire point).
    pub shed_latency_p99_us: u64,
    /// p99 of one reactor event-loop iteration's work phase (poll wait
    /// excluded), microseconds.
    pub reactor_loop_p99_us: u64,
    /// Peer forwards currently parked in the pending-forward table.
    pub pending_forwards: u64,
    /// Connections severed for exceeding the per-connection write-buffer
    /// cap (slow consumers under backpressure).
    pub slow_client_disconnects: u64,
}

/// `Stats` result payload.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StatsResult {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Requests handled so far.
    pub requests: u64,
    /// Cache counters.
    pub cache: CacheStatsOut,
    /// Per-command latency summaries (commands with no traffic omitted).
    pub commands: Vec<CommandStatsOut>,
    /// Per-solver execution counters (backends never called omitted).
    pub solvers: Vec<SolverStatsOut>,
    /// Serving-plane (reactor + admission) counters; `None` when the
    /// service has no TCP transport attached.
    pub serving: Option<ServingStatsOut>,
}

/// Per-peer forwarding counters inside [`RingResult`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RingPeerOut {
    /// Peer node identity (`host:port`).
    pub peer: String,
    /// Requests this node forwarded to the peer (successfully answered).
    pub forwards: u64,
    /// Forward attempts that failed with a connect or I/O error. Read
    /// timeouts are counted separately in `timeouts` — a dead peer and a
    /// slow peer call for different operator responses.
    pub failures: u64,
    /// Forward attempts that timed out waiting for the response.
    pub timeouts: u64,
    /// Calls rejected instantly by the open circuit breaker (no connect
    /// was attempted).
    pub breaker_skips: u64,
    /// The peer's circuit-breaker state: `closed`, `open`, or
    /// `half-open`.
    pub breaker_state: String,
}

/// `Ring` result payload — the answering node's view of the fleet
/// topology. A single-node (`LocalRouter`) service reports itself as the
/// only member with zero vnodes.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RingResult {
    /// The answering node's identity.
    pub node: String,
    /// All ring members (sorted), including the answering node.
    pub nodes: Vec<String>,
    /// Virtual nodes per member (0 = no ring configured).
    pub vnodes: u64,
    /// Replication factor: the number of distinct owners (primary +
    /// successors) each key is placed on (1 = no replication).
    pub replicas: u64,
    /// Cache keys held by this node as the **primary** ring owner.
    pub owned_cache_keys: u64,
    /// Cache keys held by this node as a **replica** (a non-primary
    /// member of the key's successor list) — fills pushed by the primary
    /// so its keys stay warm through its death.
    pub replica_cache_keys: u64,
    /// Cache keys held here that the ring assigns entirely elsewhere
    /// (artifacts of peer-down fallback solving; they are correct, just
    /// duplicated capacity).
    pub foreign_cache_keys: u64,
    /// Requests received with the forwarding hop flag set (this node
    /// answered them as the owner).
    pub hops_received: u64,
    /// Requests whose primary owner failed and were answered by a
    /// failover successor (including this node serving as a replica).
    pub failovers: u64,
    /// Per-peer forwarding counters.
    pub forwards: Vec<RingPeerOut>,
}

/// One slow-query ring entry inside [`TraceResult`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceEntryOut {
    /// Trace id (raw bits; render as hex).
    pub id: u64,
    /// Command name of the traced request.
    pub command: String,
    /// Final response status (`ok` / `error`).
    pub status: String,
    /// Root-span wall time, in microseconds (the ring's sort key).
    pub elapsed_us: u64,
    /// Node that answered (`None` outside fleet mode).
    pub node: Option<String>,
    /// The full span tree.
    pub spans: SpanTree,
}

/// `Trace` result payload — the answering node's slow-query ring: the
/// slowest recently traced requests, slowest first.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceResult {
    /// Ring capacity (recent-window size).
    pub capacity: usize,
    /// Entries, sorted by `elapsed_us` descending, truncated to the
    /// request's `limit`.
    pub entries: Vec<TraceEntryOut>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_instance() -> (Pipeline, Platform) {
        let pipeline = Pipeline::new(vec![1.0, 2.0], vec![1.0, 1.0, 1.0]).expect("valid");
        let platform =
            Platform::comm_homogeneous(vec![1.0, 2.0], 1.0, vec![0.2, 0.3]).expect("valid");
        (pipeline, platform)
    }

    #[test]
    fn request_roundtrips_through_json() {
        let (pipeline, platform) = tiny_instance();
        let req = Request {
            id: Some(42),
            deadline_ms: Some(100),
            no_cache: None,
            hop: None,
            trace: Some(true),
            trace_ctx: Some(TraceContext { id: 7, parent: 2 }),
            explain: None,
            cmd: Command::Solve {
                pipeline,
                platform,
                objective: Objective::MinFpUnderLatency(22.0),
            },
        };
        let line = serde_json::to_string(&req).expect("serializes");
        let parsed: Request = serde_json::from_str(&line).expect("parses");
        assert_eq!(parsed.id, Some(42));
        assert_eq!(parsed.deadline_ms, Some(100));
        assert_eq!(parsed.trace, Some(true));
        assert_eq!(parsed.trace_ctx, Some(TraceContext { id: 7, parent: 2 }));
        assert_eq!(parsed.cmd.name(), "solve");
        // Pre-tracing request lines (no trace fields) still parse.
        let legacy: Request =
            serde_json::from_str(r#"{"id":1,"cmd":"Ping"}"#).expect("legacy line parses");
        assert_eq!(legacy.trace, None);
        assert_eq!(legacy.trace_ctx, None);
        assert_eq!(legacy.explain, None);
    }

    #[test]
    fn cache_key_is_content_addressed() {
        let (pipeline, platform) = tiny_instance();
        let key = |l: f64| {
            Command::Solve {
                pipeline: pipeline.clone(),
                platform: platform.clone(),
                objective: Objective::MinFpUnderLatency(l),
            }
            .cache_key()
            .expect("solve is cacheable")
        };
        assert_eq!(key(22.0), key(22.0));
        assert_ne!(key(22.0), key(23.0));
        let pareto = Command::Pareto {
            pipeline: pipeline.clone(),
            platform: platform.clone(),
            chunk: None,
        }
        .cache_key()
        .expect("pareto is cacheable");
        assert_ne!(key(22.0), pareto);
        // Explain answers rebuild cheaply from the cached fronts; the
        // per-query result cache never stores them.
        let explain = Command::Explain {
            pipeline: pipeline.clone(),
            platform: platform.clone(),
            objective: Objective::MinFpUnderLatency(22.0),
        };
        assert_eq!(explain.cache_key(), None);
        assert_eq!(Command::Ping.cache_key(), None);
        assert_eq!(Command::Stats.cache_key(), None);
        assert_eq!(Command::Metrics.cache_key(), None);
        assert_eq!(Command::Ring.cache_key(), None);
        assert_eq!(Command::Trace { limit: None }.cache_key(), None);
    }

    #[test]
    fn route_key_partitions_by_instance() {
        let (pipeline, platform) = tiny_instance();
        let solve = Command::Solve {
            pipeline: pipeline.clone(),
            platform: platform.clone(),
            objective: Objective::MinFpUnderLatency(22.0),
        };
        let simulate = Command::Simulate {
            pipeline: pipeline.clone(),
            platform: platform.clone(),
            trials: Some(100),
        };
        let explain = Command::Explain {
            pipeline: pipeline.clone(),
            platform: platform.clone(),
            objective: Objective::MinLatencyUnderFp(0.3),
        };
        let pareto = Command::Pareto {
            pipeline,
            platform,
            chunk: None,
        };
        // Every instance-bearing command over one instance routes to one
        // owner; node-local commands never route.
        let key = solve.route_key().expect("solve routes");
        assert_eq!(simulate.route_key(), Some(key));
        assert_eq!(pareto.route_key(), Some(key));
        assert_eq!(explain.route_key(), Some(key));
        assert_eq!(Command::Ping.route_key(), None);
        assert_eq!(Command::Ring.route_key(), None);
        assert_eq!(Command::Stats.route_key(), None);
        assert_eq!(Command::Metrics.route_key(), None);
        assert_eq!(Command::Trace { limit: Some(4) }.route_key(), None);
    }

    #[test]
    fn front_key_ignores_objective_and_chunk() {
        let (pipeline, platform) = tiny_instance();
        let solve = |l: f64| {
            Command::Solve {
                pipeline: pipeline.clone(),
                platform: platform.clone(),
                objective: Objective::MinFpUnderLatency(l),
            }
            .front_key()
            .expect("solve has a front key")
        };
        let pareto = |chunk: Option<usize>| {
            Command::Pareto {
                pipeline: pipeline.clone(),
                platform: platform.clone(),
                chunk,
            }
            .front_key()
            .expect("pareto has a front key")
        };
        // Every query over the same instance shares one front.
        assert_eq!(solve(22.0), solve(23.0));
        assert_eq!(solve(22.0), pareto(None));
        assert_eq!(pareto(None), pareto(Some(4)));
        let explain = Command::Explain {
            pipeline: pipeline.clone(),
            platform: platform.clone(),
            objective: Objective::MinFpUnderLatency(22.0),
        }
        .front_key()
        .expect("explain has a front key");
        assert_eq!(explain, solve(22.0));
        assert_eq!(Command::Ping.front_key(), None);
        assert_eq!(Command::Stats.front_key(), None);
    }

    #[test]
    fn cache_fill_is_node_local_and_roundtrips() {
        let (pipeline, platform) = tiny_instance();
        let mut front = ParetoFront::new();
        let mapping = IntervalMapping::new(
            vec![rpwf_core::mapping::Interval::new(0, 1).expect("valid interval")],
            vec![vec![rpwf_core::platform::ProcId(0)]],
            2,
            2,
        )
        .expect("valid mapping");
        front.insert(3.0, 0.25, mapping);
        let fill = Command::CacheFill {
            pipeline,
            platform,
            front,
            complete: true,
            solver: Provenance::Exact,
            exact_capable: true,
        };
        // A fill is point-to-point: the sender picked the replica, the
        // receiver must never re-route or cache-key it.
        assert_eq!(fill.route_key(), None);
        assert_eq!(fill.front_key(), None);
        assert_eq!(fill.cache_key(), None);
        assert_eq!(fill.name(), "cache_fill");
        let line = serde_json::to_string(&fill).expect("serializes");
        let parsed: Command = serde_json::from_str(&line).expect("parses");
        match parsed {
            Command::CacheFill {
                front, complete, ..
            } => {
                assert_eq!(front.len(), 1);
                assert!(complete);
            }
            other => panic!("parsed into {other:?}"),
        }
    }

    fn plain_meta() -> Meta {
        Meta {
            cache_hit: false,
            solver: None,
            exact_complete: None,
            elapsed_us: 5,
            node: None,
            trace: None,
            explain: None,
        }
    }

    #[test]
    fn error_response_shape() {
        let resp = Response::error(
            Some(3),
            ErrorKind::Timeout,
            "deadline expired",
            plain_meta(),
        );
        let line = resp.to_line();
        assert!(line.contains("\"status\":\"error\""), "{line}");
        assert!(line.contains("\"kind\":\"timeout\""), "{line}");
        let parsed: Response = serde_json::from_str(&line).expect("parses");
        let error = parsed.error.expect("error body");
        assert_eq!(error.kind, "timeout");
        assert_eq!(error.bound, None);
        assert_eq!(parsed.id, Some(3));
    }

    #[test]
    fn infeasible_response_echoes_the_violated_bound() {
        let resp = Response::infeasible(
            Some(9),
            Objective::MinFpUnderLatency(1.5),
            "no mapping satisfies the bound",
            plain_meta(),
        );
        let line = resp.to_line();
        let parsed: Response = serde_json::from_str(&line).expect("parses");
        let error = parsed.error.expect("error body");
        assert_eq!(error.kind, "infeasible");
        let bound = error.bound.expect("structured bound");
        assert_eq!(bound.axis, "latency");
        assert_eq!(bound.value, 1.5);
        let fp = ViolatedBound::of(Objective::MinLatencyUnderFp(0.01));
        assert_eq!(fp.axis, "failure_prob");
        assert_eq!(fp.value, 0.01);
        // Pre-explain clients (no `bound` field on the wire) still parse.
        let legacy: WireError = serde_json::from_str(
            r#"{"kind":"infeasible","message":"no mapping satisfies the bound"}"#,
        )
        .expect("legacy error parses");
        assert_eq!(legacy.bound, None);
    }

    #[test]
    fn explain_result_roundtrips_through_json() {
        let result = ExplainResult {
            objective: Objective::MinFpUnderLatency(1.0),
            feasible: false,
            universe: vec![
                ExplainConstraint {
                    label: "bound".into(),
                    detail: "latency <= 1".into(),
                },
                ExplainConstraint {
                    label: "speed-limit".into(),
                    detail: "processor speeds as given (max 2)".into(),
                },
            ],
            muses: vec![vec![0, 1]],
            mcses: vec![vec![0], vec![1]],
            relaxation: Some(ExplainRelaxation {
                axis: "latency".into(),
                latency: Some(3.0),
                failure_prob: Some(0.2),
                proven: true,
            }),
            proven: true,
        };
        let line = serde_json::to_string(&result).expect("serializes");
        let parsed: ExplainResult = serde_json::from_str(&line).expect("parses");
        assert_eq!(parsed, result);
        // Effort counters are metrics-only, never wire fields: the
        // payload must be byte-identical warm or cold.
        assert!(!line.contains("oracle"), "{line}");
    }
}
